"""Fig. 5 — LLC MPKI of Docker-container workloads.

Paper: interpreters (Ruby/Golang/Python) MPKI < 1;
MySQL/Traefik/Ghost between 1 and 10; web servers
(Apache/Nginx/Tomcat) above 10.  The AWS re-run shifts absolute values
but preserves the low-to-high trend.
"""

import pytest

from repro.analysis.classify import WorkloadClass
from repro.experiments import fig5


@pytest.fixture(scope="module")
def result(paper_scale):
    iterations = 15 if paper_scale else 12
    return fig5.run(iterations=iterations, seed=0, cross_platform=True)


def test_fig5_regenerate(benchmark):
    outcome = benchmark.pedantic(
        lambda: fig5.run(images=("python", "mysql", "nginx"),
                         iterations=8, seed=1, cross_platform=False),
        rounds=1, iterations=1,
    )
    print("\n" + fig5.render(outcome))


class TestShape:
    def test_interpreters_below_one(self, result):
        primary = result.primary_platform
        for image in ("python", "golang", "ruby"):
            assert result.mpki[primary][image] < 1.0

    def test_paper_middleware_below_ten(self, result):
        primary = result.primary_platform
        for image in ("mysql", "traefik", "ghost"):
            assert 1.0 < result.mpki[primary][image] < 10.0

    def test_webservers_above_ten(self, result):
        primary = result.primary_platform
        for image in ("apache", "nginx", "tomcat"):
            assert result.mpki[primary][image] > 10.0

    def test_muralidhara_classes(self, result):
        for image in ("apache", "nginx", "tomcat"):
            assert result.classes[image] is WorkloadClass.MEMORY_INTENSIVE
        for image in ("python", "golang", "ruby", "mysql", "traefik",
                      "ghost"):
            assert result.classes[image] is \
                WorkloadClass.COMPUTATION_INTENSIVE

    def test_cross_platform_trend_consistent(self, result):
        """Paper: 'the dockers programs still follow the same trend in
        terms of their LLC MPKI from low to high'."""
        platforms = list(result.mpki)
        assert result.ranking(platforms[0]) == result.ranking(platforms[1])

    def test_absolute_values_vary_with_cache_structure(self, result):
        platforms = list(result.mpki)
        differences = [
            abs(result.mpki[platforms[0]][image]
                - result.mpki[platforms[1]][image])
            for image in ("apache", "nginx", "tomcat")
        ]
        assert max(differences) > 0.05
