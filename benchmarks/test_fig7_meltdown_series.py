"""Fig. 7 — Meltdown vs non-Meltdown time series at 100 µs.

Paper: the clean program finishes in <10 ms (perf: 1 sample); K-LEB's
100 µs series shows the abnormally high LLC miss/reference ratio at
the point of attack, early in execution.
"""

import pytest

from repro.experiments import fig7
from repro.sim.clock import ms


@pytest.fixture(scope="module")
def result():
    return fig7.run(seed=0)


def test_fig7_regenerate(benchmark):
    outcome = benchmark.pedantic(lambda: fig7.run(seed=1),
                                 rounds=1, iterations=1)
    print("\n" + fig7.render(outcome))


class TestShape:
    def test_clean_run_under_10ms(self, result):
        assert result.clean_wall_ns < ms(10)

    def test_kleb_series_vs_perf_single_sample(self, result):
        """The 100x granularity claim in action."""
        assert result.perf_samples_clean <= 1
        assert len(result.clean_series) >= 40

    def test_attack_longer_with_more_intervals(self, result):
        assert result.attack_wall_ns > 3 * result.clean_wall_ns
        assert len(result.attack_series) > 3 * len(result.clean_series)

    def test_detector_separates_the_runs(self, result):
        assert result.attack_verdict.anomalous
        assert not result.clean_verdict.anomalous

    def test_attack_flagged_early(self, result):
        """'identify the point of attack ... at the early stage of the
        attack during the program execution'."""
        assert result.attack_verdict.first_flag_ns < \
            0.2 * result.attack_wall_ns

    def test_mpki_gap_visible_in_series(self, result):
        assert result.attack_mpki > 3 * result.clean_mpki
