"""Ablation — sample-rate sweep: overhead vs granularity.

Paper §V/§VI: "K-LEB's overhead, just like other timer based profiling
tools, depends on the sample rate.  The finer the granularity, the more
samples ... more overhead", and "the overhead will rapidly increase
after 100 µs intervals".  This sweep quantifies the trade-off the paper
leaves to the user.
"""

import numpy as np
import pytest

from repro.experiments.report import text_table
from repro.experiments.runner import run_monitored
from repro.sim.clock import ms, us
from repro.tools.kleb import KLebTool
from repro.tools.null import NullTool
from repro.workloads.synthetic import UniformComputeWorkload

EVENTS = ("LOADS", "STORES", "BRANCHES")
RATES_NS = (us(100), us(250), us(500), ms(1), ms(10), ms(100))
_WORK = 6e8  # ~225 ms victim


def _overhead_at(period_ns, seeds=(0, 1, 2)):
    baselines = []
    monitored = []
    samples = []
    for seed in seeds:
        base = run_monitored(UniformComputeWorkload(_WORK), NullTool(),
                             events=EVENTS, seed=seed)
        run = run_monitored(UniformComputeWorkload(_WORK), KLebTool(),
                            events=EVENTS, period_ns=period_ns, seed=seed)
        baselines.append(base.wall_ns)
        monitored.append(run.wall_ns)
        samples.append(run.report.sample_count)
    base_mean = float(np.mean(baselines))
    overhead = 100.0 * (float(np.mean(monitored)) - base_mean) / base_mean
    return overhead, float(np.mean(samples))


@pytest.fixture(scope="module")
def sweep():
    return {period: _overhead_at(period) for period in RATES_NS}


def test_rate_sweep_regenerate(benchmark, sweep):
    benchmark.pedantic(lambda: _overhead_at(ms(1), seeds=(3,)),
                       rounds=1, iterations=1)
    rows = [
        [f"{period / 1000:g} us", f"{samples:.0f}", f"{overhead:.2f}%"]
        for period, (overhead, samples) in sweep.items()
    ]
    print("\n" + text_table(["period", "samples", "K-LEB overhead"], rows,
                            title="Ablation — overhead vs sample rate"))


class TestShape:
    def test_overhead_monotone_in_rate(self, sweep):
        overheads = [sweep[period][0] for period in RATES_NS]
        # Finer granularity -> more overhead (allow small noise slack).
        for faster, slower in zip(overheads, overheads[1:]):
            assert faster >= slower - 0.15

    def test_overhead_rapid_below_1ms(self, sweep):
        """The paper's §VI warning: cost climbs steeply at high rates."""
        assert sweep[us(100)][0] > 5 * max(sweep[ms(10)][0], 0.1)

    def test_10ms_overhead_stays_sub_percent(self, sweep):
        assert sweep[ms(10)][0] < 1.0

    def test_sample_counts_scale_with_rate(self, sweep):
        assert sweep[us(100)][1] > 50 * max(sweep[ms(10)][1], 1)
