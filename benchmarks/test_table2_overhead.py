"""Table II — tool overhead on the ~2 s triple-loop matmul.

Paper (100 runs @ 10 ms): K-LEB 0.68 %, perf stat 6.01 %,
perf record ≈1.65 %, PAPI 6.43 %, LiMiT 4.08 %;
K-LEB = 58.8 % relative reduction vs the next-best tool.
"""

import pytest

from repro.experiments import table2


@pytest.fixture(scope="module")
def result(runs, jobs):
    return table2.run(runs=runs, seed=0, jobs=jobs)


def test_table2_regenerate(benchmark, runs, jobs):
    outcome = benchmark.pedantic(
        lambda: table2.run(runs=max(3, runs // 3), seed=1, jobs=jobs),
        rounds=1, iterations=1,
    )
    print("\n" + table2.render(outcome))


class TestShape:
    def _overhead(self, result, tool):
        return result.stats[tool].overhead_mean_percent

    def test_kleb_magnitude(self, result):
        assert self._overhead(result, "k-leb") == pytest.approx(0.68, abs=0.25)

    def test_perf_stat_magnitude(self, result):
        assert self._overhead(result, "perf-stat") == pytest.approx(6.01, rel=0.35)

    def test_papi_magnitude(self, result):
        assert self._overhead(result, "papi") == pytest.approx(6.43, rel=0.25)

    def test_limit_magnitude(self, result):
        assert self._overhead(result, "limit") == pytest.approx(4.08, rel=0.25)

    def test_full_ordering(self, result):
        """Who wins, in the paper's order."""
        assert (self._overhead(result, "k-leb")
                < self._overhead(result, "perf-record")
                < self._overhead(result, "limit")
                < min(self._overhead(result, "perf-stat"),
                      self._overhead(result, "papi")))

    def test_relative_reduction_near_paper(self, result):
        # Paper: 58.8 % vs perf record.
        assert result.kleb_vs_next_best_percent == pytest.approx(58.8, abs=12)
