"""Ablation — attack detectability vs sampling rate.

The paper's core argument for 100 µs sampling: perf's single 10 ms
sample "merely indicates whether an attack has happened or not", while
K-LEB's series localizes it.  This ablation sweeps the sampling period
and attack strength, asking at each point whether the interval detector
(a) flags the run and (b) how early.
"""

import pytest

from repro.analysis.detection import detect_cache_anomaly
from repro.analysis.timeseries import deltas, samples_to_series
from repro.experiments.report import text_table
from repro.experiments.runner import run_monitored
from repro.sim.clock import ms, us
from repro.tools.registry import create_tool
from repro.workloads.meltdown import MeltdownAttack, SecretPrinter

EVENTS = ("LLC_REFERENCES", "LLC_MISSES", "LOADS", "STORES")
_SECRET = "SqueamishOss"
PERIODS = (us(100), us(500), ms(1), ms(10))


def _verdict(program, period, seed=0):
    result = run_monitored(program, create_tool("k-leb"), events=EVENTS,
                           period_ns=period, seed=seed)
    series = deltas(samples_to_series(result.report.samples))
    verdict = detect_cache_anomaly(series)
    return {
        "intervals": len(series),
        "detected": verdict.anomalous,
        "first_ms": (verdict.first_flag_ns / 1e6
                     if verdict.first_flag_ns is not None else None),
        "wall_ms": result.wall_ns / 1e6,
    }


@pytest.fixture(scope="module")
def sweep():
    attack = {period: _verdict(MeltdownAttack(secret=_SECRET), period)
              for period in PERIODS}
    clean = {period: _verdict(SecretPrinter(secret=_SECRET), period)
             for period in PERIODS}
    return attack, clean


def test_detection_rate_regenerate(benchmark, sweep):
    benchmark.pedantic(
        lambda: _verdict(MeltdownAttack(secret=_SECRET), us(100), seed=1),
        rounds=1, iterations=1,
    )
    attack, clean = sweep
    rows = []
    for period in PERIODS:
        data = attack[period]
        rows.append([
            f"{period / 1000:g} us",
            str(data["intervals"]),
            "yes" if data["detected"] else "no",
            f"{data['first_ms']:.2f} ms" if data["first_ms"] else "-",
            "yes" if clean[period]["detected"] else "no",
        ])
    print("\n" + text_table(
        ["period", "attack intervals", "attack detected",
         "first flagged at", "clean false-positive"],
        rows, title="Ablation — detection vs sampling rate",
    ))


class TestShape:
    def test_high_rate_detects_and_localizes(self, sweep):
        attack, _ = sweep
        data = attack[us(100)]
        assert data["detected"]
        assert data["first_ms"] < 0.25 * data["wall_ms"]

    def test_no_false_positives_at_any_rate(self, sweep):
        _, clean = sweep
        for period, data in clean.items():
            assert not data["detected"], period

    def test_10ms_rate_cannot_build_a_series(self, sweep):
        """At perf's floor the whole attack yields a handful of
        intervals — whether-it-happened, not when."""
        attack, _ = sweep
        assert attack[ms(10)]["intervals"] <= 5
        assert attack[us(100)]["intervals"] > 50 * max(
            attack[ms(10)]["intervals"], 1
        )

    def test_localization_degrades_with_period(self, sweep):
        attack, _ = sweep
        detected = [period for period in PERIODS
                    if attack[period]["detected"]
                    and attack[period]["first_ms"] is not None]
        # Wherever detection still works, a finer period never
        # localizes later than a coarser one (within one period).
        for fine, coarse in zip(detected, detected[1:]):
            slack_ms = coarse / 1e6
            assert attack[fine]["first_ms"] <= \
                attack[coarse]["first_ms"] + slack_ms
