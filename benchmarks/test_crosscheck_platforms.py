"""§IV cross-platform verification — local i7-920 vs AWS Xeon 8259CL.

Paper: "There was less than 1% difference in the counts."
"""

import pytest

from repro.experiments import crosscheck


@pytest.fixture(scope="module")
def result():
    return crosscheck.run(seed=0)


def test_crosscheck_regenerate(benchmark):
    outcome = benchmark.pedantic(lambda: crosscheck.run(seed=1),
                                 rounds=1, iterations=1)
    print("\n" + crosscheck.render(outcome))


class TestShape:
    def test_counts_agree_below_one_percent(self, result):
        assert result.worst_percent < 1.0

    def test_every_compared_event_agrees(self, result):
        for event, diff in result.differences_percent.items():
            assert diff < 1.0, event

    def test_runtimes_shift_with_clock(self, result):
        """Time-domain quantities legitimately differ: 2.67 vs 2.5 GHz."""
        assert result.aws_wall_ns > result.local_wall_ns * 1.03
