"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures and prints
the paper-style rows (run with ``-s`` to see them).  Populations are
moderate by default so the whole suite finishes in minutes; the paper's
full populations (100 runs / 100 rounds) can be requested with
``--paper-scale``.
"""

import pytest

from repro.experiments.parallel import default_jobs


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale", action="store_true", default=False,
        help="use the paper's full run/round populations (slow)",
    )
    parser.addoption(
        "--jobs", type=int, default=None,
        help="worker processes per trial population (default: all cores)",
    )


@pytest.fixture(scope="session")
def paper_scale(request):
    return request.config.getoption("--paper-scale")


@pytest.fixture(scope="session")
def runs(paper_scale):
    """Run population for the overhead studies (paper: 100)."""
    return 100 if paper_scale else 15


@pytest.fixture(scope="session")
def rounds(paper_scale):
    """Round population for the Meltdown study (paper: 100)."""
    return 100 if paper_scale else 5


@pytest.fixture(scope="session")
def trials(paper_scale):
    """Trial population for the LINPACK study (paper: 10)."""
    return 10 if paper_scale else 5


@pytest.fixture(scope="session")
def jobs(request):
    """Worker processes per trial population (results are identical
    regardless — see repro.experiments.parallel)."""
    value = request.config.getoption("--jobs")
    return default_jobs() if value is None else value
