"""Ablation — hardware prefetching vs the Flush+Reload side channel.

The Meltdown PoC the paper uses (IAIK github) spaces its probe array
one page apart.  This ablation shows why: with a next-line prefetcher,
line-spaced probes pollute each other (reloads hit, the signal and the
detectable LLC-miss burst both shrink), while page-spaced probes are
immune.  It also quantifies the detector's view of each variant.
"""

from dataclasses import replace

import pytest

from repro.analysis.detection import detect_cache_anomaly
from repro.analysis.metrics import report_mpki
from repro.analysis.timeseries import deltas, samples_to_series
from repro.experiments.report import text_table
from repro.experiments.runner import run_monitored
from repro.hw.presets import i7_920
from repro.sim.clock import us
from repro.tools.registry import create_tool
from repro.workloads.meltdown import MeltdownAttack

EVENTS = ("LLC_REFERENCES", "LLC_MISSES", "LOADS", "STORES")
_SECRET = "SqueamishOss"  # 12 chars keeps the sweep quick


def _attack_run(stride, prefetch, seed=0):
    machine = replace(i7_920(), prefetch_next_line=prefetch)
    program = MeltdownAttack(secret=_SECRET, probe_stride=stride)
    result = run_monitored(program, create_tool("k-leb"), events=EVENTS,
                           period_ns=us(100), seed=seed,
                           machine_config=machine)
    series = deltas(samples_to_series(result.report.samples))
    return {
        "mpki": report_mpki(result.report.totals),
        "misses": result.report.totals["LLC_MISSES"],
        "detected": detect_cache_anomaly(series).anomalous,
    }


@pytest.fixture(scope="module")
def variants():
    return {
        ("page", False): _attack_run(4096, prefetch=False),
        ("page", True): _attack_run(4096, prefetch=True),
        ("line", False): _attack_run(64, prefetch=False),
        ("line", True): _attack_run(64, prefetch=True),
    }


def test_prefetcher_ablation_regenerate(benchmark, variants):
    benchmark.pedantic(lambda: _attack_run(4096, True, seed=1),
                       rounds=1, iterations=1)
    rows = [
        [spacing, "on" if prefetch else "off",
         f"{data['mpki']:.1f}", f"{data['misses']:,.0f}",
         "yes" if data["detected"] else "no"]
        for (spacing, prefetch), data in variants.items()
    ]
    print("\n" + text_table(
        ["probe spacing", "prefetcher", "MPKI", "LLC misses", "detected"],
        rows, title="Ablation — probe spacing vs next-line prefetcher",
    ))


class TestShape:
    def test_page_spacing_mostly_immune_to_prefetcher(self, variants):
        """The probe traffic is untouched; only the victim's own
        sequential stream benefits from the prefetcher (a small drop),
        unlike the collapse of the line-spaced variant."""
        page_drop = 1 - (variants[("page", True)]["misses"]
                         / variants[("page", False)]["misses"])
        line_drop = 1 - (variants[("line", True)]["misses"]
                         / variants[("line", False)]["misses"])
        assert page_drop < 0.15
        assert line_drop > 0.4
        assert line_drop > 3 * page_drop

    def test_line_spacing_destroyed_by_prefetcher(self, variants):
        """The prefetcher wipes out most of the line-spaced reload
        misses — the PoC's page spacing is load-bearing."""
        assert variants[("line", True)]["misses"] < \
            0.6 * variants[("line", False)]["misses"]

    def test_page_spaced_attack_always_detected(self, variants):
        assert variants[("page", False)]["detected"]
        assert variants[("page", True)]["detected"]

    def test_mpki_drop_under_prefetcher_line_spacing(self, variants):
        assert variants[("line", True)]["mpki"] < \
            variants[("line", False)]["mpki"] * 0.7
