"""Ablation — perf stat multiplexing error vs event count.

Paper §II-B/§VI: perf virtualizes counters by time multiplexing when
more events are requested than registers exist, "with the cost of
decreased accuracy" — the estimation "may not be suitable for
measurement systems that require precision".

The error mechanism is *aliasing*: each event group only observes its
own rotation windows, and the ``count x time_total / time_running``
scale-up assumes the event rate was uniform.  On a phased workload
(where rates change over time) that assumption breaks.  K-LEB instead
refuses to over-subscribe the counters: precision over coverage.
"""

import pytest

from repro.errors import ToolError
from repro.experiments.report import text_table
from repro.experiments.runner import run_monitored
from repro.sim.clock import ms
from repro.tools.kleb import KLebTool
from repro.tools.perf import PerfStatTool
from repro.workloads.base import ListProgram, Program, RateBlock

ALL_EVENTS = ("LOADS", "STORES", "BRANCHES", "ARITH_MUL",
              "LLC_MISSES", "BRANCH_MISSES", "FP_OPS", "LLC_REFERENCES")
_TOTAL = 6e8
_PHASES = 5
_HI, _LO = 0.7, 0.02


def phased_workload() -> Program:
    """Alternating high-load / low-load phases (~45 ms each)."""
    per_phase = _TOTAL / _PHASES
    blocks = []
    for index in range(_PHASES):
        rate = _HI if index % 2 == 0 else _LO
        blocks.append(RateBlock(
            instructions=per_phase,
            rates={"LOADS": rate, "STORES": 0.1, "BRANCHES": 0.1,
                   "ARITH_MUL": 0.05, "LLC_MISSES": 0.001,
                   "BRANCH_MISSES": 0.002},
            label=f"phase-{index}",
        ))
    return ListProgram("phased", blocks)


def true_loads() -> float:
    per_phase = _TOTAL / _PHASES
    high_phases = (_PHASES + 1) // 2
    return per_phase * (high_phases * _HI + (_PHASES - high_phases) * _LO)


def _loads_error(event_count, seed=0):
    events = ALL_EVENTS[:event_count]
    result = run_monitored(
        phased_workload(), PerfStatTool(), events=events,
        period_ns=ms(10), seed=seed,
    )
    measured = result.report.totals["LOADS"]
    return 100.0 * abs(measured - true_loads()) / true_loads()


@pytest.fixture(scope="module")
def errors():
    return {count: _loads_error(count) for count in (2, 4, 6, 8)}


def test_multiplexing_regenerate(benchmark, errors):
    benchmark.pedantic(lambda: _loads_error(6, seed=1),
                       rounds=1, iterations=1)
    rows = [
        [str(count), "yes" if count > 4 else "no", f"{error:.4f}%"]
        for count, error in errors.items()
    ]
    print("\n" + text_table(
        ["events", "multiplexed", "LOADS count error"],
        rows, title="Ablation — perf stat multiplexing error (phased load)",
    ))


class TestShape:
    def test_within_counter_budget_is_exact(self, errors):
        assert errors[2] < 1e-6
        assert errors[4] < 1e-6

    def test_multiplexing_introduces_real_error(self, errors):
        """Percent-scale error — far beyond Fig. 9's 0.3% bound, which
        is exactly why the paper calls the estimates unsuitable for
        precision measurement."""
        assert errors[6] > 0.3

    def test_error_persists_with_more_groups(self, errors):
        assert errors[8] > 0.3

    def test_kleb_refuses_instead_of_estimating(self):
        with pytest.raises(ToolError):
            run_monitored(phased_workload(), KLebTool(),
                          events=ALL_EVENTS[:6], period_ns=ms(10), seed=0)
