"""Hot-path microbenchmark suite (`python -m benchmarks.perf`).

Tracks the wall-clock cost of the simulator's three hottest paths —
PMU accumulation, event-queue scheduling/re-arm, and trace replay
through the cache hierarchy — plus a combined table2 + fig7 end-to-end
run, so every PR leaves a perf trajectory in ``BENCH_hotpath.json`` at
the repo root.

Files here are named ``bench_*``/``suite``/``report`` on purpose: the
pytest collector (which picks up ``test_*`` under ``benchmarks/``)
ignores them, so the perf suite only runs when invoked explicitly.
"""

from benchmarks.perf.suite import run_suite  # noqa: F401
