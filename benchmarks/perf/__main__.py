"""CLI for the hot-path benchmark suite.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.perf                 # full suite
    PYTHONPATH=src python -m benchmarks.perf --quick         # CI smoke
    PYTHONPATH=src python -m benchmarks.perf --quick \
        --check BENCH_hotpath.json --tolerance 0.25          # regression gate

The suite writes ``BENCH_hotpath.json`` (``--output`` to override)
containing the measured numbers, the committed pre-optimization
baseline (``benchmarks/perf/baseline.json``), and the speedup against
it.  ``--check`` compares the fresh run's *calibrated* ratios (see
``suite.py``) against a previously committed result file and exits
non-zero on a regression beyond ``--tolerance`` (default 25 %).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Dict

from benchmarks.perf.suite import run_suite

BASELINE_PATH = Path(__file__).parent / "baseline.json"
DEFAULT_OUTPUT = Path(__file__).parent.parent.parent / "BENCH_hotpath.json"

# Benchmarks whose calibrated ratio the regression gate inspects.
# Calibration itself is the yardstick and end-to-end is covered by the
# committed speedup numbers; the micros are the sensitive detectors.
CHECKED = ("pmu_accumulate", "pmu_epoch_accumulate", "event_queue",
           "hrtimer_rearm", "trace_replay", "trace_replay_batch",
           "ringbuffer_drain_columnar", "ringbuffer_merge_drain",
           "end_to_end_table2_fig7")

# Hard caps on the same-process on/off ratios: full tracing+metrics
# may slow the monitored end-to-end path by at most 15 %, and an armed
# but never-actuating adaptive controller is held to the same bound.
# Unlike the calibrated comparisons these are absolute bounds — both
# halves are measured in the same process, so the ratio needs no
# committed reference to be meaningful.
OBS_OVERHEAD_CAP = 1.15
OVERHEAD_CAPS = {
    "obs_overhead": OBS_OVERHEAD_CAP,
    "adaptive_overhead": 1.15,
    # The armed-but-idle live telemetry plane (bus + publisher + HTTP
    # server, no scrapers) is held to the same bound.
    "live_overhead": 1.15,
}


def _load_baseline(quick: bool) -> Dict:
    if not BASELINE_PATH.exists():
        return {}
    document = json.loads(BASELINE_PATH.read_text())
    return document.get("quick" if quick else "full", {})


def _speedups(current: Dict[str, Dict[str, float]],
              baseline: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    speedups: Dict[str, float] = {}
    for name, metrics in current.items():
        base = baseline.get(name)
        if not base or name == "calibration":
            continue
        if metrics["ns_per_op"] > 0:
            speedups[name] = base["ns_per_op"] / metrics["ns_per_op"]
    return speedups


def _check(current: Dict[str, Dict[str, float]], committed_path: Path,
           tolerance: float) -> int:
    """Regression gate: fresh calibrated ratios vs a committed run."""
    try:
        committed = json.loads(committed_path.read_text())["results"]
    except (OSError, KeyError, json.JSONDecodeError) as error:
        print(f"cannot read committed results {committed_path}: {error}",
              file=sys.stderr)
        return 2
    failures = []
    for name in CHECKED:
        fresh = current.get(name, {}).get("calibrated")
        base = committed.get(name, {}).get("calibrated")
        if fresh is None or base is None or base <= 0:
            # A micro added since the committed file was refreshed has
            # no reference yet; say so instead of silently passing it.
            print(f"  {name:28s} skipped (no committed reference)")
            continue
        regression = fresh / base - 1.0
        status = "REGRESSION" if regression > tolerance else "ok"
        print(f"  {name:28s} calibrated {base:10.2f} -> {fresh:10.2f} "
              f"({regression:+7.1%}) {status}")
        if regression > tolerance:
            failures.append(name)
            # Raw numbers for the failing micro: the calibrated ratio
            # says *that* it regressed; ns/op against the committed
            # run (and both runs' calibration yardsticks) says whether
            # the simulator or the host yardstick moved.
            fresh_ns = current.get(name, {}).get("ns_per_op", 0.0)
            base_ns = committed.get(name, {}).get("ns_per_op", 0.0)
            fresh_cal = current.get("calibration", {}).get("ns_per_op", 0.0)
            base_cal = committed.get("calibration", {}).get("ns_per_op", 0.0)
            print(f"      committed {base_ns:14.1f} ns/op "
                  f"(calibration {base_cal:8.2f} ns/op)")
            print(f"      fresh     {fresh_ns:14.1f} ns/op "
                  f"(calibration {fresh_cal:8.2f} ns/op)")
    for name, cap in OVERHEAD_CAPS.items():
        overhead = current.get(name, {}).get("overhead_ratio")
        if overhead is None:
            continue
        status = "REGRESSION" if overhead > cap else "ok"
        print(f"  {name:28s} on/off ratio "
              f"{overhead:10.3f} (cap {cap:.2f}) {status}")
        if overhead > cap:
            failures.append(name)
    if failures:
        print(f"FAIL: {len(failures)} benchmark(s) regressed beyond "
              f"{tolerance:.0%}: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"regression gate passed (tolerance {tolerance:.0%})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="benchmarks.perf",
                                     description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke mode)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="result JSON path (default: repo-root "
                             "BENCH_hotpath.json)")
    parser.add_argument("--check", type=Path, default=None,
                        help="committed result file to gate regressions "
                             "against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed calibrated-ratio regression "
                             "(default 0.25 = 25%%)")
    args = parser.parse_args(argv)

    if (args.check is not None
            and args.check.resolve() == args.output.resolve()):
        print("--check must point at a previously committed result file, "
              "not this run's --output (the gate would compare the run "
              "to itself)", file=sys.stderr)
        return 2

    mode = "quick" if args.quick else "full"
    print(f"running hot-path suite ({mode} mode)...")
    results = run_suite(quick=args.quick)
    for name, metrics in results.items():
        print(f"  {name:28s} {metrics['seconds']:8.3f}s  "
              f"{metrics['ns_per_op']:12.1f} ns/op  "
              f"calibrated {metrics['calibrated']:10.2f}")
    overhead = results["obs_overhead"]["overhead_ratio"]
    print(f"  observability on/off overhead ratio: {overhead:.3f}")
    adaptive = results["adaptive_overhead"]["overhead_ratio"]
    print(f"  adaptive-armed on/off overhead ratio: {adaptive:.3f}")
    live = results["live_overhead"]["overhead_ratio"]
    print(f"  live-plane-armed on/off overhead ratio: {live:.3f}")

    baseline = _load_baseline(args.quick)
    document = {
        "schema": 1,
        "mode": mode,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "results": results,
        "pre_optimization_baseline": baseline,
        "speedup_vs_pre_optimization": _speedups(results, baseline),
    }
    args.output.write_text(json.dumps(document, indent=2, sort_keys=True)
                           + "\n")
    print(f"wrote {args.output}")
    end_to_end = document["speedup_vs_pre_optimization"].get(
        "end_to_end_table2_fig7")
    if end_to_end is not None:
        print(f"end-to-end table2+fig7 speedup vs pre-optimization "
              f"baseline: {end_to_end:.2f}x")

    if args.check is not None:
        return _check(results, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
