"""The benchmark definitions: three hot-path micros plus end-to-end.

Every benchmark reports raw seconds, an operation count, a normalized
``ns_per_op``, and ``calibrated`` — ``ns_per_op`` divided by the ns/op
of a fixed pure-Python calibration loop measured in the same process.
The calibrated ratio cancels host speed to first order, which is what
the CI regression gate compares (absolute nanoseconds differ between a
laptop and a CI runner; the ratio of simulator work to plain Python
work does not, to first order).
"""

from __future__ import annotations

import gc
import time
from typing import Callable, Dict, List, Optional

from repro.experiments import table2
from repro.experiments.runner import run_monitored
from repro.hw.machine import Machine
from repro.hw.presets import i7_920
from repro.hw.pmu import Pmu
from repro.kernel.config import KernelConfig
from repro.kernel.hrtimer import HrTimer
from repro.kernel.kernel import Kernel
from repro.sim.clock import ms, us
from repro.sim.engine import EventQueue
from repro.sim.rng import RngStreams
from repro.tools.registry import create_tool
from repro.workloads.base import ListProgram, MemOp, OpKind, Program, TraceBlock
from repro.workloads.matmul import TripleLoopMatmul
from repro.workloads.meltdown import MeltdownAttack, SecretPrinter

FIG7_EVENTS = ("LLC_REFERENCES", "LLC_MISSES", "LOADS", "STORES")
QUICK_SECRET = "Sq!mish"


def _timed(fn: Callable[[], int]) -> Dict[str, float]:
    """Run ``fn`` (returns its op count) with GC paused; report timing."""
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        ops = fn()
        seconds = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "seconds": seconds,
        "ops": float(ops),
        "ns_per_op": seconds * 1e9 / max(ops, 1),
    }


def bench_calibration(iters: int = 2_000_000) -> Dict[str, float]:
    """Fixed pure-Python spin loop: the host-speed yardstick."""

    def loop() -> int:
        total = 0
        for value in range(iters):
            total += value & 0xFF
        return iters

    result = _timed(loop)
    result["checksum"] = 0.0
    return result


def bench_pmu_accumulate(iters: int) -> Dict[str, float]:
    """``Pmu.accumulate`` with a realistic counter programming.

    Three fixed counters plus four programmable events, alternating
    user/kernel slices — the exact shape every execution slice feeds
    the PMU.
    """
    pmu = Pmu()
    pmu.enable_fixed(user=True, kernel=False)
    for index, name in enumerate(("LOADS", "STORES", "BRANCHES",
                                  "LLC_MISSES")):
        pmu.program_counter(index, name, user=True, kernel=False)
    pmu.global_enable()
    user_counts = {
        "INST_RETIRED": 5000.0, "CORE_CYCLES": 6000.0,
        "REF_CYCLES": 6000.0, "LOADS": 1700.0, "STORES": 900.0,
        "BRANCHES": 1100.0, "LLC_MISSES": 12.5, "FP_OPS": 300.0,
    }
    kernel_counts = {
        "INST_RETIRED": 800.0, "CORE_CYCLES": 1000.0,
        "REF_CYCLES": 1000.0, "LOADS": 260.0, "STORES": 140.0,
        "BRANCHES": 90.0,
    }

    def loop() -> int:
        accumulate = pmu.accumulate
        for index in range(iters):
            if index & 3:
                accumulate(user_counts, "user")
            else:
                accumulate(kernel_counts, "kernel")
        return iters

    result = _timed(loop)
    result["checksum"] = float(pmu.rdpmc(0))
    return result


def bench_pmu_epoch_accumulate(iters: int) -> Dict[str, float]:
    """``Pmu.accumulate_epoch`` — the batch replay path's fused delivery.

    Same programming as ``bench_pmu_accumulate``, but each slice lands
    as one name-tuple/value-row call (the shape ``_run_trace_batch``
    produces), so the compiled apply-list fast path is what's measured.
    """
    pmu = Pmu()
    pmu.enable_fixed(user=True, kernel=False)
    for index, name in enumerate(("LOADS", "STORES", "BRANCHES",
                                  "LLC_MISSES")):
        pmu.program_counter(index, name, user=True, kernel=False)
    pmu.global_enable()
    names = ("INST_RETIRED", "CORE_CYCLES", "REF_CYCLES", "LOADS",
             "STORES", "BRANCHES", "LLC_MISSES", "FP_OPS")
    user_values = (5000.0, 6000.0, 6000.0, 1700.0, 900.0, 1100.0,
                   12.5, 300.0)
    kernel_values = (800.0, 1000.0, 1000.0, 260.0, 140.0, 90.0, 0.0, 0.0)

    def loop() -> int:
        accumulate_epoch = pmu.accumulate_epoch
        for index in range(iters):
            if index & 3:
                accumulate_epoch(names, user_values, "user")
            else:
                accumulate_epoch(names, kernel_values, "kernel")
        return iters

    result = _timed(loop)
    result["checksum"] = float(pmu.rdpmc(0))
    return result


def bench_event_queue(fires: int, streams: int = 16) -> Dict[str, float]:
    """Periodic schedule/dispatch/re-arm with cancellation tombstones.

    ``streams`` interleaved periodic timers re-arm themselves on every
    fire (the HRTimer pattern); every fourth fire also schedules a
    decoy event and immediately cancels it, so the lazy-cancellation
    path is always in play.
    """
    queue = EventQueue()
    state = {"fired": 0}
    period = 100_000

    def make_callback(stream: int) -> Callable[[int], None]:
        def fire(when: int) -> None:
            state["fired"] += 1
            event = queue.schedule(when + period, fire, label=f"s{stream}")
            if state["fired"] & 3 == 0:
                decoy = queue.schedule(when + 3 * period, fire, label="decoy")
                decoy.cancel()
            _ = event
        return fire

    for stream in range(streams):
        queue.schedule(1000 + stream, make_callback(stream), label=f"s{stream}")

    def loop() -> int:
        now = 0
        while state["fired"] < fires:
            next_time = queue.peek_time()
            if next_time is None:  # pragma: no cover - queue never drains
                break
            now = next_time
            queue.dispatch_due(now)
        return state["fired"]

    result = _timed(loop)
    result["checksum"] = float(len(queue))
    return result


def bench_hrtimer_rearm(fires: int) -> Dict[str, float]:
    """Kernel-level periodic HRTimer at 100 us driven by the run loop.

    Exercises the full fire path: idle advance to the expiry, interrupt
    entry/exit charging, jitter draw, ideal-grid re-arm.
    """
    machine = Machine(i7_920())
    kernel = Kernel(machine, config=KernelConfig(), rng=RngStreams(1234))
    count = {"fires": 0}

    def tick(when: int) -> None:
        count["fires"] += 1

    timer = HrTimer(kernel, tick, label="bench")
    timer.start(us(100))

    def loop() -> int:
        kernel.run(deadline=fires * us(100) + us(50))
        return count["fires"]

    result = _timed(loop)
    timer.cancel()
    result["checksum"] = float(count["fires"])
    return result


def _trace_program(rounds: int) -> Program:
    """A trace mixing the patterns the case studies produce.

    Per round: a streaming sweep (fresh lines, misses), a dense re-walk
    of the same buffer (hits, with same-line runs), and a Flush+Reload
    probe pass (page-spaced flushes then reloads) — the Fig. 6/7 mix.
    """
    line, page = 64, 4096
    ops: List[MemOp] = []
    for round_index in range(rounds):
        stream_base = 0x1000_0000 + round_index * 512 * line
        for index in range(512):
            ops.append(MemOp(stream_base + index * line, OpKind.LOAD))
        for index in range(1024):
            # 4 accesses per line: same-line runs within the sweep.
            ops.append(MemOp(stream_base + (index // 4) * line * 2
                             + (index % 4) * 8, OpKind.LOAD))
        probe_base = 0x4000_0000
        for index in range(128):
            ops.append(MemOp(probe_base + index * page, OpKind.FLUSH))
        for index in range(128):
            ops.append(MemOp(probe_base + index * page, OpKind.LOAD))
    block = TraceBlock(ops=ops, instructions_per_op=3.0, event_scale=4.0,
                       label="bench-trace")
    return ListProgram("bench-trace", [block])


def bench_trace_replay(rounds: int) -> Dict[str, float]:
    """Core.execute over a mixed trace (stream + re-walk + flush/reload)."""
    from repro.workloads.base import BlockCursor

    machine = Machine(i7_920())
    program = _trace_program(rounds)
    total_ops = rounds * (512 + 1024 + 128 + 128)

    def loop() -> int:
        cursor = BlockCursor(program)
        budget = us(100)
        while not cursor.finished:
            machine.core.execute(cursor, budget)
        return total_ops

    result = _timed(loop)
    result["checksum"] = float(machine.cache.stats.accesses)
    return result


def _attack_trace_program(rounds: int) -> Program:
    """A Flush+Reload trace tiled from one shared round tuple.

    The shape the Meltdown attack produces — a long flush run, one
    transient access, then a reload pass whose misses are statically
    guaranteed by the preceding flushes — which is exactly what the
    batch planner collapses into flush/guaranteed-miss segments.
    """
    page = 4096
    probe_base = 0x4000_0000
    round_ops: List[MemOp] = []
    for index in range(256):
        round_ops.append(MemOp(probe_base + index * page, OpKind.FLUSH))
    round_ops.append(MemOp(probe_base + 77 * page, OpKind.LOAD))
    for index in range(256):
        round_ops.append(MemOp(probe_base + index * page, OpKind.LOAD))
    ops = tuple(round_ops) * rounds
    block = TraceBlock(ops=ops, instructions_per_op=4.0, event_scale=4.0,
                       label="bench-trace-batch")
    return ListProgram("bench-trace-batch", [block])


def bench_trace_replay_batch(rounds: int) -> Dict[str, float]:
    """Core.execute over the attack-shaped trace (batch replay path).

    The op tuple is reused across iterations, so the planner compiles
    once and every replay runs the segment-collapsed fast path — the
    regime the end-to-end Fig. 7 run lives in.
    """
    from repro.workloads.base import BlockCursor

    machine = Machine(i7_920())
    program = _attack_trace_program(rounds)
    total_ops = rounds * (256 + 1 + 256)

    def loop() -> int:
        cursor = BlockCursor(program)
        budget = us(100)
        while not cursor.finished:
            machine.core.execute(cursor, budget)
        return total_ops

    loop()  # compile the trace plan off the clock (once per process)
    result = _timed(loop)
    result["checksum"] = float(machine.cache.stats.accesses)
    return result


def bench_ringbuffer_drain_columnar(rows: int) -> Dict[str, float]:
    """ColumnarRing push_row/drain round-trips (the sample hot path).

    Ten event columns — the non-multiplexed K-LEB row width — pushed
    one row per "fire" and drained in half-capacity batches, matching
    the module/controller cadence.
    """
    from repro.kernel.ringbuffer import ColumnarRing

    names = ("INST_RETIRED", "CORE_CYCLES", "REF_CYCLES", "LOADS",
             "STORES", "CACHE_FLUSHES", "L1D_MISSES", "L2_MISSES",
             "LLC_REFERENCES", "LLC_MISSES")
    capacity = 1024
    ring = ColumnarRing(capacity, names)
    row = list(range(10, 110, 10))
    drained = 0

    def loop() -> int:
        nonlocal drained
        push_row = ring.push_row
        drain = ring.drain
        for index in range(rows):
            push_row(index, row)
            if index % (capacity // 2) == capacity // 2 - 1:
                drained += len(drain())
        drained += len(drain())
        return rows

    result = _timed(loop)
    result["checksum"] = float(drained)
    return result


def bench_ringbuffer_merge_drain(rows: int) -> Dict[str, float]:
    """PerCpuRing push/merging-drain round-trips (the SMP sample path).

    Four private per-CPU rings fed round-robin with interleaved
    timestamps — the shape a 4-core lockstep run produces — drained
    through the k-way ``(timestamp, cpu)`` merge in half-capacity
    batches.  This prices the merge planner on top of the plain
    columnar drain measured above.
    """
    from repro.kernel.ringbuffer import PerCpuRing

    names = ("INST_RETIRED", "CORE_CYCLES", "REF_CYCLES", "LOADS",
             "STORES", "CACHE_FLUSHES", "L1D_MISSES", "L2_MISSES",
             "LLC_REFERENCES", "LLC_MISSES")
    cpus = 4
    capacity_per_cpu = 256
    ring = PerCpuRing(capacity_per_cpu, names, cpus=cpus)
    row = list(range(10, 110, 10))
    batch = capacity_per_cpu * cpus // 2
    drained = 0

    def loop() -> int:
        nonlocal drained
        push_row = ring.push_row
        drain = ring.drain
        for index in range(rows):
            # Round-robin across CPUs with a shared clock: adjacent
            # pushes land in different rings with out-of-order keys,
            # which is exactly what the merge has to untangle.
            push_row(index & 3, index >> 2, row)
            if index % batch == batch - 1:
                drained += len(drain())
        drained += len(drain())
        return rows

    result = _timed(loop)
    result["checksum"] = float(drained)
    return result


def bench_end_to_end(quick: bool) -> Dict[str, float]:
    """The acceptance benchmark: a table2 population plus the fig7 pair.

    Runs at ``jobs=1`` by construction — this measures single-process
    hot-path speed, not pool fan-out.
    """
    if quick:
        runs, n, secret = 2, 192, QUICK_SECRET
    else:
        runs, n, secret = 3, 384, MeltdownAttack().secret

    def loop() -> int:
        table2.run(runs=runs, n=n, period_ns=ms(10), seed=0, jobs=1)
        for program in (SecretPrinter(secret), MeltdownAttack(secret)):
            run_monitored(program, create_tool("k-leb"), events=FIG7_EVENTS,
                          period_ns=us(100), seed=0)
        run_monitored(SecretPrinter(secret), create_tool("perf-stat"),
                      events=FIG7_EVENTS, period_ns=us(100), seed=0)
        return 1

    result = _timed(loop)
    result["checksum"] = 0.0
    return result


def bench_obs_overhead(quick: bool, repeats: int = 3) -> Dict[str, float]:
    """Identical monitored run with the recorder off vs fully on.

    Off/on measurements alternate in one process, so drift (frequency
    scaling, cache state) hits both sides equally instead of folding
    into the ratio.  Two estimators are computed — best-on over
    best-off, and the median of adjacent-pair ratios — and the
    *smaller* wins: each is robust to a different noise shape (a
    lucky outlier on one side vs. a slow window straddling one pair),
    and a genuine regression moves both.  The regression gate caps
    the ratio: full tracing+metrics may cost at most 15 % on the
    end-to-end monitored path, and the obs-off half is the same code
    the other micros gate (the ``_obs is None`` guards are always
    compiled in).
    """
    from repro.obs import hooks as obs_hooks

    n, rounds = (192, 24) if quick else (192, 36)
    pairs = max(repeats, 5)

    def scenario() -> int:
        samples = 0
        for _ in range(rounds):
            result = run_monitored(
                TripleLoopMatmul(n), create_tool("k-leb"),
                events=FIG7_EVENTS, period_ns=us(100), seed=0,
            )
            samples += len(result.report.samples)
        return max(1, samples)

    scenario()  # warm allocators and import-time caches off the clock
    recorder = obs_hooks.Recorder()
    offs: List[Dict[str, float]] = []
    ons: List[Dict[str, float]] = []
    for _ in range(pairs):
        offs.append(_timed(scenario))
        obs_hooks.install(recorder)
        try:
            ons.append(_timed(scenario))
        finally:
            obs_hooks.reset()
    off = min(offs, key=lambda sample: sample["ns_per_op"])
    on = min(ons, key=lambda sample: sample["ns_per_op"])
    pair_ratios = sorted(
        on_s["ns_per_op"] / off_s["ns_per_op"]
        for on_s, off_s in zip(ons, offs)
    )
    median_ratio = pair_ratios[len(pair_ratios) // 2]
    result = dict(on)
    result["off_ns_per_op"] = off["ns_per_op"]
    result["overhead_ratio"] = min(
        on["ns_per_op"] / off["ns_per_op"], median_ratio)
    result["checksum"] = float(len(recorder.tracer))
    return result


def bench_adaptive_overhead(quick: bool, repeats: int = 3) -> Dict[str, float]:
    """Identical monitored run with the adaptive controller off vs armed.

    The "on" half arms the closed loop with a generous overhead budget,
    so the controller observes every drain cycle but never actuates —
    the sample series is bit-identical to the fixed-period run (pinned
    by the integration tests), and the measured ratio is pure
    control-loop bookkeeping: sensor sampling, EWMA/variance updates,
    and the per-cycle decision.  Same alternating off/on protocol and
    dual estimator as ``bench_obs_overhead``; the gate holds the
    adaptive-off path to the same 15 % cap.
    """
    from repro.control import ControlConfig
    from repro.tools.kleb.tool import KLebTool

    n, rounds = (192, 24) if quick else (192, 36)
    pairs = max(repeats, 5)

    observations = 0.0

    def scenario(adaptive: bool) -> int:
        nonlocal observations
        samples = 0
        for _ in range(rounds):
            tool = KLebTool(control=ControlConfig(
                overhead_budget_percent=90.0,
                min_period_ns=us(100), max_period_ns=ms(10),
            )) if adaptive else create_tool("k-leb")
            result = run_monitored(
                TripleLoopMatmul(n), tool,
                events=FIG7_EVENTS, period_ns=us(100), seed=0,
            )
            samples += len(result.report.samples)
            if adaptive:
                observations = result.report.metadata[
                    "adaptive_observations"]
        return max(1, samples)

    scenario(True)  # warm allocators and import-time caches off the clock
    offs: List[Dict[str, float]] = []
    ons: List[Dict[str, float]] = []
    for _ in range(pairs):
        offs.append(_timed(lambda: scenario(False)))
        ons.append(_timed(lambda: scenario(True)))
    off = min(offs, key=lambda sample: sample["ns_per_op"])
    on = min(ons, key=lambda sample: sample["ns_per_op"])
    pair_ratios = sorted(
        on_s["ns_per_op"] / off_s["ns_per_op"]
        for on_s, off_s in zip(ons, offs)
    )
    median_ratio = pair_ratios[len(pair_ratios) // 2]
    result = dict(on)
    result["off_ns_per_op"] = off["ns_per_op"]
    result["overhead_ratio"] = min(
        on["ns_per_op"] / off["ns_per_op"], median_ratio)
    result["checksum"] = observations
    return result


def bench_live_overhead(quick: bool, repeats: int = 3) -> Dict[str, float]:
    """Identical monitored run with the live telemetry plane off vs armed.

    The "on" half is the full ``--live`` stack: a metrics recorder with
    a non-retaining tracer feeding a flight ring, a publisher
    heartbeating onto a started snapshot bus, and the HTTP server bound
    — but *no scrapers*, so the ratio is the pure cost of arming the
    plane: the per-hook heartbeat stride, flight-ring appends, and the
    cadence-gated snapshot builds.  Same alternating off/on protocol
    and dual estimator as ``bench_obs_overhead``; the gate caps the
    armed-but-idle plane at 15 % on the end-to-end monitored path.
    """
    from repro.obs import hooks as obs_hooks
    from repro.obs.live import (
        FlightRecorder,
        LivePublisher,
        LiveServer,
        LiveState,
        SnapshotBus,
        Watchdog,
    )

    n, rounds = (192, 24) if quick else (192, 36)
    pairs = max(repeats, 5)

    def scenario() -> int:
        samples = 0
        for _ in range(rounds):
            result = run_monitored(
                TripleLoopMatmul(n), create_tool("k-leb"),
                events=FIG7_EVENTS, period_ns=us(100), seed=0,
            )
            samples += len(result.report.samples)
        return max(1, samples)

    scenario()  # warm allocators and import-time caches off the clock
    flight = FlightRecorder()
    recorder = obs_hooks.Recorder(trace=False, metrics=True, flight=flight)
    state = LiveState(base_metrics=recorder.registry.to_json(),
                      run_label="bench")
    watchdog = Watchdog(flight=flight)
    state.add_listener(watchdog.observe)
    bus = SnapshotBus(state)
    publisher = LivePublisher(bus)
    publisher.bind(recorder)
    recorder.publisher = publisher
    bus.start()
    server = LiveServer(state, watchdog, port=0)
    server.start()
    offs: List[Dict[str, float]] = []
    ons: List[Dict[str, float]] = []
    try:
        for _ in range(pairs):
            offs.append(_timed(scenario))
            obs_hooks.install(recorder)
            try:
                ons.append(_timed(scenario))
            finally:
                obs_hooks.reset()
    finally:
        server.stop()
        bus.stop()
    off = min(offs, key=lambda sample: sample["ns_per_op"])
    on = min(ons, key=lambda sample: sample["ns_per_op"])
    pair_ratios = sorted(
        on_s["ns_per_op"] / off_s["ns_per_op"]
        for on_s, off_s in zip(ons, offs)
    )
    median_ratio = pair_ratios[len(pair_ratios) // 2]
    result = dict(on)
    result["off_ns_per_op"] = off["ns_per_op"]
    result["overhead_ratio"] = min(
        on["ns_per_op"] / off["ns_per_op"], median_ratio)
    result["checksum"] = float(flight.recorded + bus.published)
    return result


_QUICK_SCALE = {
    "pmu_accumulate": 20_000,
    "pmu_epoch_accumulate": 20_000,
    "event_queue": 40_000,
    "hrtimer_rearm": 4_000,
    "trace_replay": 60,
    "trace_replay_batch": 60,
    "ringbuffer_drain_columnar": 100_000,
    "ringbuffer_merge_drain": 60_000,
}
_FULL_SCALE = {
    "pmu_accumulate": 100_000,
    "pmu_epoch_accumulate": 100_000,
    "event_queue": 200_000,
    "hrtimer_rearm": 20_000,
    "trace_replay": 300,
    "trace_replay_batch": 300,
    "ringbuffer_drain_columnar": 500_000,
    "ringbuffer_merge_drain": 300_000,
}


def _best_of(fn: Callable[[], Dict[str, float]],
             repeats: int) -> Dict[str, float]:
    """Re-run a benchmark and keep the fastest repeat.

    Noise on a shared host is one-sided — GC pauses, scheduler
    preemption, and cache pollution only ever *add* time — so the
    minimum is the stable estimator, and what makes the 25 % CI gate
    usable on short quick-mode runs.
    """
    best: Optional[Dict[str, float]] = None
    for _ in range(repeats):
        result = fn()
        if best is None or result["ns_per_op"] < best["ns_per_op"]:
            best = result
    assert best is not None
    return best


def run_suite(quick: bool = False,
              repeats: int = 3) -> Dict[str, Dict[str, float]]:
    """Run every benchmark; return name -> metrics (with ``calibrated``)."""
    scale = _QUICK_SCALE if quick else _FULL_SCALE
    results: Dict[str, Dict[str, float]] = {}
    calibration = _best_of(bench_calibration, repeats)
    results["calibration"] = calibration
    results["pmu_accumulate"] = _best_of(
        lambda: bench_pmu_accumulate(scale["pmu_accumulate"]), repeats)
    results["pmu_epoch_accumulate"] = _best_of(
        lambda: bench_pmu_epoch_accumulate(scale["pmu_epoch_accumulate"]),
        repeats)
    results["event_queue"] = _best_of(
        lambda: bench_event_queue(scale["event_queue"]), repeats)
    results["hrtimer_rearm"] = _best_of(
        lambda: bench_hrtimer_rearm(scale["hrtimer_rearm"]), repeats)
    results["trace_replay"] = _best_of(
        lambda: bench_trace_replay(scale["trace_replay"]), repeats)
    results["trace_replay_batch"] = _best_of(
        lambda: bench_trace_replay_batch(scale["trace_replay_batch"]),
        repeats)
    results["ringbuffer_drain_columnar"] = _best_of(
        lambda: bench_ringbuffer_drain_columnar(
            scale["ringbuffer_drain_columnar"]), repeats)
    results["ringbuffer_merge_drain"] = _best_of(
        lambda: bench_ringbuffer_merge_drain(
            scale["ringbuffer_merge_drain"]), repeats)
    results["end_to_end_table2_fig7"] = _best_of(
        lambda: bench_end_to_end(quick), repeats)
    results["obs_overhead"] = bench_obs_overhead(quick, repeats)
    results["adaptive_overhead"] = bench_adaptive_overhead(quick, repeats)
    results["live_overhead"] = bench_live_overhead(quick, repeats)
    calibration_ns = calibration["ns_per_op"]
    for name, metrics in results.items():
        metrics["calibrated"] = metrics["ns_per_op"] / calibration_ns
    return results
