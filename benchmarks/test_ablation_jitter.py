"""Ablation — HRTimer jitter at high sampling rates.

Paper §VI: "even a 1 % jitter could cause the collection mechanism to
shift an entire time step off with only 100 iterations".  This bench
fires a raw kernel HRTimer at 100 µs under increasing per-fire jitter
and shows that the absolute-expiry-grid design bounds the *cumulative*
drift to a couple of jitter draws — per-fire lateness does not
accumulate into the step-shift the paper warns about.
"""

import numpy as np
import pytest

from repro.experiments.report import text_table
from repro.hw.machine import Machine
from repro.hw.presets import i7_920
from repro.kernel.config import KernelConfig
from repro.kernel.hrtimer import HrTimer
from repro.kernel.kernel import Kernel
from repro.sim.clock import ms, us
from repro.sim.rng import RngStreams

PERIOD = us(100)
FIRES = 200


def _fire_times(jitter_sd_ns, seed=0):
    config = KernelConfig(
        noise_enabled=False,
        hrtimer_jitter_mean_ns=jitter_sd_ns,
        hrtimer_jitter_sd_ns=jitter_sd_ns,
        irq_entry_ns=0,
        irq_exit_ns=0,
    )
    kernel = Kernel(Machine(i7_920()), config=config, rng=RngStreams(seed))
    fires = []
    timer = HrTimer(kernel, fires.append, label="ablation")
    timer.start(PERIOD)
    kernel.run(deadline=PERIOD * (FIRES + 1))
    return np.array(fires, dtype=np.int64)


@pytest.fixture(scope="module")
def jitter_data():
    return {sd: _fire_times(sd) for sd in (0, 500, 2_000, 5_000)}


def test_jitter_regenerate(benchmark, jitter_data):
    benchmark.pedantic(lambda: _fire_times(1_000, seed=1),
                       rounds=1, iterations=1)
    rows = []
    for sd, times in jitter_data.items():
        intervals = np.diff(times)
        drift = int(times[-1]) - PERIOD * len(times)
        rows.append([
            f"{sd} ns",
            f"{intervals.mean():.0f}",
            f"{intervals.std():.1f}",
            f"{drift}",
        ])
    print("\n" + text_table(
        ["jitter sd", "mean interval (ns)", "interval sd (ns)",
         "end-to-end drift (ns)"],
        rows, title="Ablation — HRTimer jitter at 100 us",
    ))


class TestShape:
    def test_zero_jitter_is_exact(self, jitter_data):
        times = jitter_data[0]
        np.testing.assert_array_equal(
            times, PERIOD * np.arange(1, len(times) + 1)
        )

    def test_interval_dispersion_grows_with_jitter(self, jitter_data):
        sds = [np.diff(jitter_data[sd]).std() for sd in (500, 2_000, 5_000)]
        assert sds[0] < sds[1] < sds[2]

    def test_fires_never_early(self, jitter_data):
        for sd, times in jitter_data.items():
            ideal = PERIOD * np.arange(1, len(times) + 1)
            assert (times >= ideal).all()

    def test_absolute_grid_bounds_cumulative_drift(self, jitter_data):
        """5 us per-fire jitter over 200 fires would shift 10 whole
        periods if it accumulated; the grid keeps the final fire within
        a few draws of ideal."""
        times = jitter_data[5_000]
        drift = int(times[-1]) - PERIOD * len(times)
        assert 0 <= drift < 4 * 5_000

    def test_mean_interval_tracks_period(self, jitter_data):
        for times in jitter_data.values():
            assert np.diff(times).mean() == pytest.approx(PERIOD, rel=0.01)
