"""Ablation — shared-LLC contention across cores.

The paper's scheduling motivation quantified: a cache-resident service
co-runs on a two-core shared-LLC cluster next to neighbours of
increasing memory intensity.  The slowdown curve is the reason
counter-guided placement (Fig. 5's classes feeding the §IV-B policy)
matters.
"""

import pytest

from repro.apps.smp import corun_parallel
from repro.experiments.report import text_table
from repro.workloads.synthetic import (
    PointerChaseWorkload,
    StridedMemoryWorkload,
    UniformComputeWorkload,
)


def service():
    return PointerChaseWorkload(6 * 1024 * 1024, 600_000, seed=3,
                                name="service", address_base=0x1000_0000)


def neighbour(intensity):
    """0.0 = pure compute, 1.0 = full-rate streamer."""
    if intensity == 0.0:
        return UniformComputeWorkload(4e7, name="compute")
    accesses = int(300_000 * intensity)
    return StridedMemoryWorkload(
        64 * 1024 * 1024, accesses,
        instructions_per_access=10.0 / intensity,
        name=f"stream-{intensity:g}", address_base=0x8000_0000,
    )


INTENSITIES = (0.0, 0.25, 0.5, 1.0)


@pytest.fixture(scope="module")
def curve():
    results = {}
    for intensity in INTENSITIES:
        outcome = corun_parallel([service(), neighbour(intensity)], seed=1)
        results[intensity] = outcome[0].slowdown
    return results


def test_smp_contention_regenerate(benchmark, curve):
    benchmark.pedantic(
        lambda: corun_parallel([service(), neighbour(1.0)], seed=2),
        rounds=1, iterations=1,
    )
    rows = [[f"{intensity:g}", f"{slowdown:.3f}x"]
            for intensity, slowdown in curve.items()]
    print("\n" + text_table(
        ["neighbour memory intensity", "service slowdown"],
        rows, title="Ablation — shared-LLC contention vs neighbour intensity",
    ))


class TestShape:
    def test_compute_neighbour_free(self, curve):
        assert curve[0.0] == pytest.approx(1.0, abs=0.02)

    def test_slowdown_monotone_in_intensity(self, curve):
        ordered = [curve[intensity] for intensity in INTENSITIES]
        for lighter, heavier in zip(ordered, ordered[1:]):
            assert heavier >= lighter - 0.02

    def test_full_streamer_hurts(self, curve):
        assert curve[1.0] > 1.15

    def test_dynamic_range_justifies_placement(self, curve):
        """The planner's win: worst minus best neighbour is >15% of
        service performance."""
        assert curve[1.0] - curve[0.0] > 0.15
