"""Fig. 6 — Meltdown vs clean program: round-averaged LLC counts.

Paper (100 rounds, 100 µs rate): LLC references and misses
significantly higher under attack; MPKI 7.52 -> 27.53.
"""

import pytest

from repro.experiments import fig6


@pytest.fixture(scope="module")
def result(rounds, jobs):
    return fig6.run(rounds=rounds, seed=0, jobs=jobs)


def test_fig6_regenerate(benchmark, rounds, jobs):
    outcome = benchmark.pedantic(
        lambda: fig6.run(rounds=max(2, rounds // 2), seed=1, jobs=jobs),
        rounds=1, iterations=1,
    )
    print("\n" + fig6.render(outcome))


class TestShape:
    def test_clean_mpki_near_paper(self, result):
        # Paper: 7.52.
        assert result.clean_mpki == pytest.approx(7.52, rel=0.1)

    def test_attack_mpki_near_paper(self, result):
        # Paper: 27.53.
        assert result.attack_mpki == pytest.approx(27.53, rel=0.1)

    def test_llc_misses_factor(self, result):
        assert result.attack_means["LLC_MISSES"] > \
            4 * result.clean_means["LLC_MISSES"]

    def test_llc_references_factor(self, result):
        assert result.attack_means["LLC_REFERENCES"] > \
            3 * result.clean_means["LLC_REFERENCES"]

    def test_attack_adds_execution_time(self, result):
        """Paper: 'The Meltdown attack added more execution time to the
        program and resulted in many more samples being collected.'"""
        assert result.attack_samples_mean > 3 * result.clean_samples_mean
