"""Fig. 8 — box-and-whisker of normalized execution times per tool.

Paper: K-LEB has the smallest spread — the least interference and the
most consistent behaviour.
"""

import pytest

from repro.experiments import fig8


@pytest.fixture(scope="module")
def result(runs, jobs):
    return fig8.run(runs=runs, seed=0, jobs=jobs)


def test_fig8_regenerate(benchmark, runs, jobs):
    outcome = benchmark.pedantic(
        lambda: fig8.run(runs=max(4, runs // 3), seed=1, jobs=jobs),
        rounds=1, iterations=1,
    )
    print("\n" + fig8.render(outcome))


class TestShape:
    def test_kleb_has_tightest_monitored_spread(self, result):
        spreads = {name: stats.spread
                   for name, stats in result.boxes.items()
                   if name != "none"}
        assert min(spreads, key=spreads.get) == "k-leb"

    def test_kleb_spread_well_below_perf_stat(self, result):
        assert result.boxes["k-leb"].spread < \
            0.5 * result.boxes["perf-stat"].spread

    def test_medians_track_overhead_ranking(self, result):
        boxes = result.boxes
        assert boxes["none"].median < boxes["k-leb"].median
        assert boxes["k-leb"].median < boxes["perf-record"].median
        assert boxes["perf-record"].median < boxes["perf-stat"].median

    def test_all_monitored_medians_above_one(self, result):
        for name, stats in result.boxes.items():
            if name != "none":
                assert stats.median > 1.0
