"""Fig. 9 — hardware event count differences across tools.

Paper: K-LEB vs perf stat < 0.0008 % on deterministic events;
perf record < 0.15 % vs K-LEB; everything < 0.3 %.
"""

import pytest

from repro.experiments import fig9


@pytest.fixture(scope="module")
def result():
    return fig9.run(seed=0)


def test_fig9_regenerate(benchmark):
    outcome = benchmark.pedantic(lambda: fig9.run(seed=1),
                                 rounds=1, iterations=1)
    print("\n" + fig9.render(outcome))


class TestShape:
    def test_everything_below_0_3_percent(self, result):
        assert result.worst_percent < 0.3

    def test_perf_stat_below_paper_bound(self, result):
        for value in result.matrix["perf-stat"].values():
            assert value < 0.0008

    def test_perf_record_below_paper_bound(self, result):
        for value in result.matrix["perf-record"].values():
            assert value < 0.15

    def test_instrumented_tools_small_positive_bias(self, result):
        """PAPI/LiMiT count their own in-process bookkeeping — nonzero
        but tiny deviations."""
        for tool in ("papi", "limit"):
            values = list(result.matrix[tool].values())
            assert max(values) > 0.0
            assert max(values) < 0.05

    def test_all_four_tools_compared(self, result):
        assert set(result.matrix) == {"perf-stat", "perf-record",
                                      "papi", "limit"}
