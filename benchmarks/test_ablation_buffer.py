"""Ablation — kernel buffer sizing vs the back-pressure safety stop.

Paper §III: a temporary kernel buffer pools samples between controller
drains; if the controller is starved, collection pauses until space
frees up.  This bench sweeps buffer capacity at a fast rate and shows
the loss curve: small buffers drop samples, adequate ones don't.
"""

import pytest

from repro.experiments.report import text_table
from repro.experiments.runner import run_monitored
from repro.sim.clock import us
from repro.tools.kleb import KLebTool
from repro.workloads.synthetic import UniformComputeWorkload

EVENTS = ("LOADS", "STORES")
CAPACITIES = (8, 32, 128, 1024, 4096)
_WORK = 2e8  # ~75 ms victim; ~750 fire slots at 100 us


def _loss_at(capacity, seed=0):
    result = run_monitored(
        UniformComputeWorkload(_WORK),
        KLebTool(buffer_capacity=capacity),
        events=EVENTS, period_ns=us(100), seed=seed,
    )
    metadata = result.report.metadata
    fires = metadata["timer_fires"]
    dropped = metadata["samples_dropped"]
    return {
        "fires": fires,
        "dropped": dropped,
        "recorded": result.report.sample_count,
        "pauses": metadata["pause_episodes"],
        "loss_percent": 100.0 * dropped / fires if fires else 0.0,
    }


@pytest.fixture(scope="module")
def sweep():
    return {capacity: _loss_at(capacity) for capacity in CAPACITIES}


def test_buffer_sweep_regenerate(benchmark, sweep):
    benchmark.pedantic(lambda: _loss_at(64, seed=1), rounds=1, iterations=1)
    rows = [
        [str(capacity), f"{data['fires']:.0f}", f"{data['recorded']}",
         f"{data['dropped']:.0f}", f"{data['pauses']:.0f}",
         f"{data['loss_percent']:.1f}%"]
        for capacity, data in sweep.items()
    ]
    print("\n" + text_table(
        ["capacity", "fires", "recorded", "dropped", "pauses", "loss"],
        rows, title="Ablation — ring buffer sizing at 100 us",
    ))


class TestShape:
    def test_tiny_buffer_triggers_safety_stop(self, sweep):
        assert sweep[8]["pauses"] >= 1
        assert sweep[8]["dropped"] > 0

    def test_large_buffer_lossless(self, sweep):
        assert sweep[4096]["dropped"] == 0
        assert sweep[4096]["pauses"] == 0

    def test_loss_monotone_in_capacity(self, sweep):
        losses = [sweep[capacity]["loss_percent"]
                  for capacity in CAPACITIES]
        for smaller, larger in zip(losses, losses[1:]):
            assert smaller >= larger

    def test_collection_resumes_after_pause(self, sweep):
        """Even the starved configuration keeps recording samples after
        drains — the safety stop is temporary, not terminal."""
        data = sweep[8]
        assert data["recorded"] > 8  # more than one buffer's worth
