"""Fig. 4 — LINPACK phase behaviour captured by K-LEB samples.

Paper reading: quiet kernel-level init, LOAD/STORE-heavy setup (through
roughly the first 200 samples), then repeating
load -> compute -> store solve cycles.
"""

import numpy as np
import pytest

from repro.analysis.phases import count_cycles
from repro.experiments import fig4


@pytest.fixture(scope="module")
def result(trials, jobs):
    return fig4.run(trials=trials, seed=0, jobs=jobs)


def test_fig4_regenerate(benchmark, trials, jobs):
    outcome = benchmark.pedantic(
        lambda: fig4.run(trials=max(2, trials // 2), seed=1, jobs=jobs),
        rounds=1, iterations=1,
    )
    print("\n" + fig4.render(outcome))


class TestShape:
    def test_init_is_quiet(self, result):
        """Kernel-level init: near-zero user counts in the first samples."""
        loads = result.series.event("LOADS")
        assert loads[:10].max() < 0.02 * loads.max()

    def test_setup_surge_in_loads_and_stores(self, result):
        labels = result.phase_labels
        assert labels[0] == "idle"
        assert labels[1] in ("LOADS", "STORES")

    def test_setup_has_few_multiplies(self, result):
        """Paper: 'only a small number of ARITH MUL during the same
        period'."""
        setup = result.segments[1]
        muls = result.series.event("ARITH_MUL")
        loads = result.series.event("LOADS")
        sl = slice(setup.start_index, setup.end_index)
        assert muls[sl].mean() < 0.1 * loads[sl].mean()

    def test_solve_cycles_repeat(self, result):
        cycles = count_cycles(result.segments,
                              ["LOADS", "ARITH_MUL", "STORES"])
        assert cycles >= 8  # the model emits 12 solve cycles

    def test_compute_dominates_solve_time(self, result):
        # Within the solve region (after init + setup), the compute
        # phases hold the most samples — the 60 % compute share of each
        # load/compute/store cycle.
        solve = result.segments[2:]
        compute_samples = sum(segment.length for segment in solve
                              if segment.label == "ARITH_MUL")
        store_samples = sum(segment.length for segment in solve
                            if segment.label == "STORES")
        load_samples = sum(segment.length for segment in solve
                           if segment.label == "LOADS")
        assert compute_samples > store_samples
        assert compute_samples > load_samples
