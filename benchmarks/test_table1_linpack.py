"""Table I — LINPACK GFLOPS across profiling tools.

Paper: no-profiling 37.24 GFLOPS; losses K-LEB 0.64 %,
perf stat 7.08 %, perf record 0.96 %.
"""

import pytest

from repro.experiments import table1


@pytest.fixture(scope="module")
def result(trials, jobs):
    return table1.run(trials=trials, seed=0, jobs=jobs)


def test_table1_regenerate(benchmark, trials, jobs):
    outcome = benchmark.pedantic(
        lambda: table1.run(trials=trials, seed=1, jobs=jobs),
        rounds=1, iterations=1,
    )
    print("\n" + table1.render(outcome))


class TestShape:
    def test_baseline_gflops(self, result):
        # Paper: 37.24.
        assert result.gflops["none"] == pytest.approx(37.24, rel=0.02)

    def test_kleb_loss_sub_percent(self, result):
        # Paper: 0.64 %.
        assert result.loss_percent["k-leb"] == pytest.approx(0.64, abs=0.35)

    def test_perf_stat_loss_dominates(self, result):
        # Paper: 7.08 % — the big loser.
        assert result.loss_percent["perf-stat"] == pytest.approx(7.08, rel=0.25)

    def test_perf_record_between(self, result):
        # Paper: 0.96 %.
        losses = result.loss_percent
        assert losses["k-leb"] < losses["perf-record"] < losses["perf-stat"]
