"""Ablation — DBI vs counter-based monitoring.

The paper's opening argument (§I): dynamic binary instrumentation can
profile binaries without source, but its overhead "makes online
analysis with software-based profiling for fine-grained events
sub-optimal", while "performance counters collect data via dedicated
circuitry ... with nearly negligible overhead".  This bench puts the
two on the same victim.
"""

import pytest

from repro.experiments.report import text_table
from repro.experiments.runner import run_monitored
from repro.sim.clock import ms
from repro.tools.registry import create_tool
from repro.workloads.matmul import TripleLoopMatmul

EVENTS = ("LOADS", "STORES", "BRANCHES")
_N = 512


@pytest.fixture(scope="module")
def comparison():
    program = TripleLoopMatmul(_N)
    baseline = run_monitored(program, create_tool("none"), seed=0)
    outcomes = {"none": (baseline.wall_ns, None)}
    for name in ("k-leb", "dbi"):
        result = run_monitored(program, create_tool(name), events=EVENTS,
                               period_ns=ms(10), seed=0)
        outcomes[name] = (result.wall_ns, result.report)
    return outcomes


def test_dbi_contrast_regenerate(benchmark, comparison):
    benchmark.pedantic(
        lambda: run_monitored(TripleLoopMatmul(_N), create_tool("dbi"),
                              events=EVENTS, period_ns=ms(10), seed=1),
        rounds=1, iterations=1,
    )
    base_wall, _ = comparison["none"]
    rows = []
    for name, (wall, report) in comparison.items():
        overhead = 100.0 * (wall - base_wall) / base_wall
        rows.append([
            name, f"{wall / 1e9:.4f}",
            f"{overhead:.2f}%" if name != "none" else "-",
            "exact (shadow counters)" if name == "dbi"
            else "exact (PMU)" if name == "k-leb" else "-",
        ])
    print("\n" + text_table(
        ["tool", "runtime (s)", "overhead", "counts"],
        rows, title="Ablation — DBI vs counter-based monitoring",
    ))


class TestShape:
    def test_dbi_overhead_is_orders_of_magnitude_worse(self, comparison):
        base_wall, _ = comparison["none"]
        kleb_overhead = comparison["k-leb"][0] - base_wall
        dbi_overhead = comparison["dbi"][0] - base_wall
        assert dbi_overhead > 200 * kleb_overhead

    def test_both_report_accurate_counts(self, comparison):
        program = TripleLoopMatmul(_N)
        for name in ("k-leb", "dbi"):
            report = comparison[name][1]
            assert report.totals["INST_RETIRED"] == pytest.approx(
                program.instructions, rel=1e-6
            )

    def test_dbi_slowdown_near_expansion_factor(self, comparison):
        from repro.tools.dbi import DBI_EXPANSION_FACTOR

        base_wall, _ = comparison["none"]
        slowdown = comparison["dbi"][0] / base_wall
        assert slowdown == pytest.approx(DBI_EXPANSION_FACTOR, rel=0.3)
