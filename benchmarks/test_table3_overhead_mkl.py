"""Table III — tool overhead on the <100 ms MKL dgemm.

Paper (100 runs @ 10 ms): K-LEB 1.13 %, perf stat 7.64 %,
perf record 2.00 %, PAPI 21.40 %, LiMiT n/a (unsupported OS).
"""

import pytest

from repro.experiments import table3


@pytest.fixture(scope="module")
def result(runs, jobs):
    return table3.run(runs=runs, seed=0, jobs=jobs)


def test_table3_regenerate(benchmark, runs, jobs):
    outcome = benchmark.pedantic(
        lambda: table3.run(runs=max(3, runs // 3), seed=1, jobs=jobs),
        rounds=1, iterations=1,
    )
    print("\n" + table3.render(outcome))


class TestShape:
    def _overhead(self, result, tool):
        return result.stats[tool].overhead_mean_percent

    def test_kleb_magnitude(self, result):
        assert self._overhead(result, "k-leb") == pytest.approx(1.13, abs=0.4)

    def test_kleb_rises_vs_table2(self, result):
        """The paper's observation: K-LEB's overhead grows from 0.68 %
        to 1.13 % on the short program (fixed costs amortize worse)."""
        assert self._overhead(result, "k-leb") > 0.68

    def test_papi_explodes(self, result):
        # Paper: 21.40 % — the crossover that makes Table III.
        assert self._overhead(result, "papi") == pytest.approx(21.4, rel=0.2)

    def test_perf_stat_magnitude(self, result):
        assert self._overhead(result, "perf-stat") == pytest.approx(7.64, rel=0.35)

    def test_perf_record_magnitude(self, result):
        assert self._overhead(result, "perf-record") == pytest.approx(2.0, rel=0.35)

    def test_limit_is_na(self, result):
        assert not result.runs_data["limit"].supported

    def test_kleb_wins(self, result):
        kleb = self._overhead(result, "k-leb")
        for name in ("perf-stat", "perf-record", "papi"):
            assert kleb < self._overhead(result, name)
