#!/usr/bin/env python
"""CI smoke test for the live telemetry plane (``--live``).

Protocol:

1. run a reference trial population with live telemetry OFF and keep
   its stdout;
2. run the identical population with ``--live 0`` (ephemeral port),
   scrape ``/metrics``, ``/healthz``, and ``/runs`` *while the run is
   in flight*, and assert the scrape carries every pre-registered
   metric family plus the bus's ``live_*`` and the watchdog's
   ``health_*`` families;
3. assert the live run's report output is byte-identical to the
   reference — the acceptance contract that arming the plane never
   perturbs results.

Exit 0 on success; any assertion or subprocess failure is fatal.
Pure stdlib; run from the repo root::

    PYTHONPATH=src python scripts/live_smoke.py
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

RUN_ARGS = ["run", "table1", "--runs", "4", "--jobs", "2", "--seed", "0"]

# Families /metrics must expose from the very first scrape (the live
# state is seeded with the recorder's pre-registered zero registry)
# plus the live-plane families themselves.
REQUIRED_FAMILIES = (
    "hrtimer_fires_total",
    "ringbuffer_pushes_total",
    "kleb_drain_cycles_total",
    "trials_total",
    "trial_sim_wall_ns",
    "live_snapshots_total",
    "live_trials_running",
    "health_check_state",
    "health_watchdog_trips_total",
)

_URL_LINE = re.compile(r"live telemetry at (http://\S+)")


def _cli(*extra: str) -> list:
    return [sys.executable, "-m", "repro.cli"] + RUN_ARGS + list(extra)


def _strip_live_lines(text: str) -> str:
    return "".join(line for line in text.splitlines(keepends=True)
                   if not line.startswith("live telemetry at")
                   and not line.startswith("flight ring written"))


def _scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.read().decode("utf-8")


def main() -> int:
    print("reference run (live off)...")
    reference = subprocess.run(_cli(), capture_output=True, text=True,
                               check=True)

    print("live run (--live 0)...")
    live = subprocess.Popen(_cli("--live", "0"), stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True, bufsize=1)
    assert live.stdout is not None
    first = live.stdout.readline()
    match = _URL_LINE.search(first)
    if not match:
        live.kill()
        print(f"FAIL: expected the live-telemetry URL line first, "
              f"got: {first!r}", file=sys.stderr)
        return 1
    base = match.group(1)
    print(f"  endpoint: {base}")

    # Scrape mid-run: the run is still producing output, so the
    # process is alive while we hit the endpoints.
    metrics_seen = ""
    healthz_seen = None
    runs_seen = None
    for _ in range(100):
        if live.poll() is not None:
            break
        try:
            metrics_seen = _scrape(base + "/metrics")
            healthz_seen = json.loads(_scrape(base + "/healthz"))
            runs_seen = json.loads(_scrape(base + "/runs"))
        except (urllib.error.URLError, OSError):
            pass  # listener may be a beat behind; retry
        if metrics_seen and healthz_seen is not None:
            break
        time.sleep(0.05)

    output, _ = live.communicate(timeout=600)
    if live.returncode != 0:
        print(f"FAIL: live run exited {live.returncode}:\n{output}",
              file=sys.stderr)
        return 1
    if not metrics_seen or healthz_seen is None or runs_seen is None:
        print("FAIL: could not scrape the live endpoint mid-run",
              file=sys.stderr)
        return 1

    missing = [family for family in REQUIRED_FAMILIES
               if f"# TYPE {family} " not in metrics_seen]
    if missing:
        print(f"FAIL: /metrics is missing families: {missing}",
              file=sys.stderr)
        return 1
    if healthz_seen.get("status") not in ("ok", "degraded"):
        print(f"FAIL: bad /healthz body: {healthz_seen}", file=sys.stderr)
        return 1
    if sorted(healthz_seen.get("checks", {})) != sorted(
            ("stalled-trial", "drop-storm", "budget-breach",
             "quarantine-spike")):
        print(f"FAIL: /healthz checks wrong: {healthz_seen}",
              file=sys.stderr)
        return 1
    if "run" not in runs_seen or "trials" not in runs_seen:
        print(f"FAIL: bad /runs body: {runs_seen}", file=sys.stderr)
        return 1

    live_clean = _strip_live_lines(output)
    if live_clean != reference.stdout:
        print("FAIL: live run report differs from the reference run",
              file=sys.stderr)
        for ref_line, live_line in zip(reference.stdout.splitlines(),
                                       live_clean.splitlines()):
            if ref_line != live_line:
                print(f"  - {ref_line}\n  + {live_line}", file=sys.stderr)
                break
        return 1

    print(f"live smoke passed: {len(metrics_seen.splitlines())} metric "
          f"lines scraped, healthz={healthz_seen['status']}, "
          f"{len(runs_seen['trials'])} trial rows, report byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
