#!/usr/bin/env python
"""Line-coverage measurement and regression gate, stdlib only.

Two subcommands::

    # Run the test suite under a line collector and write a coverage
    # document (sys.monitoring on Python >= 3.12, sys.settrace below):
    PYTHONPATH=src python scripts/coverage_gate.py collect \
        --output coverage_current.json -- -q

    # Compare a fresh document against the committed baseline; exit
    # non-zero on a total drop beyond --max-drop or a package floor
    # violation:
    python scripts/coverage_gate.py check coverage_current.json \
        --baseline tests/data/coverage_baseline.json \
        --max-drop 1.0 --min src/repro/obs=90

``check`` also accepts the JSON written by ``pytest-cov``
(``--cov-report=json``) so hosts with the real coverage.py installed
can feed its output straight in; the committed baseline is produced by
``collect`` so CI and local runs compare like against like.

Executable lines are the union of every code object's ``co_lines``
for the compiled module, minus blocks whose first line carries a
``pragma: no cover`` marker — the same contract coverage.py enforces,
approximated without the dependency (the container this repo grows in
cannot install packages; see ROADMAP).
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
import threading
from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SOURCE = REPO_ROOT / "src" / "repro"
PRAGMA = re.compile(r"#\s*pragma:\s*no\s*cover")


# ----------------------------------------------------------------------
# Executable-line analysis
# ----------------------------------------------------------------------
def _code_lines(code) -> Set[int]:
    lines: Set[int] = set()
    for _, _, line in code.co_lines():
        # line 0 is the module-level RESUME instruction, not source.
        if line:
            lines.add(line)
    for const in code.co_consts:
        if hasattr(const, "co_lines"):
            lines |= _code_lines(const)
    return lines


def _excluded_lines(source: str, tree: ast.Module) -> Set[int]:
    """Lines inside blocks whose header carries ``pragma: no cover``."""
    source_lines = source.splitlines()
    excluded: Set[int] = set()
    for node in ast.walk(tree):
        lineno = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if lineno is None or end is None:
            continue
        header = source_lines[lineno - 1]
        if PRAGMA.search(header):
            excluded.update(range(lineno, end + 1))
    return excluded


def executable_lines(path: Path) -> Set[int]:
    """Line numbers that carry code in ``path`` (pragma blocks out)."""
    source = path.read_text()
    code = compile(source, str(path), "exec")
    lines = _code_lines(code)
    excluded = _excluded_lines(source, ast.parse(source))
    return lines - excluded


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------
class LineCollector:
    """Record executed lines for files under ``root``.

    Uses the low-overhead :mod:`sys.monitoring` API where available
    (PEP 669, Python 3.12) and falls back to :func:`sys.settrace`.
    """

    def __init__(self, root: Path) -> None:
        self.root = str(root.resolve())
        self.executed: Dict[str, Set[int]] = defaultdict(set)
        self._monitoring = hasattr(sys, "monitoring")
        self._tool_id: Optional[int] = None

    # -- sys.monitoring (3.12+) ----------------------------------------
    def _start_monitoring(self) -> None:
        mon = sys.monitoring
        self._tool_id = mon.COVERAGE_ID
        mon.use_tool_id(self._tool_id, "coverage_gate")
        executed = self.executed
        root = self.root

        def on_line(code, line_number):
            filename = code.co_filename
            if filename.startswith(root):
                executed[filename].add(line_number)
            else:
                return mon.DISABLE
            return None

        mon.register_callback(self._tool_id, mon.events.LINE, on_line)
        mon.set_events(self._tool_id, mon.events.LINE)

    def _stop_monitoring(self) -> None:
        mon = sys.monitoring
        mon.set_events(self._tool_id, 0)
        mon.register_callback(self._tool_id, mon.events.LINE, None)
        mon.free_tool_id(self._tool_id)

    # -- settrace fallback ---------------------------------------------
    def _trace(self, frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(self.root):
            return None
        executed = self.executed[filename]

        def local(frame, event, arg):
            if event == "line":
                executed.add(frame.f_lineno)
            return local

        executed.add(frame.f_lineno)
        return local

    def start(self) -> None:
        if self._monitoring:
            self._start_monitoring()
        else:
            threading.settrace(self._trace)
            sys.settrace(self._trace)

    def stop(self) -> None:
        if self._monitoring:
            self._stop_monitoring()
        else:
            sys.settrace(None)
            threading.settrace(None)  # type: ignore[arg-type]


def measure(source_root: Path, pytest_args: List[str]) -> Dict:
    """Run pytest under the collector; return the coverage document."""
    import pytest

    collector = LineCollector(source_root)
    collector.start()
    try:
        status = pytest.main(pytest_args)
    finally:
        collector.stop()
    if status != 0:
        raise SystemExit(f"pytest failed (exit {status}); "
                         "coverage not recorded")
    return build_document(source_root, collector.executed)


def build_document(source_root: Path,
                   executed: Dict[str, Set[int]]) -> Dict:
    files: Dict[str, Dict] = {}
    total_executable = 0
    total_executed = 0
    for path in sorted(source_root.rglob("*.py")):
        lines = executable_lines(path)
        if not lines:
            continue
        hit = executed.get(str(path.resolve()), set()) & lines
        relative = str(path.relative_to(REPO_ROOT))
        files[relative] = {
            "executable": len(lines),
            "executed": len(hit),
            "percent": round(100.0 * len(hit) / len(lines), 2),
        }
        total_executable += len(lines)
        total_executed += len(hit)
    percent = (100.0 * total_executed / total_executable
               if total_executable else 0.0)
    return {
        "schema": 1,
        "tool": ("sys.monitoring" if hasattr(sys, "monitoring")
                 else "sys.settrace"),
        "python": ".".join(str(part) for part in sys.version_info[:3]),
        "totals": {
            "executable": total_executable,
            "executed": total_executed,
            "percent": round(percent, 2),
        },
        "files": files,
    }


# ----------------------------------------------------------------------
# Checking
# ----------------------------------------------------------------------
def normalize(document: Dict) -> Dict:
    """Accept both this script's schema and coverage.py JSON."""
    if "meta" in document and "files" in document:  # coverage.py json
        files = {}
        total_statements = 0
        total_covered = 0
        for path, data in document["files"].items():
            summary = data["summary"]
            files[path] = {
                "executable": summary["num_statements"],
                "executed": summary["covered_lines"],
                "percent": round(summary["percent_covered"], 2),
            }
            total_statements += summary["num_statements"]
            total_covered += summary["covered_lines"]
        return {
            "totals": {
                "executable": total_statements,
                "executed": total_covered,
                "percent": round(
                    document["totals"]["percent_covered"], 2),
            },
            "files": files,
        }
    return document


def package_percent(document: Dict, prefix: str) -> Optional[float]:
    executable = 0
    executed = 0
    for path, data in document["files"].items():
        if path.startswith(prefix):
            executable += data["executable"]
            executed += data["executed"]
    if executable == 0:
        return None
    return 100.0 * executed / executable


def check(current: Dict, baseline: Dict, max_drop: float,
          floors: Iterable[Tuple[str, float]]) -> int:
    current = normalize(current)
    baseline = normalize(baseline)
    failures: List[str] = []

    now = current["totals"]["percent"]
    then = baseline["totals"]["percent"]
    drop = then - now
    status = "FAIL" if drop > max_drop else "ok"
    print(f"total line coverage: {then:.2f}% -> {now:.2f}% "
          f"({-drop:+.2f} points, allowed drop {max_drop:.2f}) {status}")
    if drop > max_drop:
        failures.append(
            f"total coverage dropped {drop:.2f} points (> {max_drop})")

    for prefix, floor in floors:
        percent = package_percent(current, prefix)
        if percent is None:
            failures.append(f"no files under {prefix!r} in coverage data")
            print(f"  {prefix}: no files measured FAIL")
            continue
        status = "FAIL" if percent < floor else "ok"
        print(f"  {prefix}: {percent:.2f}% (floor {floor:.0f}%) {status}")
        if percent < floor:
            failures.append(
                f"{prefix} at {percent:.2f}% is below the {floor:.0f}% "
                "floor")

    # Largest per-file regressions, for the log.
    drops = []
    for path, data in current["files"].items():
        base = baseline["files"].get(path)
        if base and data["percent"] < base["percent"] - 0.005:
            drops.append((base["percent"] - data["percent"], path,
                          base["percent"], data["percent"]))
    for delta, path, before, after in sorted(drops, reverse=True)[:10]:
        print(f"    {path}: {before:.2f}% -> {after:.2f}%")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("coverage gate passed")
    return 0


def parse_floor(text: str) -> Tuple[str, float]:
    prefix, _, value = text.partition("=")
    if not value:
        raise argparse.ArgumentTypeError(
            f"expected PREFIX=PERCENT, got {text!r}")
    return prefix, float(value)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="coverage_gate",
                                     description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    collect = commands.add_parser(
        "collect", help="run pytest under the line collector")
    collect.add_argument("--source", type=Path, default=DEFAULT_SOURCE,
                         help="source tree to measure")
    collect.add_argument("--output", type=Path,
                         default=Path("coverage_current.json"))
    collect.add_argument("pytest_args", nargs="*",
                         help="arguments after -- go to pytest")

    checker = commands.add_parser(
        "check", help="gate a fresh document against the baseline")
    checker.add_argument("current", type=Path)
    checker.add_argument("--baseline", type=Path, required=True)
    checker.add_argument("--max-drop", type=float, default=1.0,
                         help="allowed total percent drop (default 1.0)")
    checker.add_argument("--min", type=parse_floor, action="append",
                         default=[], metavar="PREFIX=PERCENT",
                         help="package floor, e.g. src/repro/obs=90")

    args = parser.parse_args(argv)
    if args.command == "collect":
        document = measure(args.source, args.pytest_args or ["-q"])
        args.output.write_text(json.dumps(document, indent=2,
                                          sort_keys=True) + "\n")
        totals = document["totals"]
        print(f"\n{totals['percent']:.2f}% "
              f"({totals['executed']}/{totals['executable']} lines) "
              f"-> {args.output}")
        return 0
    return check(json.loads(args.current.read_text()),
                 json.loads(args.baseline.read_text()),
                 args.max_drop, args.min)


if __name__ == "__main__":
    sys.exit(main())
