#!/usr/bin/env python
"""Lint the hardware event catalogue.

Run in CI (and locally) as::

    PYTHONPATH=src python scripts/check_catalogue.py

Re-checks, independently of the library's own build-time validation,
the invariants every catalogue row must satisfy: unique names and
packed select/umask codes, a nonzero counter mask that fits the
programmable counters, a known kind string, and in-range fixed-counter
pins.  A lint failure prints every violation (not just the first) and
exits nonzero.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Tuple

from repro.hw.event_table import ANY, ARCH, RAW_EVENT_TABLE, UARCH
from repro.hw.pmu import NUM_FIXED, NUM_PROGRAMMABLE

_VALID_KINDS = (ARCH, UARCH)
_FULL_MASK = (1 << NUM_PROGRAMMABLE) - 1


def lint(rows=RAW_EVENT_TABLE) -> List[str]:
    """Return every catalogue violation as a human-readable line."""
    problems: List[str] = []
    if ANY != _FULL_MASK:
        problems.append(
            f"ANY mask {ANY:#06b} does not cover the "
            f"{NUM_PROGRAMMABLE} programmable counters"
        )
    seen_names: Dict[str, int] = {}
    seen_codes: Dict[int, str] = {}
    for position, row in enumerate(rows):
        if len(row) != 7:
            problems.append(f"row {position}: expected 7 fields, got "
                            f"{len(row)}")
            continue
        name, select, umask, kind, mask, fixed, description = row
        where = f"row {position} ({name})"
        if not name or name != name.upper():
            problems.append(f"{where}: name must be non-empty upper-case")
        if name in seen_names:
            problems.append(
                f"{where}: duplicate name (first at row {seen_names[name]})"
            )
        seen_names.setdefault(name, position)
        if not 0 <= select <= 0xFF or not 0 <= umask <= 0xFF:
            problems.append(f"{where}: select/umask must fit one byte, "
                            f"got select={select:#x} umask={umask:#x}")
        code = (umask << 8) | select
        if code in seen_codes:
            problems.append(
                f"{where}: packed code {code:#06x} already used by "
                f"{seen_codes[code]!r}"
            )
        seen_codes.setdefault(code, name)
        if kind not in _VALID_KINDS:
            problems.append(f"{where}: unknown kind {kind!r} "
                            f"(expected one of {_VALID_KINDS})")
        if not 0 < mask <= _FULL_MASK:
            problems.append(
                f"{where}: counter mask {mask:#06b} must be nonzero and "
                f"within {_FULL_MASK:#06b}"
            )
        if fixed is not None and not 0 <= fixed < NUM_FIXED:
            problems.append(f"{where}: fixed counter {fixed} out of range "
                            f"0..{NUM_FIXED - 1}")
        if not description:
            problems.append(f"{where}: missing description")
    return problems


def main() -> int:
    problems = lint()
    if problems:
        for line in problems:
            print(f"catalogue lint: {line}", file=sys.stderr)
        return 1
    print(f"catalogue lint: {len(RAW_EVENT_TABLE)} events OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
