"""Compatibility shim for environments without the ``wheel`` package.

``pip install -e .`` uses PEP 660 editable wheels when possible; on
minimal/offline environments fall back to::

    pip install -e . --no-build-isolation --no-use-pep517

All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
