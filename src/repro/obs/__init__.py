"""Observability: structured tracing, metrics, and profiling hooks.

Three cooperating pieces:

* :mod:`repro.obs.trace` — span/instant tracer on the simulated clock,
  exporting Chrome trace-event JSON (Perfetto-loadable) and JSONL;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with
  Prometheus-text and JSON exporters, merged deterministically across
  ``jobs=N`` workers;
* :mod:`repro.obs.hooks` — the hook-point protocol the instrumented
  hot paths call, with a null recorder installed by default so the
  whole subsystem is a strict no-op until the CLI (or a test) installs
  a live :class:`~repro.obs.hooks.Recorder`.

See ``docs/observability.md`` for the span taxonomy and metric
catalogue, and ``python -m repro.obs.report`` for a terminal summary
of a recorded trace/metrics pair.
"""

from repro.obs.hooks import (
    NULL,
    NullRecorder,
    Recorder,
    active,
    install,
    merge_chunk,
    recorder,
    reset,
    trial_capture,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_NS,
    SIZE_BUCKETS,
    MetricsRegistry,
    ObsError,
    parse_prometheus_text,
)
from repro.obs.trace import TRACKS, SpanHandle, Tracer

__all__ = [
    "NULL",
    "NullRecorder",
    "Recorder",
    "active",
    "install",
    "merge_chunk",
    "recorder",
    "reset",
    "trial_capture",
    "LATENCY_BUCKETS_NS",
    "SIZE_BUCKETS",
    "MetricsRegistry",
    "ObsError",
    "parse_prometheus_text",
    "TRACKS",
    "SpanHandle",
    "Tracer",
]
