"""Observability: structured tracing, metrics, and profiling hooks.

Three cooperating pieces:

* :mod:`repro.obs.trace` — span/instant tracer on the simulated clock,
  exporting Chrome trace-event JSON (Perfetto-loadable) and JSONL;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with
  Prometheus-text and JSON exporters, merged deterministically across
  ``jobs=N`` workers;
* :mod:`repro.obs.hooks` — the hook-point protocol the instrumented
  hot paths call, with a null recorder installed by default so the
  whole subsystem is a strict no-op until the CLI (or a test) installs
  a live :class:`~repro.obs.hooks.Recorder`;
* :mod:`repro.obs.live` — the streaming half: snapshot bus, Prometheus
  HTTP endpoint, run-health watchdog, and flight recorder, armed with
  the CLI's ``--live [PORT]`` / ``--flight PATH`` flags.

See ``docs/observability.md`` for the span taxonomy and metric
catalogue, ``python -m repro.obs.report`` for a terminal summary of a
recorded trace/metrics pair, and ``python -m repro.obs.top`` for the
live per-trial view of a ``--live`` run.
"""

from repro.obs.hooks import (
    NULL,
    NullRecorder,
    Recorder,
    active,
    install,
    merge_chunk,
    recorder,
    reset,
    trial_capture,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_NS,
    SIZE_BUCKETS,
    MetricsRegistry,
    ObsError,
    parse_prometheus_text,
)
from repro.obs.trace import TRACKS, SpanHandle, Tracer

__all__ = [
    "NULL",
    "NullRecorder",
    "Recorder",
    "active",
    "install",
    "merge_chunk",
    "recorder",
    "reset",
    "trial_capture",
    "LATENCY_BUCKETS_NS",
    "SIZE_BUCKETS",
    "MetricsRegistry",
    "ObsError",
    "parse_prometheus_text",
    "TRACKS",
    "SpanHandle",
    "Tracer",
]
