"""Terminal summary of a recorded trace/metrics pair.

Usage::

    python -m repro.obs.report --trace t.json [--metrics m.prom]
    python -m repro.obs.report --trace t.json --json   # machine-readable

Renders the artifacts the CLI's ``--trace``/``--metrics`` flags
produce into three terminal tables for CI artifact review:

* **top spans** — span names ranked by total simulated time;
* **drain-cycle histogram** — the controller's batch-size and
  cycle-latency distributions (from the metrics file);
* **fault timeline** — every ``fault:*`` instant in trial/time order.

``--json`` emits the same content as one JSON document instead, for
scripted artifact checks.  A malformed or unreadable artifact exits 2
with a one-line diagnostic on stderr (0 = rendered, 2 = bad input), so
CI can distinguish "artifact broken" from "report crashed".
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.report import text_table
from repro.io import ReportIOError, load_metrics, load_trace_events

_TOP_SPANS = 15
_TIMELINE_MAX = 40


def _format_ns(value_us: float) -> str:
    """Render a microsecond quantity with an adaptive unit."""
    ns = value_us * 1000.0
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3f} {unit}"
    return f"{ns:.0f} ns"


def _span_totals(events: Sequence[Dict[str, object]]
                 ) -> List[Tuple[str, float, int]]:
    """``(name, total_us, count)`` per span name, busiest first."""
    totals: Dict[str, List[float]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        name = str(event.get("name", "?"))
        entry = totals.setdefault(name, [0.0, 0])
        entry[0] += float(event.get("dur", 0.0))
        entry[1] += 1
    return [(name, total, int(count)) for name, (total, count)
            in sorted(totals.items(), key=lambda item: -item[1][0])]


def _fault_entries(events: Sequence[Dict[str, object]]
                   ) -> List[Dict[str, object]]:
    """Every ``fault:*`` instant as a plain dict, in trial/time order."""
    faults = [
        event for event in events
        if event.get("ph") == "i"
        and str(event.get("name", "")).startswith("fault:")
    ]
    faults.sort(key=lambda event: (event.get("pid", 0),
                                   float(event.get("ts", 0.0))))
    return [
        {
            "trial": int(event.get("pid", 0)),
            "sim_ns": int(float(event.get("ts", 0.0)) * 1000),
            "kind": str(event.get("name", ""))[len("fault:"):],
            "site": str((event.get("args") or {}).get("site", "?")),
        }
        for event in faults
    ]


def summarize_spans(events: Sequence[Dict[str, object]]) -> str:
    """Span names ranked by total simulated time (``X`` events)."""
    ranked = _span_totals(events)
    if not ranked:
        return "no spans recorded"
    rows = [
        [name, str(count), _format_ns(total),
         _format_ns(total / count)]
        for name, total, count in ranked[:_TOP_SPANS]
    ]
    return text_table(["span", "count", "total sim time", "mean"],
                      rows, title="Top spans by simulated time")


def _histogram_rows(samples: Dict[str, float], unit: str) -> List[List[str]]:
    """Cumulative ``_bucket`` samples → per-bucket rows with a bar."""
    buckets = []
    for key, value in samples.items():
        if not key.startswith('_bucket{le="'):
            continue
        bound = key[len('_bucket{le="'):-2]
        order = float("inf") if bound == "+Inf" else float(bound)
        buckets.append((order, bound, value))
    buckets.sort(key=lambda item: item[0])
    rows = []
    previous = 0.0
    top = max((value - 0 for _, _, value in buckets), default=0.0)
    for _, bound, cumulative in buckets:
        count = cumulative - previous
        previous = cumulative
        bar = "#" * int(round(24 * count / top)) if top else ""
        label = f"<= {bound}" if bound != "+Inf" else "> max"
        rows.append([f"{label} {unit}".rstrip(), str(int(count)), bar])
    return rows


def summarize_drain(metrics: Dict[str, Dict[str, object]]) -> str:
    """Drain-cycle distributions from the controller's histograms."""
    sections = []
    for name, unit, title in (
        ("kleb_drain_batch_size", "samples", "Drain batch size"),
        ("kleb_drain_cycle_ns", "ns", "Drain cycle latency"),
    ):
        family = metrics.get(name)
        if family is None:
            continue
        rows = _histogram_rows(family["samples"], unit)
        if rows:
            sections.append(text_table(["bucket", "count", ""],
                                       rows, title=title))
    if not sections:
        return "no drain-cycle metrics recorded"
    return "\n\n".join(sections)


def summarize_faults(events: Sequence[Dict[str, object]]) -> str:
    """Every ``fault:*`` instant, in (trial, simulated time) order."""
    faults = _fault_entries(events)
    if not faults:
        return "no faults recorded"
    rows = [
        [str(entry["trial"]), f"{entry['sim_ns']:,}",
         str(entry["kind"]), str(entry["site"])]
        for entry in faults[:_TIMELINE_MAX]
    ]
    table = text_table(["trial", "sim ns", "kind", "site"], rows,
                       title=f"Fault timeline ({len(faults)} faults)")
    if len(faults) > _TIMELINE_MAX:
        table += f"\n... and {len(faults) - _TIMELINE_MAX} more"
    return table


def render(trace_path: Optional[str], metrics_path: Optional[str]) -> str:
    """The full report for a trace and/or metrics file."""
    sections: List[str] = []
    events: List[Dict[str, object]] = []
    if trace_path:
        events = load_trace_events(trace_path)
        sections.append(summarize_spans(events))
    if metrics_path:
        sections.append(summarize_drain(load_metrics(metrics_path)))
    if trace_path:
        sections.append(summarize_faults(events))
    return "\n\n".join(sections)


def render_json(trace_path: Optional[str],
                metrics_path: Optional[str]) -> Dict[str, object]:
    """The same content as :func:`render`, as one JSON document."""
    document: Dict[str, object] = {"format": "repro-obs-report-v1"}
    if trace_path:
        events = load_trace_events(trace_path)
        document["spans"] = [
            {"name": name, "count": count, "total_us": total,
             "mean_us": total / count}
            for name, total, count in _span_totals(events)
        ]
        document["faults"] = _fault_entries(events)
    if metrics_path:
        families = load_metrics(metrics_path)
        document["metric_families"] = {
            name: {"kind": family["kind"],
                   "samples": dict(family["samples"])}
            for name, family in sorted(families.items())
        }
    return document


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="summarize a recorded trace/metrics pair",
    )
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="Chrome-trace or JSONL file from --trace "
                             "(.gz accepted)")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="Prometheus text or JSON file from --metrics "
                             "(.gz accepted)")
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable JSON document "
                             "instead of the terminal tables")
    args = parser.parse_args(argv)
    if not args.trace and not args.metrics:
        parser.error("need --trace and/or --metrics")
    try:
        if args.json:
            output = json.dumps(render_json(args.trace, args.metrics),
                                indent=2, sort_keys=True)
        else:
            output = render(args.trace, args.metrics)
    except ReportIOError as error:
        # One line, exit 2: lets CI tell "artifact broken" apart from
        # both success (0) and a genuine crash (traceback, 1).
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
