"""Terminal view of a live run: ``python -m repro.obs.top``.

Polls a live telemetry endpoint's ``/runs`` (started by the CLI's
``--live`` flag) and renders per-trial progress as a refreshing
terminal table — trial status, simulated time, samples, drops,
degradation-ladder level, fault count — plus the run header and the
watchdog verdict from ``/healthz``.

Usage::

    python -m repro.obs.top                        # default port
    python -m repro.obs.top --url http://127.0.0.1:9137 --interval 0.5
    python -m repro.obs.top --once                 # one frame, no loop

Pure stdlib (``urllib``); rendering is separated from polling so tests
drive :func:`render_frame` on canned documents.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.experiments.report import text_table
from repro.obs.live.server import DEFAULT_PORT

_STATUS_ORDER = {"running": 0, "quarantined": 1, "done": 2}


def fetch_json(url: str, timeout_s: float = 2.0) -> Dict[str, object]:
    """GET ``url`` and parse the JSON body (errors propagate)."""
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return json.loads(response.read().decode("utf-8"))


def _format_sim(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.2f} ms"
    return f"{ns / 1e3:.1f} us"


def render_frame(runs: Dict[str, object],
                 health: Optional[Dict[str, object]] = None) -> str:
    """One full frame from a ``/runs`` (and optional ``/healthz``) doc."""
    run = runs.get("run", {})
    trials: List[Dict[str, object]] = list(runs.get("trials", []))
    lines = [
        f"run: {run.get('label') or '(unlabelled)'}  "
        f"uptime {float(run.get('uptime_s', 0.0)):.0f}s  "
        f"trials {run.get('trials_seen', 0)} "
        f"({run.get('running', 0)} running, {run.get('done', 0)} done, "
        f"{run.get('quarantined', 0)} quarantined)  "
        f"snapshots {run.get('snapshots', 0)}"
    ]
    if health is not None:
        status = str(health.get("status", "?"))
        degraded = health.get("degraded_checks") or []
        verdict = status.upper()
        if degraded:
            verdict += " (" + ", ".join(str(c) for c in degraded) + ")"
        lines.append(f"health: {verdict}")
    if trials:
        trials.sort(key=lambda row: (_STATUS_ORDER.get(
            str(row.get("status")), 3), row.get("trial", 0)))
        rows = []
        for row in trials:
            overhead = row.get("overhead_percent")
            rows.append([
                str(row.get("trial", "?")),
                str(row.get("status", "?")),
                _format_sim(int(row.get("sim_now_ns", 0))),
                f"{int(row.get('samples', 0)):,}",
                f"{int(row.get('drops', 0)):,}",
                str(row.get("level", 0)),
                f"{int(row.get('faults', 0)):,}",
                f"{overhead:.2f}%" if overhead is not None else "-",
            ])
        lines.append(text_table(
            ["trial", "status", "sim time", "samples", "drops", "lvl",
             "faults", "overhead"],
            rows))
    else:
        lines.append("(no trials published yet)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top",
        description="live per-trial progress view for --live runs",
    )
    parser.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_PORT}",
                        help="live endpoint base URL "
                             "(default: %(default)s)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between polls (default 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="render one frame and exit")
    args = parser.parse_args(argv)
    base = args.url.rstrip("/")
    while True:
        try:
            runs = fetch_json(base + "/runs")
            try:
                health = fetch_json(base + "/healthz")
            except urllib.error.HTTPError as error:
                # /healthz answers 503 while degraded; the body is
                # still the verdict document.
                health = json.loads(error.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as error:
            print(f"error: cannot reach {base}: {error}", file=sys.stderr)
            return 1
        frame = render_frame(runs, health)
        if args.once:
            print(frame)
            return 0
        # Clear + home, then the frame: a flicker-free refresh on any
        # ANSI terminal without a curses dependency.
        sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        sys.stdout.flush()
        time.sleep(max(args.interval, 0.1))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
