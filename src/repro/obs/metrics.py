"""Metrics registry: counters, gauges, histograms, two exporters.

The registry is the aggregate side of the observability subsystem:
where the tracer answers *when did this happen*, the registry answers
*how often and how big*.  Three metric kinds cover the instrumented
sites:

* :class:`Counter` — monotone totals (events fired, samples dropped);
* :class:`Gauge` — level readings merged by **max** (depth high-water,
  shortest drain interval would invert — so gauges declare their merge
  policy at registration);
* :class:`Histogram` — fixed-bucket distributions (drain batch sizes,
  HRTimer fire lateness).

Exports: Prometheus exposition text (``to_prometheus`` — scrapeable,
and parseable back via :func:`parse_prometheus_text` for round-trip
tests and the report tool) and a lossless JSON document
(``to_json``/``from_json``) used to ship worker chunks across the
process pool.

**Determinism.**  Families export in registration order, label series
in sorted label order, and ``merge`` folds chunks in the caller's
(trial) order — so a ``jobs=4`` run produces byte-identical exports to
``jobs=1``.  Buckets are fixed at registration; merging histograms
with different bounds is a :class:`~repro.errors.ReproError`.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError

LabelValues = Tuple[str, ...]

# Default lateness/latency buckets (nanoseconds): 1 us .. 100 ms.
LATENCY_BUCKETS_NS = (
    1_000, 10_000, 50_000, 100_000, 500_000,
    1_000_000, 10_000_000, 100_000_000,
)
# Default size buckets (items per batch).
SIZE_BUCKETS = (0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


class ObsError(ReproError):
    """Metric misuse: kind mismatch, bad labels, malformed document."""


def _format_value(value: float) -> str:
    """Canonical number rendering: ints without a trailing ``.0``."""
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(names: Sequence[str], values: LabelValues) -> str:
    if not names:
        return ""
    inner = ",".join(f'{name}="{value}"'
                     for name, value in zip(names, values))
    return "{" + inner + "}"


class Counter:
    """Monotone float total for one label series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Level reading; ``set_max`` keeps the high-water mark."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with Prometheus cumulative semantics."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(float(bound) for bound in bounds)
        # counts[i] observations <= bounds[i]; final slot is +Inf.
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric: kind, help text, and its label series."""

    def __init__(self, name: str, kind: str, help_text: str,
                 label_names: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None) -> None:
        if kind not in _KINDS:
            raise ObsError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets) if buckets is not None else None
        if kind == "histogram" and self.buckets is None:
            raise ObsError(f"histogram {name!r} needs bucket bounds")
        self.series: Dict[LabelValues, object] = {}

    def labels(self, *values: str):
        """The child series for ``values`` (created on first use)."""
        if len(values) != len(self.label_names):
            raise ObsError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {values!r}"
            )
        child = self.series.get(values)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self.buckets or ())
            else:
                child = _KINDS[self.kind]()
            self.series[values] = child
        return child

    @property
    def default(self):
        """The label-less series (the common case)."""
        return self.labels()


class MetricsRegistry:
    """Named metric families with deterministic export and merge."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def families(self) -> Iterable[MetricFamily]:
        return self._families.values()

    def _register(self, name: str, kind: str, help_text: str,
                  label_names: Sequence[str],
                  buckets: Optional[Sequence[float]]) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ObsError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family
        family = MetricFamily(name, kind, help_text, label_names, buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, help_text: str = "",
                label_names: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, "counter", help_text, label_names, None)

    def gauge(self, name: str, help_text: str = "",
              label_names: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, "gauge", help_text, label_names, None)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = LATENCY_BUCKETS_NS,
                  label_names: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, "histogram", help_text, label_names,
                              buckets)

    def get(self, name: str) -> MetricFamily:
        try:
            return self._families[name]
        except KeyError:
            raise ObsError(f"no metric named {name!r}") from None

    # ------------------------------------------------------------------
    # Merge (deterministic: caller folds chunks in trial order)
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters and histograms add; gauges keep the maximum (every
        gauge here is a high-water reading).  Families unknown to this
        registry are adopted wholesale.
        """
        for name, theirs in other._families.items():
            mine = self._families.get(name)
            if mine is None:
                mine = MetricFamily(name, theirs.kind, theirs.help_text,
                                    theirs.label_names, theirs.buckets)
                self._families[name] = mine
            elif mine.kind != theirs.kind:
                raise ObsError(
                    f"merge kind mismatch for {name!r}: "
                    f"{mine.kind} vs {theirs.kind}"
                )
            for values, series in theirs.series.items():
                target = mine.labels(*values)
                if theirs.kind == "counter":
                    target.value += series.value
                elif theirs.kind == "gauge":
                    target.set_max(series.value)
                else:
                    if target.bounds != series.bounds:
                        raise ObsError(
                            f"merge bucket mismatch for {name!r}"
                        )
                    for index, count in enumerate(series.counts):
                        target.counts[index] += count
                    target.sum += series.sum
                    target.count += series.count

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus exposition-format text (0.0.4)."""
        lines: List[str] = []
        for family in self._families.values():
            if family.help_text:
                lines.append(f"# HELP {family.name} {family.help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values in sorted(family.series):
                series = family.series[values]
                labels = _format_labels(family.label_names, values)
                if family.kind in ("counter", "gauge"):
                    lines.append(f"{family.name}{labels} "
                                 f"{_format_value(series.value)}")
                    continue
                cumulative = 0
                for bound, count in zip(series.bounds, series.counts):
                    cumulative += count
                    le = _format_labels(
                        family.label_names + ("le",),
                        values + (_format_value(bound),),
                    )
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                le_inf = _format_labels(family.label_names + ("le",),
                                        values + ("+Inf",))
                lines.append(f"{family.name}_bucket{le_inf} {series.count}")
                lines.append(f"{family.name}_sum{labels} "
                             f"{_format_value(series.sum)}")
                lines.append(f"{family.name}_count{labels} {series.count}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> Dict[str, object]:
        """Lossless document: chunk shipping and ``from_json`` round-trip."""
        families = []
        for family in self._families.values():
            series = []
            for values in sorted(family.series):
                child = family.series[values]
                if family.kind == "histogram":
                    data = {"counts": list(child.counts),
                            "sum": child.sum, "count": child.count}
                else:
                    data = {"value": child.value}
                series.append({"labels": list(values), **data})
            families.append({
                "name": family.name, "kind": family.kind,
                "help": family.help_text,
                "label_names": list(family.label_names),
                "buckets": (list(family.buckets)
                            if family.buckets is not None else None),
                "series": series,
            })
        return {"families": families}

    @classmethod
    def from_json(cls, document: Dict[str, object]) -> "MetricsRegistry":
        registry = cls()
        try:
            for entry in document["families"]:
                family = registry._register(
                    entry["name"], entry["kind"], entry.get("help", ""),
                    tuple(entry.get("label_names", ())),
                    (tuple(entry["buckets"])
                     if entry.get("buckets") is not None else None),
                )
                for item in entry["series"]:
                    child = family.labels(*item["labels"])
                    if family.kind == "histogram":
                        child.counts = list(item["counts"])
                        child.sum = float(item["sum"])
                        child.count = int(item["count"])
                    else:
                        child.value = float(item["value"])
        except (KeyError, TypeError, ValueError) as error:
            raise ObsError(f"malformed metrics document: {error}") from error
        return registry

    def write(self, path) -> None:
        """Write metrics; ``.json`` suffix selects the JSON document,
        anything else gets Prometheus text.  A trailing ``.gz`` gzips
        either format transparently."""
        from repro.io import effective_suffix, write_artifact_text

        if effective_suffix(path) == ".json":
            write_artifact_text(path, json.dumps(
                self.to_json(), sort_keys=True,
                separators=(",", ":")) + "\n")
        else:
            write_artifact_text(path, self.to_prometheus())


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, object]]:
    """Parse exposition text back into ``{name: {kind, samples}}``.

    ``samples`` maps a rendered label string (``'{a="b"}'`` or ``""``)
    to a float value; histogram component samples keep their
    ``_bucket``/``_sum``/``_count`` suffixes under the family name.
    Enough structure for round-trip tests and the report tool — not a
    general Prometheus client.
    """
    metrics: Dict[str, Dict[str, object]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            metrics.setdefault(name, {"kind": kind, "samples": {}})
            metrics[name]["kind"] = kind
            continue
        if line.startswith("#"):
            continue
        try:
            sample, value_text = line.rsplit(None, 1)
            value = float(value_text.replace("+Inf", "inf"))
        except ValueError as error:
            raise ObsError(f"malformed metric line {line!r}") from error
        brace = sample.find("{")
        if brace >= 0:
            sample_name, labels = sample[:brace], sample[brace:]
        else:
            sample_name, labels = sample, ""
        family = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[:-len(suffix)]
            if (sample_name.endswith(suffix) and base in metrics
                    and metrics[base]["kind"] == "histogram"):
                family = base
                break
        entry = metrics.setdefault(family, {"kind": "untyped",
                                            "samples": {}})
        key = sample_name[len(family):] + labels
        entry["samples"][key] = value
    return metrics
