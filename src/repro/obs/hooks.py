"""Profiling hook points and the recorder protocol.

The instrumented hot paths (event queue, HRTimer, ring buffer, K-LEB
controller, fault ledger, trial runner) do not know about tracers or
registries; they talk to a **recorder** through the narrow hook-point
methods defined on :class:`Recorder`.

The contract that keeps observability honest:

* **Off is the default and a true no-op.**  The module-level recorder
  starts as :data:`NULL` — a :class:`NullRecorder` whose hooks do
  nothing and allocate nothing.  Instrumented objects capture
  :func:`active` (``None`` while the null recorder is installed) at
  construction, so a disabled run pays one pointer comparison per hook
  site and zero allocations.  The golden-digest suite proves the
  simulation is bit-identical either way; the Hypothesis suite proves
  arbitrary hook-call interleavings against the null recorder cannot
  perturb engine state.
* **Hooks observe, never steer.**  A hook receives already-computed
  values (a lateness, a batch size, a depth); it draws no randomness
  and mutates no simulation state, so *enabled* runs produce the same
  reports too.
* **Worker merging is trial-ordered.**  :func:`trial_capture` swaps in
  a fresh child recorder for one trial; its :meth:`Recorder.chunk` is
  plain data that rides home on the summary, and
  :func:`merge_chunk` folds chunks into the parent in trial order —
  ``jobs=4`` output is byte-identical to ``jobs=1``.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.metrics import (
    LATENCY_BUCKETS_NS,
    SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.obs.trace import SpanHandle, Tracer


class NullRecorder:
    """Every hook is a body-less no-op; installed by default.

    Kept method-per-hook (rather than ``__getattr__``) so a typo'd hook
    name fails loudly instead of silently no-opping.
    """

    enabled = False

    # -- engine ---------------------------------------------------------
    def queue_scheduled(self, depth: int) -> None: pass
    def queue_events_fired(self, count: int) -> None: pass
    def queue_event_cancelled(self) -> None: pass
    def queue_compacted(self, dead: int, remaining: int) -> None: pass

    # -- hrtimer --------------------------------------------------------
    def timer_fired(self, label: str, when: int, lateness_ns: int) -> None: pass
    def timer_missed(self, label: str, when: int) -> None: pass
    def timer_overrun(self, label: str, when: int, skipped: int) -> None: pass

    # -- ring buffer ----------------------------------------------------
    def buffer_pushed(self, depth: int) -> None: pass
    def buffer_dropped(self) -> None: pass
    def buffer_paused(self) -> None: pass
    def buffer_resumed(self) -> None: pass
    def buffer_squeezed(self, capacity: int) -> None: pass

    # -- controller -----------------------------------------------------
    def drain_cycle(self, start_ns: int, end_ns: int, batch: int,
                    paused: bool, interval_ns: int) -> None: pass
    def drain_shrunk(self, now: int, interval_ns: int) -> None: pass
    def drain_restored(self, now: int, interval_ns: int) -> None: pass
    def controller_retry(self, now: int, op: str) -> None: pass

    # -- adaptive control ----------------------------------------------
    def timer_reprogrammed(self, label: str, when: int,
                           period_ns: int) -> None: pass
    def control_observation(self, now: int,
                            overhead_percent: Optional[float],
                            level: int,
                            budget_percent: Optional[float] = None
                            ) -> None: pass
    def control_step(self, now: int, action: str, level: int,
                     period_ns: int) -> None: pass
    def control_frozen(self, now: int) -> None: pass

    # -- faults ---------------------------------------------------------
    def fault_landed(self, time_ns: int, site: str, kind: str) -> None: pass
    def fault_recovered(self, time_ns: int, site: str) -> None: pass

    # -- runner ---------------------------------------------------------
    def trial_started(self, trial: int) -> None: pass
    def trial_span(self, trial: int, seed: int, program: str, tool: str,
                   wall_ns: int, samples: int) -> None: pass
    def trial_retry(self, trial: int, attempt: int, kind: str) -> None: pass
    def trial_quarantined(self, trial: int, attempts: int) -> None: pass


NULL = NullRecorder()


class Recorder(NullRecorder):
    """A live recorder: tracer (optional) plus metrics registry.

    Every metric the hooks touch is pre-registered here, in a fixed
    order, so exports are deterministic and zero-valued metrics are
    still visible (a run with no drops *says* ``0`` drops).
    """

    enabled = True

    def __init__(self, trace: bool = True, metrics: bool = True,
                 wallclock: bool = False, flight=None,
                 publisher=None) -> None:
        # ``flight`` (a FlightRecorder ring) tees off the tracer's
        # record choke point; with trace=False the tracer runs in
        # non-retaining mode so the ring still sees recent events at
        # O(ring) memory.  ``publisher`` (a LivePublisher) streams
        # progress snapshots; both default off and cost nothing then.
        self.tracer: Optional[Tracer] = (
            Tracer(wallclock=wallclock, flight=flight, retain=trace)
            if (trace or flight is not None) else None
        )
        self.flight = flight
        self.publisher = publisher
        if publisher is not None:
            publisher.bind(self)
        self.registry = MetricsRegistry()
        self.wallclock = wallclock
        self.metrics_enabled = metrics
        reg = self.registry
        # engine
        self._events_fired = reg.counter(
            "sim_events_fired_total",
            "event-queue callbacks dispatched").default
        self._events_cancelled = reg.counter(
            "sim_events_cancelled_total",
            "scheduled events cancelled before firing").default
        self._compactions = reg.counter(
            "sim_queue_compactions_total",
            "tombstone-compaction heap rebuilds").default
        self._queue_high_water = reg.gauge(
            "sim_queue_depth_high_water",
            "max live events in the queue (high-water)").default
        # hrtimer
        self._timer_fires = reg.counter(
            "hrtimer_fires_total", "HRTimer handler invocations").default
        self._timer_missed = reg.counter(
            "hrtimer_missed_total",
            "expiries swallowed by masked-IRQ windows").default
        self._timer_overruns = reg.counter(
            "hrtimer_overruns_total",
            "re-arms that skipped slots (handler outran period)").default
        self._timer_skipped = reg.counter(
            "hrtimer_skipped_slots_total",
            "expiry slots skipped by overrun forwarding").default
        self._timer_lateness = reg.histogram(
            "hrtimer_fire_lateness_ns",
            "fire time minus ideal expiry (jitter + injected latency)",
            buckets=LATENCY_BUCKETS_NS).default
        # ring buffer
        self._buffer_pushes = reg.counter(
            "ringbuffer_pushes_total", "samples pooled in the buffer").default
        self._buffer_drops = reg.counter(
            "ringbuffer_dropped_total",
            "samples refused while full/paused").default
        self._buffer_pauses = reg.counter(
            "ringbuffer_pause_episodes_total",
            "back-pressure safety stops engaged").default
        self._buffer_resumes = reg.counter(
            "ringbuffer_resume_total", "safety stops released").default
        self._buffer_squeezes = reg.counter(
            "ringbuffer_squeeze_episodes_total",
            "injected capacity-squeeze episodes begun").default
        self._buffer_high_water = reg.gauge(
            "ringbuffer_depth_high_water",
            "max pooled samples (high-water)").default
        # controller
        self._drain_cycles = reg.counter(
            "kleb_drain_cycles_total", "controller drain cycles").default
        self._drain_batch = reg.histogram(
            "kleb_drain_batch_size", "samples drained per cycle",
            buckets=SIZE_BUCKETS).default
        self._drain_latency = reg.histogram(
            "kleb_drain_cycle_ns", "simulated time per drain cycle",
            buckets=LATENCY_BUCKETS_NS).default
        self._drain_shrinks = reg.counter(
            "kleb_drain_shrinks_total",
            "adaptive drain-interval halvings").default
        self._drain_restores = reg.counter(
            "kleb_drain_restores_total",
            "drain-interval restorations after healthy cycles").default
        self._retries = reg.counter(
            "kleb_retries_total", "transient syscall retries",
            label_names=("op",))
        # faults
        self._faults_landed = reg.counter(
            "faults_landed_total", "injected faults by site",
            label_names=("site",))
        self._faults_recovered = reg.counter(
            "faults_recovered_total", "recoveries observed by site",
            label_names=("site",))
        # runner
        self._trials = reg.counter(
            "trials_total", "trials completed (any outcome)").default
        self._trial_retries = reg.counter(
            "trials_retried_total", "trial attempts retried").default
        self._trials_quarantined = reg.counter(
            "trials_quarantined_total",
            "trials quarantined after the retry budget").default
        self._trial_wall = reg.histogram(
            "trial_sim_wall_ns", "victim wall time per trial",
            buckets=tuple(b * 1000 for b in LATENCY_BUCKETS_NS)).default
        # Adaptive-control metrics are registered lazily on first use
        # (see _control_metrics) so the pre-registered export set — and
        # with it the pinned obs digests — is unchanged for runs that
        # never enable the controller.
        self._control: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------
    # The per-event hooks (scheduled / fired / pushed / timer-fired)
    # run thousands of times per simulated second, so they mutate the
    # pre-registered metric objects directly instead of going through
    # ``inc``/``observe``/``set_max`` — one Python call per hook site,
    # not three.  The values they receive are trusted (non-negative by
    # construction), which is what ``Counter.inc`` would be checking.
    def queue_scheduled(self, depth: int) -> None:
        gauge = self._queue_high_water
        if depth > gauge.value:
            gauge.value = float(depth)

    def queue_events_fired(self, count: int) -> None:
        self._events_fired.value += count

    def queue_event_cancelled(self) -> None:
        self._events_cancelled.value += 1.0

    def queue_compacted(self, dead: int, remaining: int) -> None:
        self._compactions.inc()

    # ------------------------------------------------------------------
    # hrtimer
    # ------------------------------------------------------------------
    def timer_fired(self, label: str, when: int, lateness_ns: int) -> None:
        self._timer_fires.value += 1.0
        hist = self._timer_lateness
        hist.counts[bisect_left(hist.bounds, lateness_ns)] += 1
        hist.sum += lateness_ns
        hist.count += 1
        publisher = self.publisher
        if publisher is not None:
            publisher.heartbeat(when)

    def timer_missed(self, label: str, when: int) -> None:
        self._timer_missed.inc()
        if self.tracer is not None:
            self.tracer.instant("timer-missed", "hrtimer", when,
                                {"timer": label}, category="hrtimer")

    def timer_overrun(self, label: str, when: int, skipped: int) -> None:
        self._timer_overruns.inc()
        self._timer_skipped.inc(skipped)
        if self.tracer is not None:
            self.tracer.instant("timer-overrun", "hrtimer", when,
                                {"timer": label, "skipped": skipped},
                                category="hrtimer")

    # ------------------------------------------------------------------
    # ring buffer
    # ------------------------------------------------------------------
    def buffer_pushed(self, depth: int) -> None:
        self._buffer_pushes.value += 1.0
        gauge = self._buffer_high_water
        if depth > gauge.value:
            gauge.value = float(depth)

    def buffer_dropped(self) -> None:
        self._buffer_drops.inc()

    def buffer_paused(self) -> None:
        self._buffer_pauses.inc()

    def buffer_resumed(self) -> None:
        self._buffer_resumes.inc()

    def buffer_squeezed(self, capacity: int) -> None:
        self._buffer_squeezes.inc()

    # ------------------------------------------------------------------
    # controller
    # ------------------------------------------------------------------
    def drain_cycle(self, start_ns: int, end_ns: int, batch: int,
                    paused: bool, interval_ns: int) -> None:
        self._drain_cycles.inc()
        self._drain_batch.observe(batch)
        self._drain_latency.observe(end_ns - start_ns)
        if self.tracer is not None:
            self.tracer.complete(
                "drain-cycle", "controller", start_ns,
                end_ns - start_ns,
                {"batch": batch, "paused": paused,
                 "interval_ns": interval_ns},
                category="controller",
            )
        publisher = self.publisher
        if publisher is not None:
            publisher.heartbeat(end_ns)

    def drain_shrunk(self, now: int, interval_ns: int) -> None:
        self._drain_shrinks.inc()
        if self.tracer is not None:
            self.tracer.instant("drain-shrink", "controller", now,
                                {"interval_ns": interval_ns},
                                category="controller")

    def drain_restored(self, now: int, interval_ns: int) -> None:
        self._drain_restores.inc()
        if self.tracer is not None:
            self.tracer.instant("drain-restore", "controller", now,
                                {"interval_ns": interval_ns},
                                category="controller")

    def controller_retry(self, now: int, op: str) -> None:
        self._retries.labels(op).inc()

    # ------------------------------------------------------------------
    # adaptive control
    # ------------------------------------------------------------------
    def _control_metrics(self) -> Dict[str, object]:
        """Register the controller's metric families on first use.

        Lazy so adaptive-off runs export exactly the pre-registered
        set.  Registration is idempotent per name and
        ``MetricsRegistry.merge`` adopts unknown families wholesale,
        so parent recorders that never saw the controller still merge
        worker chunks that did.
        """
        control = self._control
        if control is None:
            reg = self.registry
            control = {
                "observations": reg.counter(
                    "control_observations_total",
                    "closed-loop sensor observations folded in").default,
                "steps": reg.counter(
                    "control_steps_total",
                    "closed-loop transitions by action",
                    label_names=("action",)),
                "level": reg.gauge(
                    "control_ladder_level_high_water",
                    "deepest degradation-ladder level reached").default,
                "overhead": reg.histogram(
                    "control_overhead_percent",
                    "smoothed monitoring overhead (percent of victim "
                    "cycles) per observation",
                    buckets=(0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 100.0)).default,
                "reprograms": reg.counter(
                    "hrtimer_reprogram_total",
                    "in-place HRTimer period changes").default,
                "frozen": reg.counter(
                    "control_frozen_observations_total",
                    "drain cycles lost to injected decision freezes").default,
            }
            self._control = control
        return control

    def timer_reprogrammed(self, label: str, when: int,
                           period_ns: int) -> None:
        self._control_metrics()["reprograms"].inc()
        if self.tracer is not None:
            self.tracer.instant("timer-reprogram", "hrtimer", when,
                                {"timer": label, "period_ns": period_ns},
                                category="hrtimer")

    def control_observation(self, now: int,
                            overhead_percent: Optional[float],
                            level: int,
                            budget_percent: Optional[float] = None
                            ) -> None:
        control = self._control_metrics()
        control["observations"].inc()
        control["level"].set_max(level)
        if overhead_percent is not None:
            control["overhead"].observe(overhead_percent)
        publisher = self.publisher
        if publisher is not None:
            # Keep the live fields fresh so the next snapshot carries
            # the ladder level and the budget the watchdog checks
            # breaches against.
            publisher.level = level
            publisher.overhead_percent = overhead_percent
            if budget_percent is not None:
                publisher.budget_percent = budget_percent

    def control_step(self, now: int, action: str, level: int,
                     period_ns: int) -> None:
        self._control_metrics()["steps"].labels(action).inc()
        if self.tracer is not None:
            self.tracer.instant(f"control:{action}", "controller", now,
                                {"level": level, "period_ns": period_ns},
                                category="controller")

    def control_frozen(self, now: int) -> None:
        self._control_metrics()["frozen"].inc()
        if self.tracer is not None:
            self.tracer.instant("control-frozen", "controller", now,
                                category="controller")

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------
    def fault_landed(self, time_ns: int, site: str, kind: str) -> None:
        self._faults_landed.labels(site).inc()
        if self.tracer is not None:
            self.tracer.instant(f"fault:{kind}", "faults", time_ns,
                                {"site": site}, category="fault")

    def fault_recovered(self, time_ns: int, site: str) -> None:
        self._faults_recovered.labels(site).inc()

    # ------------------------------------------------------------------
    # runner
    # ------------------------------------------------------------------
    def trial_started(self, trial: int) -> None:
        publisher = self.publisher
        if publisher is not None:
            # Announce the trial on the bus immediately so /runs shows
            # it as running before the first cadence-gated heartbeat.
            publisher.publish(0, "running")

    def trial_span(self, trial: int, seed: int, program: str, tool: str,
                   wall_ns: int, samples: int) -> None:
        self._trials.inc()
        self._trial_wall.observe(wall_ns)
        if self.tracer is not None:
            self.tracer.complete(
                "trial", "runner", 0, wall_ns,
                {"trial": trial, "seed": seed, "program": program,
                 "tool": tool, "samples": samples},
                category="runner",
            )
        publisher = self.publisher
        if publisher is not None:
            # The unconditional final snapshot: whatever the heartbeat
            # cadence did, the merged live view converges on the
            # post-hoc registry because this one always lands.
            publisher.publish(wall_ns, "done")

    def trial_retry(self, trial: int, attempt: int, kind: str) -> None:
        self._trial_retries.inc()
        if self.tracer is not None:
            self.tracer.instant("trial-retry", "runner", 0,
                                {"trial": trial, "attempt": attempt,
                                 "kind": kind}, category="runner")

    def trial_quarantined(self, trial: int, attempts: int) -> None:
        self._trials_quarantined.inc()
        if self.tracer is not None:
            self.tracer.instant("trial-quarantined", "runner", 0,
                                {"trial": trial, "attempts": attempts},
                                category="runner")
        publisher = self.publisher
        if publisher is not None:
            publisher.publish(0, "quarantined")

    # ------------------------------------------------------------------
    # spans for ad-hoc callers (report tool, experiments)
    # ------------------------------------------------------------------
    def begin_span(self, name: str, track: str, start_ns: int,
                   args: Optional[Dict[str, object]] = None
                   ) -> Optional[SpanHandle]:
        if self.tracer is None:
            return None
        return self.tracer.begin(name, track, start_ns, args)

    def end_span(self, handle: Optional[SpanHandle], end_ns: int) -> None:
        if handle is not None and self.tracer is not None:
            self.tracer.end(handle, end_ns)

    # ------------------------------------------------------------------
    # live telemetry
    # ------------------------------------------------------------------
    def live_sample(self) -> Dict[str, int]:
        """The scalar progress fields a live snapshot carries.

        Reads the already-maintained metric objects — a handful of
        float loads, no aggregation pass — so publication stays cheap
        enough for a heartbeat cadence.
        """
        return {
            "samples": int(self._buffer_pushes.value),
            "drops": int(self._buffer_drops.value),
            "timer_fires": int(self._timer_fires.value),
            "faults": int(sum(series.value for series
                              in self._faults_landed.series.values())),
        }

    # ------------------------------------------------------------------
    # trial chunks
    # ------------------------------------------------------------------
    def child_for_trial(self, trial: int) -> "Recorder":
        """A fresh recorder with this one's flags, stamped ``pid=trial``.

        The flight ring is *shared* (one bounded window of the recent
        past per process); the publisher is *cloned* per trial so
        snapshots carry the right trial index and sequence numbers.
        """
        child = Recorder(trace=(self.tracer is not None
                                and self.tracer.retain),
                         metrics=self.metrics_enabled,
                         wallclock=self.wallclock,
                         flight=self.flight,
                         publisher=(self.publisher.for_trial(trial)
                                    if self.publisher is not None
                                    else None))
        if child.tracer is not None:
            child.tracer.pid = trial
        return child

    def chunk(self) -> Dict[str, object]:
        """Everything recorded, as plain picklable data."""
        return {
            "events": (self.tracer.dump_events()
                       if self.tracer is not None else []),
            "metrics": self.registry.to_json(),
        }

    def merge_chunk(self, chunk: Dict[str, object]) -> None:
        if self.tracer is not None:
            self.tracer.absorb_events(chunk.get("events", []))
        self.registry.merge(MetricsRegistry.from_json(chunk["metrics"]))

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def write_trace(self, path) -> None:
        if self.tracer is None or not self.tracer.retain:
            raise ValueError("recorder was created with trace=False")
        self.tracer.write(path)

    def write_metrics(self, path) -> None:
        self.registry.write(path)


# ----------------------------------------------------------------------
# The module-level recorder (global, fork-inherited by pool workers)
# ----------------------------------------------------------------------
_recorder: NullRecorder = NULL


def install(recorder: NullRecorder) -> None:
    """Make ``recorder`` the process-wide recorder."""
    global _recorder
    _recorder = recorder


def reset() -> None:
    """Back to the null recorder (observability off)."""
    install(NULL)


def recorder() -> NullRecorder:
    """The installed recorder (the null recorder when off)."""
    return _recorder


def active() -> Optional[Recorder]:
    """The installed recorder, or ``None`` when observability is off.

    Hot paths capture this once at construction and guard each hook
    site with a single ``is not None`` comparison — the cheapest
    possible disabled-path cost.
    """
    current = _recorder
    if type(current) is NullRecorder:
        return None
    return current  # type: ignore[return-value]


@contextmanager
def trial_capture(trial: int) -> Iterator[Optional[Recorder]]:
    """Run one trial under a fresh child recorder.

    Yields ``None`` (and installs nothing) when observability is off.
    On exit the parent recorder is reinstalled; the caller extracts the
    child's :meth:`Recorder.chunk` and merges it via
    :func:`merge_chunk` **in trial order**, which is what makes
    ``jobs=N`` output identical to serial.
    """
    parent = _recorder
    if type(parent) is NullRecorder:
        yield None
        return
    child = parent.child_for_trial(trial)  # type: ignore[union-attr]
    install(child)
    try:
        yield child
    finally:
        install(parent)


def merge_chunk(chunk: Optional[Dict[str, object]]) -> None:
    """Fold a trial chunk into the installed recorder (no-op when off)."""
    if chunk is None:
        return
    current = active()
    if current is not None:
        current.merge_chunk(chunk)
