"""Structured span tracing on the simulated clock.

The tracer records **named spans** (work with a start and a duration)
and **instant events** (points in time) against the simulation's
integer-nanosecond clock, and exports them as Chrome trace-event JSON
— loadable directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` — or as JSONL (one event object per line, for
streaming consumers and ``grep``).

Design constraints, in order:

1. **Determinism.**  Event content is a pure function of the simulated
   run: timestamps are simulated nanoseconds, ordering is emission
   order, and export is canonical (sorted keys, fixed separators), so
   a fixed seed yields a byte-identical trace file — which the golden
   suite pins with a SHA-256 digest.  Wall-clock annotation is opt-in
   (``wallclock=True``) and explicitly breaks the digest.
2. **Cheapness.**  Events are stored as plain tuples; recording is an
   append.  No I/O, no serialization, no dict churn until export.

The Chrome mapping: each *trial* is a trace ``pid`` (so ``jobs=N``
populations land as N processes in Perfetto) and each instrumented
subsystem is a ``tid`` (track) within it, named via ``M`` metadata
events.  Spans are ``X`` (complete) events; instants are ``i`` with
thread scope.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

PathLike = Union[str, Path]

# Track (tid) layout inside each trial's process.  Fixed small ints so
# traces from different runs/workers line up in Perfetto.
TRACKS = {
    "runner": 0,
    "engine": 1,
    "hrtimer": 2,
    "ringbuffer": 3,
    "controller": 4,
    "tool": 5,
    "faults": 6,
    "live": 7,
}

_NS_PER_US = 1000.0

# Internal event tuples: (phase, name, category, ts_ns, dur_ns, pid,
# tid, args).  ``dur_ns`` is None for instants.
_Event = Tuple[str, str, str, int, Optional[int], int, int,
               Optional[Dict[str, object]]]


class SpanHandle:
    """An open span; close it with :meth:`Tracer.end`.

    Holding the start time on the handle (not a tracer-level stack)
    means overlapping spans from interleaved simulated processes nest
    correctly — Perfetto infers nesting from containment, not from
    emission order.
    """

    __slots__ = ("name", "category", "start_ns", "tid", "args", "closed")

    def __init__(self, name: str, category: str, start_ns: int, tid: int,
                 args: Optional[Dict[str, object]]) -> None:
        self.name = name
        self.category = category
        self.start_ns = start_ns
        self.tid = tid
        self.args = args
        self.closed = False


class Tracer:
    """Append-only trace event log for one run.

    Two optional sinks widen the plumbing without changing the
    deterministic export:

    * ``flight`` — a :class:`~repro.obs.live.flight.FlightRecorder`
      (anything with a ``record(event_tuple)`` method) that receives a
      copy of every event as it is recorded, keeping a bounded ring of
      the recent past even when the full trace is enormous;
    * ``retain=False`` — flight-only mode: events flow to the flight
      ring but are **not** accumulated in memory, so a run that never
      writes a trace file pays O(ring) memory instead of O(run).
      ``dump_events``/exports see an empty log in this mode.
    """

    def __init__(self, wallclock: bool = False, flight=None,
                 retain: bool = True) -> None:
        self.wallclock = wallclock
        self._events: List[_Event] = []
        self._flight = flight
        self.retain = retain
        # Default process id for recorded events; the runner points this
        # at the trial index via the per-trial child recorder.
        self.pid = 0

    def __len__(self) -> int:
        return len(self._events)

    def _record(self, event: _Event) -> None:
        """The single choke point every recorded event passes through."""
        if self.retain:
            self._events.append(event)
        if self._flight is not None:
            self._flight.record(event)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _wall_args(self, args: Optional[Dict[str, object]]
                   ) -> Optional[Dict[str, object]]:
        if not self.wallclock:
            return args
        stamped = dict(args) if args else {}
        stamped["wall_ns"] = time.monotonic_ns()
        return stamped

    def instant(self, name: str, track: str, ts_ns: int,
                args: Optional[Dict[str, object]] = None,
                category: str = "obs") -> None:
        """Record a point event at simulated time ``ts_ns``."""
        self._record((
            "i", name, category, ts_ns, None, self.pid,
            TRACKS.get(track, 0), self._wall_args(args),
        ))

    def complete(self, name: str, track: str, start_ns: int, dur_ns: int,
                 args: Optional[Dict[str, object]] = None,
                 category: str = "obs") -> None:
        """Record a finished span covering ``[start_ns, start_ns+dur_ns]``."""
        self._record((
            "X", name, category, start_ns, dur_ns, self.pid,
            TRACKS.get(track, 0), self._wall_args(args),
        ))

    def begin(self, name: str, track: str, start_ns: int,
              args: Optional[Dict[str, object]] = None,
              category: str = "obs") -> SpanHandle:
        """Open a span; nothing is recorded until :meth:`end`."""
        return SpanHandle(name, category, start_ns,
                          TRACKS.get(track, 0), args)

    def end(self, handle: SpanHandle, end_ns: int) -> None:
        """Close ``handle``, recording the complete span.  Idempotent."""
        if handle.closed:
            return
        handle.closed = True
        self._record((
            "X", handle.name, handle.category, handle.start_ns,
            max(0, end_ns - handle.start_ns), self.pid, handle.tid,
            self._wall_args(handle.args),
        ))

    # ------------------------------------------------------------------
    # Chunk shipping (worker -> parent, trial-ordered merge)
    # ------------------------------------------------------------------
    def dump_events(self) -> List[_Event]:
        """Plain-data event list, picklable across process boundaries."""
        return list(self._events)

    def absorb_events(self, events: List) -> None:
        """Append a chunk of events recorded elsewhere (trial-ordered
        merging keeps the combined trace deterministic)."""
        self._events.extend(tuple(event) for event in events)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dicts(self) -> List[Dict[str, object]]:
        """Chrome trace-event objects (ts/dur in microseconds)."""
        out: List[Dict[str, object]] = []
        for ph, name, cat, ts_ns, dur_ns, pid, tid, args in self._events:
            event: Dict[str, object] = {
                "ph": ph, "name": name, "cat": cat,
                "ts": ts_ns / _NS_PER_US, "pid": pid, "tid": tid,
            }
            if ph == "X":
                event["dur"] = (dur_ns or 0) / _NS_PER_US
            elif ph == "i":
                event["s"] = "t"  # thread-scoped instant
            if args:
                event["args"] = dict(args)
            out.append(event)
        return out

    def _metadata_events(self) -> List[Dict[str, object]]:
        """``M`` events naming each (pid, tid) pair seen in the trace."""
        pids = sorted({event[5] for event in self._events})
        pairs = sorted({(event[5], event[6]) for event in self._events})
        track_names = {tid: name for name, tid in TRACKS.items()}
        out: List[Dict[str, object]] = []
        for pid in pids:
            out.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": f"trial {pid}"},
            })
        for pid, tid in pairs:
            out.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": track_names.get(tid, f"track {tid}")},
            })
        return out

    def to_chrome_json(self) -> str:
        """The full Chrome trace document as canonical JSON text."""
        document = {
            "displayTimeUnit": "ns",
            "traceEvents": self._metadata_events() + self.to_dicts(),
        }
        return json.dumps(document, sort_keys=True, separators=(",", ":"))

    def to_jsonl(self) -> str:
        """One canonical-JSON event per line (no metadata events)."""
        return "\n".join(
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            for event in self.to_dicts()
        )

    def write(self, path: PathLike) -> None:
        """Write the trace; ``.jsonl`` suffix selects JSONL, anything
        else gets the Chrome/Perfetto document.  A trailing ``.gz``
        gzips either format transparently."""
        from repro.io import effective_suffix, write_artifact_text

        if effective_suffix(path) == ".jsonl":
            write_artifact_text(path, self.to_jsonl() + "\n")
        else:
            write_artifact_text(path, self.to_chrome_json() + "\n")
