"""Flight recorder: a bounded ring of the recent trace past.

A long live run cannot afford full tracing, but the moment something
goes wrong — a trial is quarantined, the watchdog trips, the process
crashes — the *recent* past is exactly what a post-mortem needs.  The
flight recorder keeps that past at O(1) memory: one bounded ring of
trace-event tuples per subsystem track, fed from the tracer's single
record choke point (:meth:`repro.obs.trace.Tracer._record`), so it
sees every span and instant the hooks emit **even when full tracing is
off** (the recorder runs the tracer in non-retaining mode then — see
``retain`` in :class:`~repro.obs.trace.Tracer`).

On a trigger, :meth:`FlightRecorder.dump` snapshots the rings into a
plain JSON document (Chrome trace-event dicts grouped by track, newest
last) and :meth:`write` lands it as ``<out>.flight.json``.  Dumps are
cheap and idempotent; the rings keep recording through them.

The ring append is a single ``deque.append`` under the GIL, so feeding
it from the simulation thread while the watchdog dumps from the bus
drainer thread needs no locking — ``dump`` copies each ring with
``list(ring)``, which is likewise atomic enough for a diagnostic
artifact.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.obs.trace import TRACKS

PathLike = Union[str, Path]

#: Default events retained per subsystem track.
DEFAULT_RING_CAPACITY = 256

_TRACK_NAMES = {tid: name for name, tid in TRACKS.items()}
_NS_PER_US = 1000.0


def _event_to_dict(seq: int, event: Tuple) -> Dict[str, object]:
    """One internal event tuple as a Chrome trace-event dict + seq."""
    ph, name, cat, ts_ns, dur_ns, pid, tid, args = event
    out: Dict[str, object] = {
        "seq": seq, "ph": ph, "name": name, "cat": cat,
        "ts": ts_ns / _NS_PER_US, "pid": pid, "tid": tid,
    }
    if ph == "X":
        out["dur"] = (dur_ns or 0) / _NS_PER_US
    elif ph == "i":
        out["s"] = "t"
    if args:
        out["args"] = dict(args)
    return out


class FlightRecorder:
    """Per-track bounded rings of the most recent trace events."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rings: Dict[int, Deque[Tuple[int, Tuple]]] = {}
        self._seq = 0
        self.recorded = 0
        self.dumps = 0

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values())

    def record(self, event: Tuple) -> None:
        """Append one tracer event tuple to its track's ring."""
        self._seq += 1
        self.recorded += 1
        tid = event[6]
        ring = self._rings.get(tid)
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._rings[tid] = ring
        ring.append((self._seq, event))

    def instant(self, name: str, track: str, ts_ns: int,
                args: Optional[Dict[str, object]] = None,
                category: str = "live") -> None:
        """Record an ad-hoc instant directly (watchdog ``health:*``)."""
        self.record(("i", name, category, ts_ns, None, 0,
                     TRACKS.get(track, 0), args))

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def dump(self, reason: str,
             extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """The ring contents as a plain JSON-able post-mortem document."""
        self.dumps += 1
        tracks: Dict[str, List[Dict[str, object]]] = {}
        for tid in sorted(self._rings):
            events = [_event_to_dict(seq, event)
                      for seq, event in list(self._rings[tid])]
            tracks[_TRACK_NAMES.get(tid, f"track {tid}")] = events
        document: Dict[str, object] = {
            "format": "repro-flight-v1",
            "reason": reason,
            "wall_time_s": time.time(),
            "ring_capacity": self.capacity,
            "events_recorded": self.recorded,
            "events_retained": len(self),
            "tracks": tracks,
        }
        if extra:
            document.update(extra)
        return document

    def write(self, path: PathLike, reason: str,
              extra: Optional[Dict[str, object]] = None) -> Path:
        """Dump and land the document at ``path`` (``<out>.flight.json``)."""
        path = Path(path)
        document = self.dump(reason, extra)
        path.write_text(json.dumps(document, indent=2, sort_keys=True)
                        + "\n")
        return path
