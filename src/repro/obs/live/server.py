"""The live HTTP plane: ``/metrics``, ``/healthz``, ``/runs``.

A stdlib-only :class:`~http.server.ThreadingHTTPServer` serving three
read-only views of the snapshot bus:

* ``GET /metrics`` — Prometheus 0.0.4 exposition text: the merged
  live registries (every family the recorder pre-registers, rendered
  by the existing :meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus`
  exporter) followed by the bus's own ``live_*`` families and the
  watchdog's ``health_*`` families;
* ``GET /healthz`` — the watchdog verdict as JSON; HTTP 200 while
  every check is ok, 503 while any is tripped (so a Kubernetes-style
  probe needs no body parsing);
* ``GET /runs`` — run/trial status as JSON (what
  ``python -m repro.obs.top`` polls).

Scrapers read *copies* built under the state lock; nothing here can
reach into, much less steer, the simulation.  Handler threads are
daemonic and the listener binds loopback by default — this is an
operator window, not a public service.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.live.bus import LiveState
from repro.obs.live.watchdog import Watchdog

DEFAULT_PORT = 9137


def render_live_families(state: LiveState) -> str:
    """The ``live_*`` families (bus bookkeeping) as exposition text."""
    from repro.obs.metrics import MetricsRegistry

    counts = state.counts()
    registry = MetricsRegistry()
    registry.counter(
        "live_snapshots_total",
        "snapshots applied to the live state").default.inc(
            counts["snapshots"])
    registry.gauge(
        "live_trials_running",
        "trials currently publishing").default.set(counts["running"])
    registry.gauge(
        "live_trials_done",
        "trials finished cleanly").default.set(counts["done"])
    registry.gauge(
        "live_trials_quarantined",
        "trials quarantined by the runner").default.set(
            counts["quarantined"])
    return registry.to_prometheus()


def render_metrics(state: LiveState,
                   watchdog: Optional[Watchdog] = None) -> str:
    """The full ``/metrics`` body."""
    text = state.merged_registry().to_prometheus()
    text += render_live_families(state)
    if watchdog is not None:
        text += watchdog.to_prometheus()
    return text


class _Handler(BaseHTTPRequestHandler):
    """Routes against the server's bound state/watchdog."""

    server_version = "repro-live/1"

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        try:
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # scraper went away mid-write; nothing to clean up

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        state: LiveState = self.server.live_state  # type: ignore[attr-defined]
        watchdog: Optional[Watchdog] = \
            self.server.live_watchdog  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._send(200, "text/plain; version=0.0.4; charset=utf-8",
                       render_metrics(state, watchdog))
        elif path == "/healthz":
            if watchdog is None:
                body = {"status": "ok", "degraded_checks": [],
                        "checks": {}}
                healthy = True
            else:
                body = watchdog.health()
                healthy = body["status"] == "ok"
            self._send(200 if healthy else 503, "application/json",
                       json.dumps(body, sort_keys=True) + "\n")
        elif path == "/runs":
            self._send(200, "application/json",
                       json.dumps(state.runs_document(), sort_keys=True)
                       + "\n")
        elif path == "/":
            self._send(200, "text/plain; charset=utf-8",
                       "repro live telemetry\n"
                       "  /metrics  Prometheus exposition\n"
                       "  /healthz  watchdog verdict (503 = degraded)\n"
                       "  /runs     run/trial status JSON\n")
        else:
            self._send(404, "text/plain; charset=utf-8",
                       f"no such endpoint: {path}\n")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes are not worth stderr lines on the run console


class LiveServer:
    """Owns the listener socket and its serve thread."""

    def __init__(self, state: LiveState,
                 watchdog: Optional[Watchdog] = None,
                 host: str = "127.0.0.1", port: int = DEFAULT_PORT) -> None:
        self.state = state
        self.watchdog = watchdog
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def bound_port(self) -> int:
        """The actual port (meaningful after start(); port 0 binds
        an ephemeral one)."""
        if self._httpd is None:
            return self.port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.bound_port}"

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._httpd is not None:
            return self.bound_port
        httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        httpd.daemon_threads = True
        httpd.live_state = self.state  # type: ignore[attr-defined]
        httpd.live_watchdog = self.watchdog  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(target=httpd.serve_forever,
                                        name="repro-live-http",
                                        daemon=True)
        self._thread.start()
        return self.bound_port

    def stop(self) -> None:
        """Shut the listener down (idempotent)."""
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
