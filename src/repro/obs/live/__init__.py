"""Live telemetry plane: snapshot bus, HTTP endpoints, watchdog, flight.

Four cooperating pieces turn the post-hoc ``repro.obs`` artifacts into
a streaming observability plane without touching the determinism or
zero-cost-when-off contracts:

* :mod:`repro.obs.live.bus` — trial workers publish immutable
  :class:`~repro.obs.live.bus.Snapshot` progress reports over a
  process-safe channel; a drainer thread folds them into a merged
  :class:`~repro.obs.live.bus.LiveState`;
* :mod:`repro.obs.live.server` — a stdlib ``ThreadingHTTPServer``
  exposing ``/metrics`` (Prometheus 0.0.4), ``/healthz``, ``/runs``;
* :mod:`repro.obs.live.watchdog` — snapshot streams folded into four
  health checks (stalled trial, drop storm, overhead-budget breach,
  quarantine spike);
* :mod:`repro.obs.live.flight` — a bounded ring of the recent trace
  past, dumped on quarantine, watchdog trips, and crashes.

The CLI arms all four with ``--live [PORT]``; watch a run with
``python -m repro.obs.top``.  See ``docs/observability.md`` ("Live
telemetry plane") for the snapshot schema and the overhead contract.
"""

from repro.obs.live.bus import (
    DEFAULT_PUBLISH_INTERVAL_S,
    LivePublisher,
    LiveState,
    Snapshot,
    SnapshotBus,
)
from repro.obs.live.flight import DEFAULT_RING_CAPACITY, FlightRecorder
from repro.obs.live.server import DEFAULT_PORT, LiveServer, render_metrics
from repro.obs.live.watchdog import CHECKS, Watchdog, WatchdogConfig

__all__ = [
    "DEFAULT_PUBLISH_INTERVAL_S",
    "LivePublisher",
    "LiveState",
    "Snapshot",
    "SnapshotBus",
    "DEFAULT_RING_CAPACITY",
    "FlightRecorder",
    "DEFAULT_PORT",
    "LiveServer",
    "render_metrics",
    "CHECKS",
    "Watchdog",
    "WatchdogConfig",
]
