"""The snapshot bus: streaming progress out of running trials.

Everything ``repro.obs`` records is exported *after* a run; this module
is the live half.  Trial workers — the in-process serial loop and the
``jobs=N`` fork-pool workers alike — periodically publish immutable,
picklable :class:`Snapshot` objects describing their progress (trial
index, simulated time, sample/drop/fault counts, degradation-ladder
level, and the trial's full metrics document) onto a process-safe
channel; a drainer thread in the parent folds them into a
:class:`LiveState` that the HTTP plane (:mod:`repro.obs.live.server`)
and the watchdog (:mod:`repro.obs.live.watchdog`) read.

The contract that keeps live telemetry honest:

* **Publication never steers.**  A snapshot is a *read-only copy* of
  already-computed values; building one draws no randomness and
  mutates no simulation state, so golden digests are byte-identical
  with the bus armed or not.  Publication *cadence* is wall-clock
  driven (and therefore nondeterministic) — which is fine precisely
  because snapshots are copies: a missed heartbeat changes what an
  observer sees mid-run, never what the run computes.
* **Finals are unconditional.**  Every trial publishes a last snapshot
  at its terminal status (``done``/``quarantined``) regardless of
  cadence, so the merged view converges: folding each trial's latest
  metrics document in trial order equals the post-hoc registry —
  pinned by a Hypothesis property over arbitrary cadences.
* **One channel for every topology.**  Serial trials and fork-pool
  workers publish through the same ``multiprocessing`` queue (workers
  inherit it by fork); the parent's drainer thread is the only
  consumer, so ``LiveState`` needs one lock and no cross-process
  shared memory.
"""

from __future__ import annotations

import multiprocessing
import queue as _queue_mod
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

#: Default seconds between heartbeat publications from one trial.
DEFAULT_PUBLISH_INTERVAL_S = 0.25

#: Heartbeat calls between wall-clock checks: the hot hooks call
#: :meth:`LivePublisher.heartbeat` thousands of times per host second,
#: and one ``time.monotonic()`` per call would be the dominant cost of
#: an armed-but-idle bus.  Striding keeps the disarmed-path cost to a
#: counter increment and a mask.
_HEARTBEAT_STRIDE = 32


@dataclass(frozen=True)
class Snapshot:
    """One immutable, picklable progress report from one trial.

    ``metrics`` is the trial recorder's full
    :meth:`~repro.obs.metrics.MetricsRegistry.to_json` document —
    cumulative, not a delta — so the merged live view is simply the
    trial-ordered fold of each trial's *latest* snapshot, and a lost
    heartbeat costs staleness, never correctness.
    """

    trial: int
    seq: int
    status: str  # "running" | "done" | "quarantined"
    sim_now_ns: int
    wall_s: float
    samples: int
    drops: int
    timer_fires: int
    faults: int
    level: int
    overhead_percent: Optional[float]
    budget_percent: Optional[float]
    metrics: Dict[str, object]


_TERMINAL = ("done", "quarantined")


class LiveState:
    """The parent-side merged view of every trial's latest snapshot.

    Thread-safe: the bus drainer writes, HTTP handler threads read.
    Seeded with a *base* metrics document (the parent recorder's
    pre-registered, all-zero registry) so ``/metrics`` exposes every
    family from the first scrape, before any snapshot has arrived.
    """

    def __init__(self, base_metrics: Optional[Dict[str, object]] = None,
                 run_label: str = "") -> None:
        self._lock = threading.Lock()
        self._base = base_metrics
        self._trials: Dict[int, Dict[str, object]] = {}
        self._trial_metrics: Dict[int, Dict[str, object]] = {}
        self.run_label = run_label
        self.started_wall_s = time.time()
        self.snapshots_applied = 0
        self._listeners: List[Callable[[Snapshot], None]] = []

    def add_listener(self, listener: Callable[[Snapshot], None]) -> None:
        """Register a callback run (under the state lock) per snapshot."""
        self._listeners.append(listener)

    def apply(self, snapshot: Snapshot) -> None:
        """Fold one snapshot in; notify listeners (the watchdog)."""
        with self._lock:
            self.snapshots_applied += 1
            self._trials[snapshot.trial] = {
                "trial": snapshot.trial,
                "status": snapshot.status,
                "seq": snapshot.seq,
                "sim_now_ns": snapshot.sim_now_ns,
                "samples": snapshot.samples,
                "drops": snapshot.drops,
                "timer_fires": snapshot.timer_fires,
                "faults": snapshot.faults,
                "level": snapshot.level,
                "overhead_percent": snapshot.overhead_percent,
                "budget_percent": snapshot.budget_percent,
                "published_wall_s": snapshot.wall_s,
                "updated_wall_s": time.time(),
            }
            self._trial_metrics[snapshot.trial] = snapshot.metrics
            for listener in self._listeners:
                listener(snapshot)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def trial_rows(self) -> List[Dict[str, object]]:
        """Per-trial status rows, in trial order (copies)."""
        with self._lock:
            return [dict(self._trials[trial])
                    for trial in sorted(self._trials)]

    def counts(self) -> Dict[str, int]:
        """Trial counts by status plus total snapshots applied."""
        with self._lock:
            rows = list(self._trials.values())
            return {
                "running": sum(1 for row in rows
                               if row["status"] not in _TERMINAL),
                "done": sum(1 for row in rows if row["status"] == "done"),
                "quarantined": sum(1 for row in rows
                                   if row["status"] == "quarantined"),
                "snapshots": self.snapshots_applied,
            }

    def merged_registry(self) -> MetricsRegistry:
        """Trial-ordered fold of each trial's latest metrics document.

        With every trial's final snapshot applied this equals the
        post-hoc parent registry (same fold, same order) — the bridge
        that lets ``/metrics`` reuse the existing Prometheus exporter
        unchanged.
        """
        with self._lock:
            base = self._base
            documents = [self._trial_metrics[trial]
                         for trial in sorted(self._trial_metrics)]
        registry = (MetricsRegistry.from_json(base) if base else
                    MetricsRegistry())
        for document in documents:
            if document:  # tolerate metrics-less snapshots
                registry.merge(MetricsRegistry.from_json(document))
        return registry

    def runs_document(self) -> Dict[str, object]:
        """The ``/runs`` JSON body: run header plus per-trial rows."""
        counts = self.counts()
        return {
            "run": {
                "label": self.run_label,
                "started_wall_s": self.started_wall_s,
                "uptime_s": time.time() - self.started_wall_s,
                "trials_seen": counts["running"] + counts["done"]
                + counts["quarantined"],
                **counts,
            },
            "trials": self.trial_rows(),
        }


class SnapshotBus:
    """The process-safe channel between trial workers and the parent.

    Built on a fork-context ``multiprocessing.SimpleQueue`` so pool
    workers inherit the write end at fork time with no extra plumbing
    (put is lock-protected on POSIX, so concurrent workers are safe);
    falls back to an in-process queue where ``fork`` is unavailable —
    exactly the environments where the runner cannot fan out anyway.
    Start the drainer before publishing; stop() is idempotent.
    """

    def __init__(self, state: Optional[LiveState] = None) -> None:
        self.state = state if state is not None else LiveState()
        if "fork" in multiprocessing.get_all_start_methods():
            self._queue = multiprocessing.get_context("fork").SimpleQueue()
        else:  # pragma: no cover - non-fork platforms
            self._queue = _queue_mod.SimpleQueue()
        self._thread: Optional[threading.Thread] = None
        self._sync_lock = threading.Lock()
        self._sync_cond = threading.Condition(self._sync_lock)
        self._sync_sent = 0
        self._sync_seen = 0
        self.published = 0

    # ------------------------------------------------------------------
    # Write side (any process)
    # ------------------------------------------------------------------
    def publish(self, snapshot: Snapshot) -> None:
        self.published += 1
        self._queue.put(snapshot)

    # ------------------------------------------------------------------
    # Parent side
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the drainer thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._drain,
                                        name="repro-live-bus", daemon=True)
        self._thread.start()

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            if isinstance(item, tuple) and item and item[0] == "sync":
                with self._sync_cond:
                    self._sync_seen = max(self._sync_seen, item[1])
                    self._sync_cond.notify_all()
                continue
            self.state.apply(item)

    def flush(self, timeout_s: float = 10.0) -> bool:
        """Block until everything published *before* this call is
        applied to the state (a sync marker round-trip).  Returns False
        on timeout or when the drainer is not running."""
        if self._thread is None or not self._thread.is_alive():
            return False
        with self._sync_cond:
            self._sync_sent += 1
            token = self._sync_sent
        self._queue.put(("sync", token))
        deadline = time.monotonic() + timeout_s
        with self._sync_cond:
            while self._sync_seen < token:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._sync_cond.wait(remaining)
        return True

    def stop(self) -> None:
        """Drain outstanding snapshots, then stop the drainer thread."""
        thread = self._thread
        if thread is None:
            return
        self.flush()
        self._queue.put(None)
        thread.join(timeout=5.0)
        self._thread = None


class LivePublisher:
    """The trial-side publisher: builds snapshots from a bound recorder.

    One publisher per trial recorder (cloned via :meth:`for_trial` by
    ``Recorder.child_for_trial``, so fork-pool workers inherit a
    correctly-stamped instance).  The hot hooks call
    :meth:`heartbeat`, which is strided and wall-clock gated; terminal
    statuses go through :meth:`publish`, which is unconditional.

    ``gate`` replaces the wall-clock cadence with a deterministic
    callable (publish when it returns True) — the handle the cadence
    Hypothesis property drives.
    """

    def __init__(self, bus: SnapshotBus,
                 interval_s: float = DEFAULT_PUBLISH_INTERVAL_S,
                 trial: int = 0,
                 gate: Optional[Callable[[], bool]] = None) -> None:
        self.bus = bus
        self.interval_s = interval_s
        self.trial = trial
        self.gate = gate
        self._recorder = None
        self._calls = 0
        self._seq = 0
        self._last_publish = 0.0
        # Live fields the recorder's control hooks keep fresh.
        self.level = 0
        self.overhead_percent: Optional[float] = None
        self.budget_percent: Optional[float] = None

    def bind(self, recorder) -> None:
        """Attach the recorder whose registry snapshots are built from."""
        self._recorder = recorder

    def for_trial(self, trial: int) -> "LivePublisher":
        """A fresh publisher for one trial's child recorder."""
        return LivePublisher(self.bus, interval_s=self.interval_s,
                             trial=trial, gate=self.gate)

    def heartbeat(self, sim_now_ns: int) -> None:
        """Cadence-gated publication from a hot hook site."""
        if self.gate is not None:
            if self.gate():
                self.publish(sim_now_ns, "running")
            return
        self._calls += 1
        if self._calls % _HEARTBEAT_STRIDE:
            return
        now = time.monotonic()
        if now - self._last_publish < self.interval_s:
            return
        self._last_publish = now
        self.publish(sim_now_ns, "running")

    def publish(self, sim_now_ns: int, status: str = "running") -> None:
        """Unconditionally build and publish one snapshot."""
        recorder = self._recorder
        if recorder is None:
            return
        sample = recorder.live_sample()
        self._seq += 1
        self.bus.publish(Snapshot(
            trial=self.trial,
            seq=self._seq,
            status=status,
            sim_now_ns=int(sim_now_ns),
            wall_s=time.time(),
            level=self.level,
            overhead_percent=self.overhead_percent,
            budget_percent=self.budget_percent,
            metrics=recorder.registry.to_json(),
            **sample,
        ))
