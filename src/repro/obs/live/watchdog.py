"""Run-health watchdog: snapshot streams in, health states out.

The watchdog is a pure consumer of the snapshot bus — it subscribes to
:class:`~repro.obs.live.bus.LiveState` and turns per-trial snapshot
deltas into four health checks:

* **stalled-trial** — a running trial whose simulated time and sample
  count are unchanged across ``stall_intervals`` consecutive
  publications (a hung worker, a deadlocked drain loop);
* **drop-storm** — a trial shedding ``storm_drops`` or more ring-buffer
  samples per publication interval for ``storm_intervals`` in a row,
  with hysteresis: the episode only clears after ``calm_intervals``
  quiet publications, so a storm flapping on and off inside the window
  is one episode, not a trip per gust;
* **budget-breach** — the adaptive controller's smoothed overhead above
  its own budget for ``breach_intervals`` consecutive observations.
  Terminal snapshots count too: a breach on a trial's final window
  trips even though the trial is already done;
* **quarantine-spike** — ``quarantine_spike`` or more trials
  quarantined over the run (a systemic fault, not one bad seed).

Each trip increments ``health_watchdog_trips_total{check}``, raises
``health_check_state{check}`` to 1, records a ``health:<check>``
instant into the flight-recorder ring (the deterministic trace
artifact is deliberately untouched — live health is wall-clock
territory and must never perturb pinned digests), and fires the
``on_trip`` callback (the CLI wires this to a flight dump).  Checks
clear when their condition resolves; ``/healthz`` reports 503 while
any check is tripped.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs.live.bus import Snapshot
from repro.obs.live.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry

CHECKS = ("stalled-trial", "drop-storm", "budget-breach",
          "quarantine-spike")


@dataclass(frozen=True)
class WatchdogConfig:
    """Thresholds; all counted in publication intervals."""

    #: Consecutive no-progress publications before a trial is stalled.
    stall_intervals: int = 4
    #: New drops per publication interval that count as storming.
    storm_drops: int = 50
    #: Consecutive storming publications before the check trips.
    storm_intervals: int = 2
    #: Quiet publications required to clear an active storm episode.
    calm_intervals: int = 3
    #: Consecutive over-budget observations before the check trips.
    breach_intervals: int = 2
    #: Quarantined trials over the run before the check trips.
    quarantine_spike: int = 2


class _TrialTrack:
    """Per-trial delta state the checks fold snapshots into."""

    __slots__ = ("sim_now_ns", "samples", "drops", "stall_streak",
                 "stalled", "storm_streak", "calm_streak", "storming",
                 "breach_streak", "breached")

    def __init__(self) -> None:
        self.sim_now_ns = -1
        self.samples = -1
        self.drops = 0
        self.stall_streak = 0
        self.stalled = False
        self.storm_streak = 0
        self.calm_streak = 0
        self.storming = False
        self.breach_streak = 0
        self.breached = False


class Watchdog:
    """Fold snapshots into health states; see the module docstring."""

    def __init__(self, config: Optional[WatchdogConfig] = None,
                 flight: Optional[FlightRecorder] = None,
                 on_trip: Optional[Callable[[str, str], None]] = None
                 ) -> None:
        self.config = config if config is not None else WatchdogConfig()
        self.flight = flight
        self.on_trip = on_trip
        self._lock = threading.Lock()
        self._tracks: Dict[int, _TrialTrack] = {}
        self._quarantined: set = set()
        self._details: Dict[str, str] = {check: "" for check in CHECKS}
        self.registry = MetricsRegistry()
        self._trips = self.registry.counter(
            "health_watchdog_trips_total",
            "watchdog health-check trips by check", label_names=("check",))
        self._states = self.registry.gauge(
            "health_check_state",
            "1 while the named health check is tripped, else 0",
            label_names=("check",))
        for check in CHECKS:
            # Pre-seed the series so every check exports from scrape 1.
            self._trips.labels(check)
            self._states.labels(check)

    # ------------------------------------------------------------------
    # Trip/clear plumbing
    # ------------------------------------------------------------------
    def _trip(self, check: str, detail: str, sim_now_ns: int) -> None:
        self._trips.labels(check).inc()
        self._states.labels(check).set(1.0)
        self._details[check] = detail
        if self.flight is not None:
            self.flight.instant(f"health:{check}", "live", sim_now_ns,
                                {"detail": detail}, category="health")
        if self.on_trip is not None:
            self.on_trip(check, detail)

    def _clear(self, check: str) -> None:
        self._states.labels(check).set(0.0)
        self._details[check] = ""

    def _any_track(self, predicate) -> bool:
        return any(predicate(track) for track in self._tracks.values())

    # ------------------------------------------------------------------
    # The snapshot listener
    # ------------------------------------------------------------------
    def observe(self, snapshot: Snapshot) -> None:
        """Fold one snapshot in (wired as a ``LiveState`` listener)."""
        config = self.config
        with self._lock:
            track = self._tracks.get(snapshot.trial)
            if track is None:
                track = self._tracks[snapshot.trial] = _TrialTrack()
            first = track.sim_now_ns < 0

            # -- stalled-trial ------------------------------------------
            progressed = (snapshot.sim_now_ns != track.sim_now_ns
                          or snapshot.samples != track.samples)
            if snapshot.status == "running" and not first:
                if progressed:
                    track.stall_streak = 0
                    if track.stalled:
                        track.stalled = False
                        if not self._any_track(lambda t: t.stalled):
                            self._clear("stalled-trial")
                else:
                    track.stall_streak += 1
                    if (track.stall_streak >= config.stall_intervals
                            and not track.stalled):
                        track.stalled = True
                        self._trip(
                            "stalled-trial",
                            f"trial {snapshot.trial} made no progress "
                            f"across {track.stall_streak} publications "
                            f"(sim time {snapshot.sim_now_ns} ns)",
                            snapshot.sim_now_ns)
            elif snapshot.status != "running" and track.stalled:
                # A terminal snapshot resolves the stall by definition.
                track.stalled = False
                track.stall_streak = 0
                if not self._any_track(lambda t: t.stalled):
                    self._clear("stalled-trial")

            # -- drop-storm ---------------------------------------------
            delta_drops = (snapshot.drops - track.drops if not first
                           else snapshot.drops)
            if delta_drops >= config.storm_drops:
                track.storm_streak += 1
                track.calm_streak = 0
                if (track.storm_streak >= config.storm_intervals
                        and not track.storming):
                    track.storming = True
                    self._trip(
                        "drop-storm",
                        f"trial {snapshot.trial} dropped {delta_drops} "
                        f"samples in one publication interval",
                        snapshot.sim_now_ns)
            else:
                # Hysteresis: one calm interval does not end an episode,
                # so a flapping storm cannot re-trip per gust.
                track.calm_streak += 1
                if track.calm_streak >= config.calm_intervals:
                    track.storm_streak = 0
                    if track.storming:
                        track.storming = False
                        if not self._any_track(lambda t: t.storming):
                            self._clear("drop-storm")

            # -- budget-breach ------------------------------------------
            # Evaluated for terminal snapshots too: a breach carried on
            # the final window still counts.
            overhead = snapshot.overhead_percent
            budget = snapshot.budget_percent
            if overhead is not None and budget is not None:
                if overhead > budget:
                    track.breach_streak += 1
                    if (track.breach_streak >= config.breach_intervals
                            and not track.breached):
                        track.breached = True
                        self._trip(
                            "budget-breach",
                            f"trial {snapshot.trial} overhead "
                            f"{overhead:.2f}% above budget {budget:g}% "
                            f"for {track.breach_streak} observations",
                            snapshot.sim_now_ns)
                else:
                    track.breach_streak = 0
                    if track.breached:
                        track.breached = False
                        if not self._any_track(lambda t: t.breached):
                            self._clear("budget-breach")

            # -- quarantine-spike ---------------------------------------
            if snapshot.status == "quarantined":
                self._quarantined.add(snapshot.trial)
                if (len(self._quarantined) >= config.quarantine_spike
                        and not self._details["quarantine-spike"]):
                    self._trip(
                        "quarantine-spike",
                        f"{len(self._quarantined)} trials quarantined "
                        f"(threshold {config.quarantine_spike})",
                        snapshot.sim_now_ns)

            track.sim_now_ns = snapshot.sim_now_ns
            track.samples = snapshot.samples
            track.drops = snapshot.drops

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """The ``/healthz`` body: overall status plus per-check detail."""
        with self._lock:
            checks: Dict[str, Dict[str, object]] = {}
            for check in CHECKS:
                tripped = self._states.labels(check).value > 0
                checks[check] = {
                    "state": "tripped" if tripped else "ok",
                    "trips": int(self._trips.labels(check).value),
                    "detail": self._details[check],
                }
            degraded = [check for check, entry in checks.items()
                        if entry["state"] == "tripped"]
            return {
                "status": "degraded" if degraded else "ok",
                "degraded_checks": degraded,
                "checks": checks,
            }

    def healthy(self) -> bool:
        return self.health()["status"] == "ok"

    def to_prometheus(self) -> str:
        """The ``health_*`` families as exposition text."""
        with self._lock:
            return self.registry.to_prometheus()
