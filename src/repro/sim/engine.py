"""Event queue for the discrete-event simulation.

The queue stores callbacks keyed by absolute fire time.  The kernel run
loop peeks at the next event time to bound how long the CPU may execute
uninterrupted, then dispatches every event that has come due.

Events may be cancelled; cancellation is lazy (the entry stays in the
heap but is skipped at dispatch), which keeps both operations O(log n).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError

EventCallback = Callable[[int], None]


@dataclass(order=True)
class _HeapEntry:
    when: int
    seq: int
    event: "ScheduledEvent" = field(compare=False)


class ScheduledEvent:
    """Handle to a scheduled callback; supports cancellation."""

    __slots__ = ("when", "callback", "label", "_cancelled", "_queue")

    def __init__(self, when: int, callback: EventCallback, label: str,
                 queue: Optional["EventQueue"] = None) -> None:
        self.when = when
        self.callback = callback
        self.label = label
        self._cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"ScheduledEvent({self.label!r} @ {self.when}ns, {state})"


class EventQueue:
    """Priority queue of timed callbacks.

    Ties on fire time dispatch in insertion order, which keeps the
    simulation deterministic.
    """

    def __init__(self) -> None:
        self._heap: List[_HeapEntry] = []
        self._seq = itertools.count()
        self._dispatching = False
        # Live (non-cancelled) entry count, maintained on schedule,
        # cancel, and dispatch so len() is O(1) — the run loop queries
        # it on every iteration.
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def _note_cancelled(self) -> None:
        self._live -= 1

    def schedule(self, when: int, callback: EventCallback,
                 label: str = "event") -> ScheduledEvent:
        """Register ``callback`` to fire at absolute time ``when``.

        The callback receives the scheduled fire time (which may be
        earlier than the clock if dispatch was delayed by uninterruptible
        work — analogous to interrupt latency on real hardware).
        """
        if when < 0:
            raise SimulationError(f"cannot schedule event at negative time {when}")
        event = ScheduledEvent(when, callback, label, queue=self)
        heapq.heappush(self._heap, _HeapEntry(when, next(self._seq), event))
        self._live += 1
        return event

    def peek_time(self) -> Optional[int]:
        """Fire time of the earliest pending event, or None when empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].when

    def dispatch_due(self, now: int) -> int:
        """Fire every pending event with ``when <= now``.

        Returns the number of callbacks invoked.  Callbacks may schedule
        further events, including ones that are already due; those are
        dispatched in the same call.
        """
        if self._dispatching:
            # A callback calling back into dispatch would reorder events.
            raise SimulationError("re-entrant event dispatch")
        self._dispatching = True
        fired = 0
        try:
            while self._heap and self._heap[0].when <= now:
                entry = heapq.heappop(self._heap)
                if entry.event.cancelled:
                    continue
                self._live -= 1
                entry.event.callback(entry.when)
                fired += 1
        finally:
            self._dispatching = False
        return fired

    def clear(self) -> None:
        """Drop every pending event, cancelling outstanding handles.

        Cancelling (rather than just forgetting) means holders of a
        :class:`ScheduledEvent` — e.g. an armed ``HrTimer`` — observe
        ``cancelled=True`` instead of waiting on an event that will
        never fire.
        """
        for entry in self._heap:
            entry.event.cancel()
        self._heap.clear()

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)
