"""Event queue for the discrete-event simulation.

The queue stores callbacks keyed by absolute fire time.  The kernel run
loop peeks at the next event time to bound how long the CPU may execute
uninterrupted, then dispatches every event that has come due.

Events may be cancelled; cancellation is lazy (the entry stays in the
heap but is skipped at dispatch), which keeps both operations O(log n).
Heap entries are plain ``(when, seq, event)`` tuples — comparison stays
in C and never looks at the event, and the monotonically increasing
``seq`` preserves FIFO dispatch order for events scheduled at the same
time.  Cancelled tombstones are compacted away adaptively once they
outnumber the live entries (see :meth:`EventQueue._maybe_compact`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs import hooks as _obs_hooks

EventCallback = Callable[[int], None]

# Compaction threshold: rebuilding the heap is O(n), so it only pays
# once the heap carries a meaningful number of tombstones AND they are
# the majority of entries.  Below the floor the walk-and-skip cost of
# lazy cancellation is negligible.
_COMPACT_MIN_DEAD = 64


class ScheduledEvent:
    """Handle to a scheduled callback; supports cancellation."""

    __slots__ = ("when", "callback", "label", "_cancelled", "_queue")

    def __init__(self, when: int, callback: EventCallback, label: str,
                 queue: Optional["EventQueue"] = None) -> None:
        self.when = when
        self.callback = callback
        self.label = label
        self._cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"ScheduledEvent({self.label!r} @ {self.when}ns, {state})"


class EventQueue:
    """Priority queue of timed callbacks.

    Ties on fire time dispatch in insertion order, which keeps the
    simulation deterministic.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, ScheduledEvent]] = []
        self._seq = itertools.count()
        self._dispatching = False
        # Live (non-cancelled) entry count, maintained on schedule,
        # cancel, and dispatch so len() is O(1) — the run loop queries
        # it on every iteration.
        self._live = 0
        # Cancelled entries still sitting in the heap (tombstones).
        self._dead = 0
        # Observability hook, captured once: None while disabled, so
        # every hot-path hook site costs a single identity comparison.
        self._obs = _obs_hooks.active()
        # Depth already reported to the recorder; schedule() only hooks
        # on a new high-water mark, not on every insert.
        self._obs_peak = 0

    def __len__(self) -> int:
        return self._live

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._dead += 1
        if self._obs is not None:
            self._obs.queue_event_cancelled()
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap once tombstones dominate it.

        Dropping dead entries and re-heapifying is deterministic: the
        surviving ``(when, seq)`` keys form a total order, so dispatch
        order is identical with or without the rebuild.  Skipped while
        a dispatch is walking the heap.
        """
        heap = self._heap
        if (self._dead < _COMPACT_MIN_DEAD or self._dispatching
                or self._dead * 2 <= len(heap)):
            return
        dead = self._dead
        self._heap = [entry for entry in heap if not entry[2]._cancelled]
        heapq.heapify(self._heap)
        self._dead = 0
        if self._obs is not None:
            self._obs.queue_compacted(dead, len(self._heap))

    def schedule(self, when: int, callback: EventCallback,
                 label: str = "event") -> ScheduledEvent:
        """Register ``callback`` to fire at absolute time ``when``.

        The callback receives the scheduled fire time (which may be
        earlier than the clock if dispatch was delayed by uninterruptible
        work — analogous to interrupt latency on real hardware).
        """
        if when < 0:
            raise SimulationError(f"cannot schedule event at negative time {when}")
        event = ScheduledEvent(when, callback, label, queue=self)
        heapq.heappush(self._heap, (when, next(self._seq), event))
        self._live += 1
        if self._obs is not None and self._live > self._obs_peak:
            self._obs_peak = self._live
            self._obs.queue_scheduled(self._live)
        return event

    def peek_time(self) -> Optional[int]:
        """Fire time of the earliest pending event, or None when empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if not entry[2]._cancelled:
                return entry[0]
            heapq.heappop(heap)
            self._dead -= 1
        return None

    def dispatch_due(self, now: int) -> int:
        """Fire every pending event with ``when <= now``.

        Returns the number of callbacks invoked.  Callbacks may schedule
        further events, including ones that are already due; those are
        dispatched in the same call.
        """
        if self._dispatching:
            # A callback calling back into dispatch would reorder events.
            raise SimulationError("re-entrant event dispatch")
        self._dispatching = True
        fired = 0
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap and heap[0][0] <= now:
                when, _seq, event = heappop(heap)
                if event._cancelled:
                    self._dead -= 1
                    continue
                self._live -= 1
                # Detach before firing: the entry has left the heap, so
                # a later cancel() on the handle must not touch the
                # live/tombstone counters.
                event._queue = None
                event.callback(when)
                fired += 1
        finally:
            self._dispatching = False
        if fired and self._obs is not None:
            # Batched: one hook call per dispatch, not per event.
            self._obs.queue_events_fired(fired)
        return fired

    def clear(self) -> None:
        """Drop every pending event, cancelling outstanding handles.

        Cancelling (rather than just forgetting) means holders of a
        :class:`ScheduledEvent` — e.g. an armed ``HrTimer`` — observe
        ``cancelled=True`` instead of waiting on an event that will
        never fire.
        """
        for entry in self._heap:
            entry[2].cancel()
        self._heap.clear()
        self._dead = 0

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)
            self._dead -= 1
