"""Simulated time.

All simulated time in this package is expressed as **integer
nanoseconds**.  Helper constructors (:func:`us`, :func:`ms`,
:func:`seconds`) convert human-friendly quantities and keep call sites
readable: ``hrtimer.start(period=us(100))``.
"""

from __future__ import annotations

from repro.errors import ClockError

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


def us(value: float) -> int:
    """Microseconds expressed as integer nanoseconds."""
    return int(round(value * NS_PER_US))


def ms(value: float) -> int:
    """Milliseconds expressed as integer nanoseconds."""
    return int(round(value * NS_PER_MS))


def seconds(value: float) -> int:
    """Seconds expressed as integer nanoseconds."""
    return int(round(value * NS_PER_SEC))


def format_ns(value: int) -> str:
    """Render a nanosecond quantity with a readable unit.

    >>> format_ns(2_500_000)
    '2.500ms'
    """
    if abs(value) >= NS_PER_SEC:
        return f"{value / NS_PER_SEC:.3f}s"
    if abs(value) >= NS_PER_MS:
        return f"{value / NS_PER_MS:.3f}ms"
    if abs(value) >= NS_PER_US:
        return f"{value / NS_PER_US:.3f}us"
    return f"{value}ns"


class Clock:
    """Monotonic simulated clock.

    The clock only ever moves forward.  Components read ``clock.now`` and
    the kernel run loop advances it as work is consumed or events fire.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start}")
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    def advance(self, delta: int) -> int:
        """Move time forward by ``delta`` nanoseconds and return the new time."""
        if delta < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta}")
        self._now += int(delta)
        return self._now

    def advance_to(self, when: int) -> int:
        """Move time forward to the absolute instant ``when``."""
        if when < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {when}"
            )
        self._now = int(when)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={format_ns(self._now)})"
