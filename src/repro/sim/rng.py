"""Deterministic named random-number streams.

Every source of randomness in the simulation (timer jitter, OS noise,
workload access patterns, sampling phase) draws from its own named
stream.  Streams are derived from a single experiment seed, so adding a
new consumer of randomness never perturbs the draws seen by existing
consumers — experiments stay reproducible bit-for-bit.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngStreams:
    """Factory of independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The per-stream seed mixes the experiment seed with a CRC of the
        stream name, so distinct names yield statistically independent
        streams and the same name always yields the same stream.
        """
        generator = self._streams.get(name)
        if generator is None:
            mixed = (self._seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            generator = np.random.default_rng(mixed)
            self._streams[name] = generator
        return generator

    def fork(self, salt: int) -> "RngStreams":
        """Derive an independent family of streams (e.g. per trial)."""
        return RngStreams((self._seed * 1_000_003 + salt) & 0xFFFF_FFFF_FFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"
