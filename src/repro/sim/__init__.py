"""Discrete-event simulation core.

The whole reproduction runs on integer-nanosecond simulated time.  This
package provides the clock, the event queue, and deterministic random
number streams that every other layer builds on.
"""

from repro.sim.clock import (
    Clock,
    NS_PER_US,
    NS_PER_MS,
    NS_PER_SEC,
    us,
    ms,
    seconds,
    format_ns,
)
from repro.sim.engine import EventQueue, ScheduledEvent
from repro.sim.rng import RngStreams

__all__ = [
    "Clock",
    "EventQueue",
    "ScheduledEvent",
    "RngStreams",
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_SEC",
    "us",
    "ms",
    "seconds",
    "format_ns",
]
