"""Kernel sample ring buffer with back-pressure.

K-LEB pools samples in kernel memory until the controller process is
scheduled and drains them with batched reads (§III).  If the controller
is starved and the buffer fills, a *safety mechanism* pauses collection
until space is freed — implemented here as the ``paused`` flag, which
the K-LEB module checks before pushing and clears on drain.

The buffer also supports *capacity squeezes* — a temporarily reduced
effective capacity, used by fault injection to model memory pressure on
the kernel sample pool — and keeps conservation counters
(``total_pushed``/``total_drained``/``total_cleared``/``dropped``) so
no sample can be lost untracked.

Two storage layouts share the accounting machinery:

* :class:`RingBuffer` — the generic deque of Python objects.
* :class:`ColumnarRing` — a struct-of-arrays layout for fixed-schema
  counter samples (the columnar core): one preallocated ``array('q')``
  per event column plus one for timestamps, pushed row-wise and
  drained as a :class:`ColumnBatch` of column slices, so the hot path
  never builds a per-sample dict.
"""

from __future__ import annotations

import heapq
from array import array
from collections import deque
from typing import (Deque, Generic, Iterator, List, NamedTuple, Optional,
                    Sequence, TypeVar)

from repro.errors import KernelError
from repro.obs import hooks as _obs_hooks

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """Bounded FIFO with explicit back-pressure accounting."""

    def __init__(self, capacity: int,
                 resume_threshold: Optional[int] = None) -> None:
        if capacity <= 0:
            raise KernelError("ring buffer capacity must be positive")
        self.capacity = capacity
        # Collection resumes once occupancy drops to this level.
        self.resume_threshold = (
            resume_threshold if resume_threshold is not None else capacity // 2
        )
        if not 0 <= self.resume_threshold < capacity:
            raise KernelError("resume threshold must be in [0, capacity)")
        self._squeezed_capacity: Optional[int] = None
        self.paused = False
        self.dropped = 0
        self.total_pushed = 0
        self.total_drained = 0
        self.total_cleared = 0
        self.pause_episodes = 0
        self.high_watermark = 0
        self._obs = _obs_hooks.active()
        self._init_storage()

    # -- storage hooks (overridden by ColumnarRing) --------------------
    def _init_storage(self) -> None:
        self._entries: Deque[T] = deque()

    def _occupancy(self) -> int:
        return len(self._entries)

    def _take(self, count: int):
        entries = self._entries
        return [entries.popleft() for _ in range(count)]

    def _wipe(self) -> None:
        self._entries.clear()

    # -- shared accounting ---------------------------------------------
    def __len__(self) -> int:
        return self._occupancy()

    @property
    def effective_capacity(self) -> int:
        """Nominal capacity, or the squeezed capacity while under one."""
        if self._squeezed_capacity is not None:
            return self._squeezed_capacity
        return self.capacity

    @property
    def squeezed(self) -> bool:
        return self._squeezed_capacity is not None

    @property
    def full(self) -> bool:
        return self._occupancy() >= self.effective_capacity

    @property
    def free_space(self) -> int:
        return max(0, self.effective_capacity - self._occupancy())

    def squeeze(self, capacity: int) -> None:
        """Temporarily cap effective capacity (memory pressure).

        Occupancy above the squeezed capacity is kept — the squeeze
        refuses *new* pushes (back-pressure) rather than discarding
        samples already pooled.
        """
        if capacity <= 0:
            raise KernelError(
                f"squeeze capacity must be positive, got {capacity}"
            )
        fresh = self._squeezed_capacity is None
        self._squeezed_capacity = min(int(capacity), self.capacity)
        if fresh and self._obs is not None:
            self._obs.buffer_squeezed(self._squeezed_capacity)

    def unsqueeze(self) -> None:
        """Restore nominal capacity.  Idempotent."""
        self._squeezed_capacity = None

    def _admit(self) -> bool:
        """Back-pressure gate shared by every push flavour."""
        if self.paused or self.full:
            if not self.paused:
                self.paused = True
                self.pause_episodes += 1
                if self._obs is not None:
                    self._obs.buffer_paused()
            self.dropped += 1
            if self._obs is not None:
                self._obs.buffer_dropped()
            return False
        return True

    def _committed(self) -> None:
        """Post-push accounting shared by every push flavour."""
        self.total_pushed += 1
        size = self._occupancy()
        if size > self.high_watermark:
            self.high_watermark = size
        if self._obs is not None:
            self._obs.buffer_pushed(size)
        if self.full:
            self.paused = True
            self.pause_episodes += 1
            if self._obs is not None:
                self._obs.buffer_paused()

    def push(self, item: T) -> bool:
        """Append a sample; returns False (and pauses) when full.

        While paused, pushes are refused and counted as dropped — the
        module is expected to stop producing until :meth:`drain` frees
        space below the resume threshold.
        """
        if not self._admit():
            return False
        self._entries.append(item)
        self._committed()
        return True

    def drain(self, max_items: Optional[int] = None):
        """Remove and return up to ``max_items`` samples (all by default).

        Raises :class:`KernelError` for a negative ``max_items`` — a
        silent empty batch would mask a caller bug as starvation.
        Returns a list for the generic buffer and a
        :class:`ColumnBatch` for :class:`ColumnarRing`.
        """
        if max_items is not None and max_items < 0:
            raise KernelError(
                f"drain max_items must be non-negative, got {max_items}"
            )
        size = self._occupancy()
        count = size if max_items is None else min(max_items, size)
        drained = self._take(count)
        self.total_drained += count
        if self.paused and self._occupancy() <= self.resume_threshold:
            self.paused = False
            if self._obs is not None:
                self._obs.buffer_resumed()
        return drained

    def take_high_watermark(self) -> int:
        """Peak occupancy since the last call; resets to current fill.

        The adaptive controller reads this once per drain cycle as its
        buffer-pressure signal — peak-between-reads, not instantaneous
        fill, since the drain itself empties the buffer.
        """
        peak = self.high_watermark
        self.high_watermark = self._occupancy()
        return peak

    def clear(self) -> None:
        """Drop everything and resume collection."""
        self.total_cleared += self._occupancy()
        self._wipe()
        if self.paused and self._obs is not None:
            self._obs.buffer_resumed()
        self.paused = False


class SampleRow(NamedTuple):
    """One materialized row of a :class:`ColumnBatch` — duck-compatible
    with :class:`repro.tools.base.Sample` (timestamp + values dict)."""

    timestamp: int
    values: dict


class ColumnBatch:
    """One drained batch in struct-of-arrays form.

    ``timestamps`` and each entry of ``columns`` (aligned with
    ``names``) are independent ``array('q')`` copies of the drained
    window — one bulk slice copy per column, no per-sample object or
    dict.  True aliasing views are deliberately *not* handed out: the
    ring reuses drained slots for subsequent pushes, so a view would
    observe future samples.
    """

    __slots__ = ("names", "timestamps", "columns")

    def __init__(self, names: Sequence[str], timestamps: array,
                 columns: List[array]) -> None:
        self.names = tuple(names)
        self.timestamps = timestamps
        self.columns = columns

    def __len__(self) -> int:
        return len(self.timestamps)

    def column(self, name: str):
        """The values of one event column (KeyError for unknown names)."""
        try:
            return self.columns[self.names.index(name)]
        except ValueError:
            raise KeyError(name) from None

    def __iter__(self) -> Iterator[SampleRow]:
        """Iterate sample-shaped rows (compat/debugging; the hot paths
        consume the columns directly)."""
        names = self.names
        for row, timestamp in enumerate(self.timestamps):
            yield SampleRow(timestamp, {name: column[row]
                                        for name, column
                                        in zip(names, self.columns)})


class ColumnarRing(RingBuffer):
    """Struct-of-arrays ring for fixed-schema counter samples.

    ``names`` fixes the event-column schema at allocation time (the
    K-LEB module knows its programmed layout before collection
    starts).  :meth:`push_row` appends one sample into the preallocated
    typed columns; :meth:`drain` returns a :class:`ColumnBatch`.  All
    back-pressure, squeeze, and conservation semantics are inherited
    unchanged from :class:`RingBuffer`.
    """

    def __init__(self, capacity: int, names: Sequence[str],
                 resume_threshold: Optional[int] = None) -> None:
        self.names = tuple(names)
        if len(set(self.names)) != len(self.names):
            raise KernelError("columnar ring event names must be unique")
        super().__init__(capacity, resume_threshold)

    # -- storage hooks --------------------------------------------------
    def _init_storage(self) -> None:
        zeros = array("q", bytes(8 * self.capacity))
        self._timestamps = array("q", zeros)
        self._columns = [array("q", zeros) for _ in self.names]
        self._head = 0
        self._size = 0

    def _occupancy(self) -> int:
        return self._size

    def _segments(self, count: int):
        """(start, stop) index pairs covering the oldest ``count`` rows."""
        head = self._head
        capacity = self.capacity
        first = min(count, capacity - head)
        if first == count:
            return ((head, head + count),)
        return ((head, capacity), (0, count - first))

    def _take(self, count: int) -> ColumnBatch:
        segments = self._segments(count)
        if len(segments) == 1:
            start, stop = segments[0]
            timestamps = self._timestamps[start:stop]
            columns = [column[start:stop] for column in self._columns]
        else:
            (s0, e0), (s1, e1) = segments
            timestamps = self._timestamps[s0:e0] + self._timestamps[s1:e1]
            columns = [column[s0:e0] + column[s1:e1]
                       for column in self._columns]
        self._head = (self._head + count) % self.capacity
        self._size -= count
        return ColumnBatch(self.names, timestamps, columns)

    def _wipe(self) -> None:
        self._head = 0
        self._size = 0

    # -- row push (the module's interrupt-handler hot path) -------------
    def push_row(self, timestamp: int, values: Sequence[int]) -> bool:
        """Append one sample given column-ordered values."""
        if not self._admit():
            return False
        slot = (self._head + self._size) % self.capacity
        self._timestamps[slot] = timestamp
        columns = self._columns
        for index, value in enumerate(values):
            columns[index][slot] = value
        self._size += 1
        self._committed()
        return True

    def push(self, item) -> bool:
        """Dict-sample compatibility push (tests, non-hot callers)."""
        return self.push_row(
            item.timestamp, [item.values.get(name, 0) for name in self.names]
        )

    def peek_timestamp(self, index: int) -> int:
        """Timestamp of the ``index``-th oldest pending row (no removal).

        Used by :class:`PerCpuRing` to plan its merging drain without
        disturbing per-ring accounting.
        """
        if not 0 <= index < self._size:
            raise KernelError(
                f"peek index {index} out of range for occupancy {self._size}"
            )
        return self._timestamps[(self._head + index) % self.capacity]


class PerCpuRing:
    """One :class:`ColumnarRing` per CPU with a merging drain.

    This mirrors the per-CPU buffer design perf uses on real SMP
    kernels: each core's interrupt handler writes into a private ring
    (no cross-core synchronization on the push path), and the reader
    merges the per-CPU streams back into one timestamp-ordered stream.

    Merge semantics: the drain repeatedly takes the ring whose *oldest*
    pending row has the smallest ``(timestamp, cpu)`` key — per-CPU FIFO
    order is preserved by construction (a ring's rows are only ever
    consumed oldest-first) and ties are broken by cpu index.  The merged
    :class:`ColumnBatch` carries an extra trailing ``cpu`` column.

    Accounting (pause/drop/pushed/drained/cleared/high-watermark) lives
    in the per-CPU rings, exactly as on real hardware where each CPU's
    buffer back-pressures independently; the aggregate properties below
    expose sums (and ``paused`` as *any ring paused*) so the K-LEB
    controller's pressure signals work unchanged.
    """

    def __init__(self, capacity_per_cpu: int, names: Sequence[str],
                 cpus: int,
                 resume_threshold: Optional[int] = None) -> None:
        if cpus <= 0:
            raise KernelError(
                f"per-cpu ring needs at least one cpu, got {cpus}"
            )
        if "cpu" in names:
            raise KernelError(
                "'cpu' is a reserved column name in a per-cpu ring"
            )
        self.cpus = cpus
        self.capacity_per_cpu = capacity_per_cpu
        self.names = tuple(names) + ("cpu",)
        self.rings = [ColumnarRing(capacity_per_cpu, names, resume_threshold)
                      for _ in range(cpus)]

    # -- aggregate accounting (controller-compatible surface) -----------
    def __len__(self) -> int:
        return sum(len(ring) for ring in self.rings)

    @property
    def capacity(self) -> int:
        return sum(ring.capacity for ring in self.rings)

    @property
    def effective_capacity(self) -> int:
        return sum(ring.effective_capacity for ring in self.rings)

    @property
    def paused(self) -> bool:
        return any(ring.paused for ring in self.rings)

    @property
    def full(self) -> bool:
        return all(ring.full for ring in self.rings)

    @property
    def dropped(self) -> int:
        return sum(ring.dropped for ring in self.rings)

    @property
    def total_pushed(self) -> int:
        return sum(ring.total_pushed for ring in self.rings)

    @property
    def total_drained(self) -> int:
        return sum(ring.total_drained for ring in self.rings)

    @property
    def total_cleared(self) -> int:
        return sum(ring.total_cleared for ring in self.rings)

    @property
    def pause_episodes(self) -> int:
        return sum(ring.pause_episodes for ring in self.rings)

    @property
    def high_watermark(self) -> int:
        return sum(ring.high_watermark for ring in self.rings)

    def take_high_watermark(self) -> int:
        """Sum of per-ring peaks since the last call (each ring resets
        to its current fill, matching :meth:`RingBuffer.take_high_watermark`)."""
        return sum(ring.take_high_watermark() for ring in self.rings)

    def squeeze(self, capacity: int) -> None:
        """Squeeze every per-CPU ring to an equal share of ``capacity``
        (at least one slot each)."""
        if capacity <= 0:
            raise KernelError(
                f"squeeze capacity must be positive, got {capacity}"
            )
        share = max(1, capacity // self.cpus)
        for ring in self.rings:
            ring.squeeze(share)

    def unsqueeze(self) -> None:
        for ring in self.rings:
            ring.unsqueeze()

    @property
    def squeezed(self) -> bool:
        return any(ring.squeezed for ring in self.rings)

    def clear(self) -> None:
        for ring in self.rings:
            ring.clear()

    # -- per-cpu push (each core's interrupt-handler hot path) ----------
    def push_row(self, cpu: int, timestamp: int,
                 values: Sequence[int]) -> bool:
        """Append one sample into ``cpu``'s private ring."""
        return self.rings[cpu].push_row(timestamp, values)

    # -- merging drain ---------------------------------------------------
    def drain(self, max_items: Optional[int] = None) -> ColumnBatch:
        """Merge up to ``max_items`` rows across CPUs in timestamp order.

        Two passes: first plan the interleaving by peeking each ring's
        oldest pending timestamps (k-way merge on ``(timestamp, cpu)``),
        then execute one bulk :meth:`ColumnarRing.drain` per ring so all
        per-ring accounting (resume thresholds, drained totals) is
        maintained by the rings themselves.
        """
        if max_items is not None and max_items < 0:
            raise KernelError(
                f"drain max_items must be non-negative, got {max_items}"
            )
        rings = self.rings
        pending = [len(ring) for ring in rings]
        limit = sum(pending) if max_items is None else min(max_items,
                                                          sum(pending))
        cursors = [0] * self.cpus
        heap = [(rings[cpu].peek_timestamp(0), cpu)
                for cpu in range(self.cpus) if pending[cpu]]
        heapq.heapify(heap)
        order: List[int] = []
        while heap and len(order) < limit:
            _, cpu = heapq.heappop(heap)
            order.append(cpu)
            cursors[cpu] += 1
            if cursors[cpu] < pending[cpu]:
                heapq.heappush(
                    heap, (rings[cpu].peek_timestamp(cursors[cpu]), cpu))
        batches = {cpu: rings[cpu].drain(taken)
                   for cpu, taken in enumerate(cursors) if taken}
        merged_ts = array("q")
        merged_cols = [array("q") for _ in self.names]
        value_cols = merged_cols[:-1]
        cpu_col = merged_cols[-1]
        row_of = [0] * self.cpus
        for cpu in order:
            batch = batches[cpu]
            row = row_of[cpu]
            row_of[cpu] = row + 1
            merged_ts.append(batch.timestamps[row])
            for out, col in zip(value_cols, batch.columns):
                out.append(col[row])
            cpu_col.append(cpu)
        return ColumnBatch(self.names, merged_ts, merged_cols)
