"""Kernel sample ring buffer with back-pressure.

K-LEB pools samples in kernel memory until the controller process is
scheduled and drains them with batched reads (§III).  If the controller
is starved and the buffer fills, a *safety mechanism* pauses collection
until space is freed — implemented here as the ``paused`` flag, which
the K-LEB module checks before pushing and clears on drain.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, Optional, TypeVar

from repro.errors import KernelError

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """Bounded FIFO with explicit back-pressure accounting."""

    def __init__(self, capacity: int,
                 resume_threshold: Optional[int] = None) -> None:
        if capacity <= 0:
            raise KernelError("ring buffer capacity must be positive")
        self.capacity = capacity
        # Collection resumes once occupancy drops to this level.
        self.resume_threshold = (
            resume_threshold if resume_threshold is not None else capacity // 2
        )
        if not 0 <= self.resume_threshold < capacity:
            raise KernelError("resume threshold must be in [0, capacity)")
        self._entries: Deque[T] = deque()
        self.paused = False
        self.dropped = 0
        self.total_pushed = 0
        self.pause_episodes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def free_space(self) -> int:
        return self.capacity - len(self._entries)

    def push(self, item: T) -> bool:
        """Append a sample; returns False (and pauses) when full.

        While paused, pushes are refused and counted as dropped — the
        module is expected to stop producing until :meth:`drain` frees
        space below the resume threshold.
        """
        if self.paused or self.full:
            if not self.paused:
                self.paused = True
                self.pause_episodes += 1
            self.dropped += 1
            return False
        self._entries.append(item)
        self.total_pushed += 1
        if self.full:
            self.paused = True
            self.pause_episodes += 1
        return True

    def drain(self, max_items: Optional[int] = None) -> List[T]:
        """Remove and return up to ``max_items`` samples (all by default)."""
        count = len(self._entries) if max_items is None else min(
            max_items, len(self._entries)
        )
        drained = [self._entries.popleft() for _ in range(count)]
        if self.paused and len(self._entries) <= self.resume_threshold:
            self.paused = False
        return drained

    def clear(self) -> None:
        """Drop everything and resume collection."""
        self._entries.clear()
        self.paused = False
