"""Kernel sample ring buffer with back-pressure.

K-LEB pools samples in kernel memory until the controller process is
scheduled and drains them with batched reads (§III).  If the controller
is starved and the buffer fills, a *safety mechanism* pauses collection
until space is freed — implemented here as the ``paused`` flag, which
the K-LEB module checks before pushing and clears on drain.

The buffer also supports *capacity squeezes* — a temporarily reduced
effective capacity, used by fault injection to model memory pressure on
the kernel sample pool — and keeps conservation counters
(``total_pushed``/``total_drained``/``total_cleared``/``dropped``) so
no sample can be lost untracked.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, Optional, TypeVar

from repro.errors import KernelError
from repro.obs import hooks as _obs_hooks

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """Bounded FIFO with explicit back-pressure accounting."""

    def __init__(self, capacity: int,
                 resume_threshold: Optional[int] = None) -> None:
        if capacity <= 0:
            raise KernelError("ring buffer capacity must be positive")
        self.capacity = capacity
        # Collection resumes once occupancy drops to this level.
        self.resume_threshold = (
            resume_threshold if resume_threshold is not None else capacity // 2
        )
        if not 0 <= self.resume_threshold < capacity:
            raise KernelError("resume threshold must be in [0, capacity)")
        self._entries: Deque[T] = deque()
        self._squeezed_capacity: Optional[int] = None
        self.paused = False
        self.dropped = 0
        self.total_pushed = 0
        self.total_drained = 0
        self.total_cleared = 0
        self.pause_episodes = 0
        self.high_watermark = 0
        self._obs = _obs_hooks.active()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def effective_capacity(self) -> int:
        """Nominal capacity, or the squeezed capacity while under one."""
        if self._squeezed_capacity is not None:
            return self._squeezed_capacity
        return self.capacity

    @property
    def squeezed(self) -> bool:
        return self._squeezed_capacity is not None

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.effective_capacity

    @property
    def free_space(self) -> int:
        return max(0, self.effective_capacity - len(self._entries))

    def squeeze(self, capacity: int) -> None:
        """Temporarily cap effective capacity (memory pressure).

        Occupancy above the squeezed capacity is kept — the squeeze
        refuses *new* pushes (back-pressure) rather than discarding
        samples already pooled.
        """
        if capacity <= 0:
            raise KernelError(
                f"squeeze capacity must be positive, got {capacity}"
            )
        fresh = self._squeezed_capacity is None
        self._squeezed_capacity = min(int(capacity), self.capacity)
        if fresh and self._obs is not None:
            self._obs.buffer_squeezed(self._squeezed_capacity)

    def unsqueeze(self) -> None:
        """Restore nominal capacity.  Idempotent."""
        self._squeezed_capacity = None

    def push(self, item: T) -> bool:
        """Append a sample; returns False (and pauses) when full.

        While paused, pushes are refused and counted as dropped — the
        module is expected to stop producing until :meth:`drain` frees
        space below the resume threshold.
        """
        obs = self._obs
        if self.paused or self.full:
            if not self.paused:
                self.paused = True
                self.pause_episodes += 1
                if obs is not None:
                    obs.buffer_paused()
            self.dropped += 1
            if obs is not None:
                obs.buffer_dropped()
            return False
        self._entries.append(item)
        self.total_pushed += 1
        if len(self._entries) > self.high_watermark:
            self.high_watermark = len(self._entries)
        if obs is not None:
            obs.buffer_pushed(len(self._entries))
        if self.full:
            self.paused = True
            self.pause_episodes += 1
            if obs is not None:
                obs.buffer_paused()
        return True

    def drain(self, max_items: Optional[int] = None) -> List[T]:
        """Remove and return up to ``max_items`` samples (all by default).

        Raises :class:`KernelError` for a negative ``max_items`` — a
        silent empty batch would mask a caller bug as starvation.
        """
        if max_items is not None and max_items < 0:
            raise KernelError(
                f"drain max_items must be non-negative, got {max_items}"
            )
        count = len(self._entries) if max_items is None else min(
            max_items, len(self._entries)
        )
        drained = [self._entries.popleft() for _ in range(count)]
        self.total_drained += count
        if self.paused and len(self._entries) <= self.resume_threshold:
            self.paused = False
            if self._obs is not None:
                self._obs.buffer_resumed()
        return drained

    def take_high_watermark(self) -> int:
        """Peak occupancy since the last call; resets to current fill.

        The adaptive controller reads this once per drain cycle as its
        buffer-pressure signal — peak-between-reads, not instantaneous
        fill, since the drain itself empties the buffer.
        """
        peak = self.high_watermark
        self.high_watermark = len(self._entries)
        return peak

    def clear(self) -> None:
        """Drop everything and resume collection."""
        self.total_cleared += len(self._entries)
        self._entries.clear()
        if self.paused and self._obs is not None:
            self._obs.buffer_resumed()
        self.paused = False
