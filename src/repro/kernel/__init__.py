"""Simulated operating-system kernel.

Provides the substrate K-LEB runs on: a time-sharing scheduler with
context-switch probe points (kprobes), a high-resolution kernel timer
(HRTimer) with jitter, a jiffy-resolution user-space timer (the 10 ms
floor the paper attributes to perf), a loadable-module API with
``ioctl``, a syscall layer with an explicit cost model, and process
lifecycle tracking (PID/PPID/children — what K-LEB uses to trace a
multi-process application).
"""

from repro.kernel.config import KernelConfig, SyscallCosts
from repro.kernel.process import Task, TaskState
from repro.kernel.kprobes import KprobeManager, ProbePoint
from repro.kernel.scheduler import Scheduler
from repro.kernel.hrtimer import HrTimer
from repro.kernel.ringbuffer import RingBuffer
from repro.kernel.module import KernelModule
from repro.kernel.kernel import Kernel

__all__ = [
    "KernelConfig",
    "SyscallCosts",
    "Task",
    "TaskState",
    "KprobeManager",
    "ProbePoint",
    "Scheduler",
    "HrTimer",
    "RingBuffer",
    "KernelModule",
    "Kernel",
]
