"""Loadable kernel module framework.

K-LEB's deployment story (§I, §III): it is a *module*, so it can be
loaded into an already-running kernel — unlike LiMiT, which requires a
kernel patch and a reboot.  Modules get lifecycle callbacks and an
``ioctl`` entry point the user-space controller talks through.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import ModuleError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel


class KernelModule:
    """Base class for loadable modules."""

    name = "module"

    def __init__(self) -> None:
        self._kernel: Optional["Kernel"] = None

    @property
    def loaded(self) -> bool:
        return self._kernel is not None

    @property
    def kernel(self) -> "Kernel":
        if self._kernel is None:
            raise ModuleError(f"module {self.name!r} is not loaded")
        return self._kernel

    # -- lifecycle ------------------------------------------------------
    def on_load(self, kernel: "Kernel") -> None:
        """Called by the kernel at insmod time.  Override to set up."""

    def on_unload(self) -> None:
        """Called at rmmod time.  Override to release resources."""

    # -- user-space interface -------------------------------------------
    def ioctl(self, command: str, argument: object = None) -> object:
        """Handle a controller request.  Override in subclasses."""
        raise ModuleError(f"module {self.name!r} has no ioctl {command!r}")

    def read(self, max_items: Optional[int] = None) -> object:
        """Handle a read() from the module's device node.  Override."""
        raise ModuleError(f"module {self.name!r} does not support read")

    # -- internal hooks used by the kernel --------------------------------
    def _attach(self, kernel: "Kernel") -> None:
        if self._kernel is not None:
            raise ModuleError(f"module {self.name!r} already loaded")
        self._kernel = kernel
        self.on_load(kernel)

    def _detach(self) -> None:
        if self._kernel is None:
            raise ModuleError(f"module {self.name!r} not loaded")
        self.on_unload()
        self._kernel = None
