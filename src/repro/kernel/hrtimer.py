"""High-resolution kernel timer.

The core of K-LEB's timing advantage (§III): by moving timing into
kernel space and using an HRTimer, samples can be collected every
100 µs, 100× faster than user-space timer tools.  The model keeps an
*absolute* ideal expiry grid (like real hrtimers) so per-fire jitter
does not accumulate into drift, and adds a positive-latency jitter draw
per fire (§VI: clock jitter, context switches, and data processing
limit practical precision to roughly 100 µs periods).
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

import numpy as np

from repro.errors import TimerError
from repro.obs import hooks as _obs_hooks
from repro.sim.engine import ScheduledEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel

TimerCallback = Callable[[int], None]


class HrTimer:
    """Periodic kernel timer firing in interrupt context."""

    def __init__(self, kernel: "Kernel", callback: TimerCallback,
                 label: str = "hrtimer") -> None:
        self._kernel = kernel
        self._callback = callback
        self._label = label
        self._period_ns = 0
        self._next_ideal = 0
        self._pending: Optional[ScheduledEvent] = None
        self._rng: np.random.Generator = kernel.rng.stream(f"hrtimer:{label}")
        self.fires = 0
        self.missed = 0
        self._obs = _obs_hooks.active()

    @property
    def active(self) -> bool:
        return self._pending is not None

    @property
    def period_ns(self) -> int:
        return self._period_ns

    def start(self, period_ns: int) -> None:
        """Arm the timer with the given period, first fire one period out."""
        if period_ns < self._kernel.config.hrtimer_min_period_ns:
            raise TimerError(
                f"hrtimer period {period_ns}ns below hardware floor "
                f"{self._kernel.config.hrtimer_min_period_ns}ns"
            )
        self.cancel()
        self._period_ns = int(period_ns)
        self._next_ideal = self._kernel.now + self._period_ns
        self._schedule()

    def cancel(self) -> None:
        """Disarm the timer.  Idempotent."""
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def reprogram(self, period_ns: int) -> None:
        """Change the period of a (possibly running) timer in place.

        Real hrtimers support this via cancel + restart with a new
        interval; the adaptive controller uses it to retune the
        sampling rate without tearing down the counting session.  The
        ideal grid restarts from *now* — the next fire lands one new
        period out, and subsequent fires stay on the new grid.
        """
        if period_ns < self._kernel.config.hrtimer_min_period_ns:
            raise TimerError(
                f"hrtimer period {period_ns}ns below hardware floor "
                f"{self._kernel.config.hrtimer_min_period_ns}ns"
            )
        was_active = self._pending is not None
        if was_active:
            self._pending.cancel()
            self._pending = None
        self._period_ns = int(period_ns)
        if was_active:
            self._next_ideal = self._kernel.now + self._period_ns
            self._schedule()
        obs = self._obs
        if obs is not None:
            obs.timer_reprogrammed(self._label, self._kernel.now,
                                   self._period_ns)

    def _jitter(self) -> int:
        config = self._kernel.config
        draw = self._rng.normal(config.hrtimer_jitter_mean_ns,
                                config.hrtimer_jitter_sd_ns)
        return max(0, int(draw))

    def _schedule(self) -> None:
        # Fault injection may stretch this fire's latency beyond the
        # model's own jitter (e.g. long IRQ-disabled sections).
        fire_at = (self._next_ideal + self._jitter()
                   + self._kernel.faults.timer_extra_jitter_ns(
                       self._kernel.now))
        self._pending = self._kernel.events.schedule(
            fire_at, self._fire, label=f"hrtimer:{self._label}"
        )

    def _fire(self, when: int) -> None:
        self._pending = None
        obs = self._obs
        if self._kernel.faults.timer_missed(when):
            # Injected missed deadline: the expiry came and went inside
            # a masked-interrupt window — the handler never runs and
            # this sample window is simply lost (a gap, not a burst).
            self.missed += 1
            if obs is not None:
                obs.timer_missed(self._label, when)
        else:
            self.fires += 1
            if obs is not None:
                # Lateness vs the ideal grid: jitter draw plus any
                # injected IRQ-latency stretch.
                obs.timer_fired(self._label, when, when - self._next_ideal)
            # Interrupt context: the kernel charges IRQ entry/exit
            # around the handler, counted at kernel privilege.
            self._kernel.run_interrupt(lambda: self._callback(when),
                                       label=self._label)
        # Re-arm on the ideal grid so jitter does not accumulate.
        self._next_ideal += self._period_ns
        if self._next_ideal <= self._kernel.now:
            # The handler ran longer than the period — skip missed slots
            # rather than firing a burst (hrtimer forward semantics).
            missed = (self._kernel.now - self._next_ideal) // self._period_ns + 1
            self._next_ideal += missed * self._period_ns
            if obs is not None:
                obs.timer_overrun(self._label, self._kernel.now, missed)
        self._schedule()
