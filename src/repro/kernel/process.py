"""Process (task) model.

Tasks carry the bookkeeping K-LEB's tracing needs (§III): PID, parent
PID, command name, state, and children — "since a single application
can have multiple PIDs, we also collect and use information such as
process name, process id, parent process id, and process states to
effectively trace the process, and its children."
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from repro.errors import ProcessError
from repro.workloads.base import BlockCursor, Program


class TaskState(enum.Enum):
    """Lifecycle states, mirroring the Linux task states we need."""

    RUNNABLE = "runnable"
    RUNNING = "running"
    SLEEPING = "sleeping"
    EXITED = "exited"


_ALLOWED_TRANSITIONS = {
    TaskState.RUNNABLE: {TaskState.RUNNING, TaskState.EXITED},
    TaskState.RUNNING: {TaskState.RUNNABLE, TaskState.SLEEPING, TaskState.EXITED},
    TaskState.SLEEPING: {TaskState.RUNNABLE, TaskState.EXITED},
    TaskState.EXITED: set(),
}


class Task:
    """One schedulable process."""

    def __init__(self, pid: int, name: str, program: Program,
                 ppid: int = 0, start_time: int = 0, nice: int = 0) -> None:
        if not -20 <= nice <= 19:
            raise ProcessError(f"nice value {nice} outside -20..19")
        self.pid = pid
        self.ppid = ppid
        self.name = name
        self.nice = nice
        self.program = program
        self.cursor = BlockCursor(program)
        self.state = TaskState.RUNNABLE
        self.start_time = start_time
        self.exit_time: Optional[int] = None
        self.cpu_time_ns = 0
        self.instructions_retired = 0.0
        self.children: List[int] = []
        # CPU affinity: a pinned task is never offered to the SMP
        # migration policy (taskset semantics for e.g. the controller).
        self.pinned = False
        self.on_exit: List[Callable[["Task"], None]] = []
        # Scratch area for tool/driver state attached to this task
        # (e.g. LiMiT's user-space counter shadow).
        self.scratch: Dict[str, object] = {}
        self.last_syscall_result: object = None

    @property
    def alive(self) -> bool:
        return self.state is not TaskState.EXITED

    @property
    def wall_time_ns(self) -> Optional[int]:
        """Lifetime from spawn to exit; None while still alive."""
        if self.exit_time is None:
            return None
        return self.exit_time - self.start_time

    def set_state(self, new_state: TaskState) -> None:
        """Transition state, enforcing the lifecycle graph."""
        if new_state is self.state:
            return
        if new_state not in _ALLOWED_TRANSITIONS[self.state]:
            raise ProcessError(
                f"pid {self.pid}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task(pid={self.pid}, name={self.name!r}, "
            f"state={self.state.value})"
        )
