"""Priority round-robin time-sharing scheduler.

A deliberately simple policy: strict ``nice`` priority classes with
FIFO round-robin inside each class and a fixed quantum.  Equal-priority
tasks (the default — every task spawns at nice 0) behave exactly like
plain round-robin.  A higher ``nice`` (lower priority) task only runs
while no lower-nice task is runnable — which is how a de-prioritized
K-LEB controller gets *starved*, triggering the paper's §III buffer
back-pressure safety stop organically.

What matters most for the reproduction is not the pick policy but the
*context-switch path*, because that is where K-LEB's kprobes hook in to
isolate the monitored process's counters (§III, Fig. 3).
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SchedulerError
from repro.kernel.kprobes import KprobeManager, ProbePoint
from repro.kernel.process import Task, TaskState


class MigrationPolicy:
    """Deterministic, seeded migrate-on-quantum policy.

    At each quantum boundary the owning cluster asks the policy whether
    the task that just exhausted its slice should move, and where.  The
    decision stream is drawn from a dedicated RNG stream so enabling
    migration perturbs nothing else, and repeated same-seed runs make
    identical choices.
    """

    def __init__(self, cores: int, rng, probability: float = 0.25) -> None:
        if cores < 2:
            raise SchedulerError(
                f"migration needs at least two cores, got {cores}")
        if not 0.0 <= probability <= 1.0:
            raise SchedulerError(
                f"migration probability must be in [0, 1], got {probability}")
        self.cores = cores
        self.probability = probability
        self._rng = rng

    def pick_destination(self, cpu: int) -> Optional[int]:
        """Destination cpu for a migration from ``cpu``, or None to stay."""
        if self._rng.random() >= self.probability:
            return None
        # Uniform over the *other* cores, as an offset so the draw count
        # is fixed regardless of source cpu.
        offset = 1 + int(self._rng.integers(0, self.cores - 1))
        return (cpu + offset) % self.cores


class Scheduler:
    """Single-core priority round-robin scheduler with kprobe hooks.

    In an SMP cluster each core owns one Scheduler; ``cpu`` names the
    core and ``migration`` (installed by the cluster) is consulted by
    the kernel at quantum boundaries.  Both default to the single-core
    no-op values so standalone kernels behave exactly as before.
    """

    def __init__(self, quantum_ns: int, kprobes: KprobeManager) -> None:
        if quantum_ns <= 0:
            raise SchedulerError("quantum must be positive")
        self.quantum_ns = quantum_ns
        self.kprobes = kprobes
        self.current: Optional[Task] = None
        self.slice_start = 0
        self.cpu = 0
        # Cluster-installed hook: hook(kernel) -> bool (True = current
        # task was migrated away).  None on single-core kernels.
        self.migration: Optional[Callable] = None
        # Sorted list of (nice, fifo-sequence, task): the head is always
        # the highest-priority, longest-waiting task.
        self._queue: List[Tuple[int, int, Task]] = []
        self._fifo = itertools.count()
        self.context_switches = 0

    # ------------------------------------------------------------------
    @property
    def runnable_count(self) -> int:
        """Queued runnable tasks (excluding the one currently running)."""
        return len(self._queue)

    def _queued_tasks(self) -> List[Task]:
        return [entry[2] for entry in self._queue]

    def enqueue(self, task: Task) -> None:
        """Queue a runnable task behind its priority class."""
        if task.state is not TaskState.RUNNABLE:
            raise SchedulerError(
                f"cannot enqueue pid {task.pid} in state {task.state.value}"
            )
        if any(entry[2] is task for entry in self._queue):
            raise SchedulerError(f"pid {task.pid} already queued")
        entry = (task.nice, next(self._fifo), task)
        # Insertion keeping (nice, seq) order; queues are short.
        index = 0
        while index < len(self._queue) and self._queue[index][:2] < entry[:2]:
            index += 1
        self._queue.insert(index, entry)

    def min_queued_nice(self) -> Optional[int]:
        """Best (lowest) nice value waiting in the queue."""
        if not self._queue:
            return None
        return self._queue[0][0]

    def pick_next(self, now: int) -> Optional[Task]:
        """Dispatch the head of the queue; fires the switch-in probe."""
        if self.current is not None:
            raise SchedulerError("pick_next with a task still running")
        if not self._queue:
            return None
        _, _, task = self._queue.pop(0)
        task.set_state(TaskState.RUNNING)
        self.current = task
        self.slice_start = now
        self.context_switches += 1
        self.kprobes.fire(ProbePoint.SCHED_SWITCH_IN, task)
        return task

    def quantum_expiry(self) -> int:
        """Absolute time at which the current slice ends."""
        if self.current is None:
            raise SchedulerError("no current task")
        return self.slice_start + self.quantum_ns

    def should_preempt(self, now: int) -> bool:
        """Quantum elapsed and an equal-or-better-priority task waits.

        A strictly lower-priority (higher nice) waiter does *not*
        preempt — that is the starvation semantics of priority classes.
        """
        if self.current is None or now < self.quantum_expiry():
            return False
        best = self.min_queued_nice()
        return best is not None and best <= self.current.nice

    def refresh_slice(self, now: int) -> None:
        """Restart the quantum (used when the task is alone on the CPU)."""
        self.slice_start = now

    def deschedule_current(self, new_state: TaskState) -> Task:
        """Take the current task off the CPU; fires the switch-out probe.

        ``new_state`` is RUNNABLE for preemption (the task re-queues),
        SLEEPING for a blocking call, or EXITED for termination.
        """
        task = self.current
        if task is None:
            raise SchedulerError("no current task to deschedule")
        self.kprobes.fire(ProbePoint.SCHED_SWITCH_OUT, task)
        task.set_state(new_state)
        self.current = None
        if new_state is TaskState.RUNNABLE:
            self.enqueue(task)
        return task

    def migrate_current_away(self) -> Task:
        """Take the current task off this CPU for migration.

        Fires the switch-out probe (K-LEB must stop counting here) and
        leaves the task RUNNABLE but *not* locally queued — the cluster
        enqueues it on the destination CPU.
        """
        task = self.current
        if task is None:
            raise SchedulerError("no current task to migrate")
        self.kprobes.fire(ProbePoint.SCHED_SWITCH_OUT, task)
        task.set_state(TaskState.RUNNABLE)
        self.current = None
        return task

    def remove(self, task: Task) -> None:
        """Drop a task from the run queue (e.g. killed while queued)."""
        self._queue = [entry for entry in self._queue
                       if entry[2] is not task]
