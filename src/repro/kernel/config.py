"""Kernel cost model and tunables.

Every privileged operation in the simulation has an explicit time cost,
charged on the machine clock and counted by the PMU at kernel
privilege.  The values are ballpark figures for the paper's era of
hardware (Nehalem, Linux 4.x): a syscall round trip of order 1 µs, a
context switch of order 2 µs, interrupt entry well under 1 µs.

The *user-space timer floor* defaults to 10 ms — the jiffy resolution
the paper identifies as the reason perf cannot sample faster than
10 ms (§II-C), while the kernel HRTimer resolves to nanoseconds with a
small jitter (§III recommends not sampling faster than 100 µs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim.clock import ms, us


@dataclass(frozen=True)
class SyscallCosts:
    """Time cost of the syscall path, in nanoseconds."""

    entry_ns: int = 300
    exit_ns: int = 200
    per_call_ns: Dict[str, int] = field(default_factory=lambda: {
        "ioctl": 800,
        "read": 1_000,
        "write": 1_500,
        "nanosleep": 500,
        "fork": 15_000,
        "open": 2_000,
        "close": 700,
        "getpid": 100,
    })

    def total_ns(self, name: str) -> int:
        """Entry + service + exit cost of one call to ``name``."""
        return self.entry_ns + self.per_call_ns.get(name, 500) + self.exit_ns


@dataclass(frozen=True)
class KernelConfig:
    """Scheduler, timer, and noise parameters."""

    # Kernel release this system "runs" — gates tool/workload pairs
    # the way real deployments do (LiMiT's patch only exists for
    # 2.6.32; Intel MKL needs a modern kernel — paper Table III).
    kernel_version: str = "4.13"

    # Scheduling
    quantum_ns: int = ms(4)                 # Linux CFS-era timeslice scale
    context_switch_ns: int = us(2)

    # Interrupts
    irq_entry_ns: int = 600
    irq_exit_ns: int = 400

    # Timers
    hrtimer_jitter_mean_ns: int = 400       # §VI: HRTimer has real jitter
    hrtimer_jitter_sd_ns: int = 250
    hrtimer_min_period_ns: int = us(10)     # below this the model refuses
    user_timer_resolution_ns: int = ms(10)  # jiffy: perf's 10 ms floor
    wakeup_latency_mean_ns: int = us(30)    # scheduler wakeup delay
    wakeup_latency_sd_ns: int = us(15)

    # Background OS noise (daemons, unrelated interrupts) — gives the
    # no-profiling baseline its run-to-run spread (Fig. 8).
    noise_enabled: bool = True
    noise_rate_per_sec: float = 40.0
    noise_cost_mean_ns: int = us(9)
    noise_cost_sd_ns: int = us(4)

    syscalls: SyscallCosts = field(default_factory=SyscallCosts)

    # Event mix of generic kernel work (syscall service, IRQ handlers),
    # per instruction, used when charging kernel time to the PMU.
    kernel_work_cpi: float = 1.2
    kernel_work_rates: Dict[str, float] = field(default_factory=lambda: {
        "LOADS": 0.30,
        "STORES": 0.16,
        "BRANCHES": 0.14,
        "BRANCH_MISSES": 0.004,
        "LLC_REFERENCES": 0.002,
        "LLC_MISSES": 0.0005,
    })
