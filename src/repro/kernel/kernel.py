"""The simulated kernel: process lifecycle, syscalls, interrupts, and
the machine run loop.

The run loop executes the current task in *slices* bounded by the next
simulation event (timer fire, quantum expiry), services syscalls and
interrupts with explicit time costs counted at kernel privilege, and
drives the scheduler's context-switch path — the hook point K-LEB's
kprobes attach to.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Dict, List, Optional

from repro.errors import KernelError, ModuleError, ProcessError, SyscallError
from repro.faults.inject import FaultInjector
from repro.hw.core import ExecStop
from repro.hw.machine import Machine
from repro.kernel.config import KernelConfig
from repro.kernel.kprobes import KprobeManager, ProbePoint
from repro.kernel.module import KernelModule
from repro.kernel.process import Task, TaskState
from repro.kernel.scheduler import Scheduler
from repro.sim.clock import Clock
from repro.sim.engine import EventQueue
from repro.sim.rng import RngStreams
from repro.workloads.base import Program, SyscallBlock, USER_PROBE


class Kernel:
    """A booted simulated system: one machine, one kernel."""

    def __init__(self, machine: Machine,
                 config: Optional[KernelConfig] = None,
                 rng: Optional[RngStreams] = None,
                 patches: Optional[List[str]] = None,
                 faults: Optional[FaultInjector] = None) -> None:
        self.machine = machine
        self.config = config if config is not None else KernelConfig()
        self.rng = rng if rng is not None else RngStreams(0)
        # Fault oracle consulted at hook points (HRTimer fires, module
        # ioctl/read, buffer pushes).  Draws from its own seeded streams,
        # so an inert injector leaves the simulation bit-identical.
        self.faults = faults if faults is not None else FaultInjector()
        self.clock = Clock()
        self.events = EventQueue()
        self.kprobes = KprobeManager()
        self.scheduler = Scheduler(self.config.quantum_ns, self.kprobes)
        self.tasks: Dict[int, Task] = {}
        self.modules: Dict[str, KernelModule] = {}
        # Kernel patches applied at "build time" (LiMiT needs one; a
        # stock kernel has none — that is K-LEB's deployment advantage).
        self.patches = set(patches or [])
        self.syscall_counts: Counter = Counter()
        # Memoized duration -> event-count dicts for charge_kernel_time.
        self._charge_cache: Dict[int, Dict[str, float]] = {}
        self._next_pid = 1000
        self._wake_rng = self.rng.stream("wakeup-latency")
        self._noise_rng = self.rng.stream("os-noise")
        if self.config.noise_enabled and self.config.noise_rate_per_sec > 0:
            self._schedule_noise()

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self.clock.now

    @property
    def pmu(self):
        return self.machine.pmu

    def task(self, pid: int) -> Task:
        try:
            return self.tasks[pid]
        except KeyError:
            raise ProcessError(f"no such pid {pid}") from None

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    def spawn(self, program: Program, name: Optional[str] = None,
              ppid: int = 0, start: bool = True, nice: int = 0) -> Task:
        """Create a task for ``program``.

        With ``start=False`` the task is created stopped (as if sent
        SIGSTOP right after fork) — monitoring tools use this to finish
        attaching before the victim executes its first instruction.
        Resume it with :meth:`start_task`.  ``nice`` sets the scheduling
        priority (-20 best .. 19 worst, 0 default).
        """
        pid = self._next_pid
        self._next_pid += 1
        task = Task(pid=pid, name=name or program.name, program=program,
                    ppid=ppid, start_time=self.now, nice=nice)
        self.tasks[pid] = task
        if ppid in self.tasks:
            parent = self.tasks[ppid]
            parent.children.append(pid)
            self.kprobes.fire(ProbePoint.PROCESS_FORK, parent, task)
        if start:
            self.scheduler.enqueue(task)
        else:
            task.state = TaskState.SLEEPING
        return task

    def start_task(self, task: Task) -> None:
        """Resume a task spawned with ``start=False`` (SIGCONT)."""
        task.start_time = self.now
        self._wake(task)

    def _exit_current(self) -> None:
        task = self.scheduler.current
        if task is None:
            raise KernelError("no current task to exit")
        self.kprobes.fire(ProbePoint.PROCESS_EXIT, task)
        self._charge_context_switch()
        self.scheduler.deschedule_current(TaskState.EXITED)
        task.exit_time = self.now
        for callback in task.on_exit:
            callback(task)

    # ------------------------------------------------------------------
    # Modules
    # ------------------------------------------------------------------
    def load_module(self, module: KernelModule) -> KernelModule:
        """insmod: attach a module to this kernel."""
        if module.name in self.modules:
            raise ModuleError(f"module {module.name!r} already loaded")
        module._attach(self)
        self.modules[module.name] = module
        return module

    def unload_module(self, name: str) -> None:
        """rmmod: detach a module."""
        try:
            module = self.modules.pop(name)
        except KeyError:
            raise ModuleError(f"module {name!r} not loaded") from None
        module._detach()

    def get_module(self, name: str) -> KernelModule:
        try:
            return self.modules[name]
        except KeyError:
            raise ModuleError(f"module {name!r} not loaded") from None

    # ------------------------------------------------------------------
    # Time charging (kernel-privilege work)
    # ------------------------------------------------------------------
    def charge_kernel_time(self, duration_ns: int) -> None:
        """Advance the clock by kernel work, counted at ring 0.

        The event mix for a given duration is a pure function of the
        (immutable) kernel config and core timing, and the durations
        are a handful of fixed costs (IRQ entry/exit, context switch,
        syscall entry) charged hundreds of thousands of times per run —
        so the computed dicts are memoized per duration.  The cache is
        bounded: randomized durations (OS noise bursts) stop being
        cached past the cap rather than growing without limit.
        """
        if duration_ns <= 0:
            return
        cache = self._charge_cache
        events = cache.get(duration_ns)
        if events is None:
            core = self.machine.core
            cycles = core.ns_to_cycles(duration_ns)
            instructions = cycles / self.config.kernel_work_cpi
            events = {
                name: rate * instructions
                for name, rate in self.config.kernel_work_rates.items()
            }
            events["INST_RETIRED"] = instructions
            events["CORE_CYCLES"] = cycles
            events["REF_CYCLES"] = cycles * core.tsc_ratio
            if len(cache) < 1024:
                cache[duration_ns] = events
        self.pmu.accumulate(events, "kernel")
        self.clock.advance(duration_ns)

    def run_interrupt(self, handler: Callable[[], None],
                      label: str = "irq") -> None:
        """Run ``handler`` in interrupt context, charging entry/exit."""
        self.charge_kernel_time(self.config.irq_entry_ns)
        handler()
        self.charge_kernel_time(self.config.irq_exit_ns)

    def _charge_context_switch(self) -> None:
        self.charge_kernel_time(self.config.context_switch_ns)

    # ------------------------------------------------------------------
    # Sleep / wake
    # ------------------------------------------------------------------
    def sleep_current(self, duration_ns: int, *,
                      high_resolution: bool = False) -> None:
        """Block the current task for ``duration_ns``.

        Ordinary (user-space timer) sleeps round **up** to the jiffy
        resolution — the 10 ms floor that caps perf's sampling rate.
        ``high_resolution`` bypasses the floor (clock_nanosleep with a
        high-res clock), still paying wakeup latency.
        """
        task = self.scheduler.current
        if task is None:
            raise KernelError("sleep_current with no current task")
        if duration_ns <= 0:
            raise SyscallError(f"invalid sleep duration {duration_ns}")
        if not high_resolution:
            resolution = self.config.user_timer_resolution_ns
            duration_ns = int(math.ceil(duration_ns / resolution) * resolution)
        latency = max(0, int(self._wake_rng.normal(
            self.config.wakeup_latency_mean_ns,
            self.config.wakeup_latency_sd_ns,
        )))
        wake_at = self.now + duration_ns + latency
        self._charge_context_switch()
        self.scheduler.deschedule_current(TaskState.SLEEPING)
        self.events.schedule(wake_at, lambda when, t=task: self._wake(t),
                             label=f"wake:{task.pid}")

    def _wake(self, task: Task) -> None:
        if task.state is TaskState.SLEEPING:
            task.set_state(TaskState.RUNNABLE)
            self.scheduler.enqueue(task)

    # ------------------------------------------------------------------
    # Syscall servicing
    # ------------------------------------------------------------------
    def _service_syscall(self, task: Task, block: SyscallBlock) -> None:
        if block.name == USER_PROBE:
            # Not a real trap: user-space code observing state with
            # unprivileged instructions (e.g. LiMiT's rdpmc read).  No
            # mode switch, no kernel time.
            if block.handler is not None:
                task.last_syscall_result = block.handler(self, task)
            return
        costs = self.config.syscalls
        self.syscall_counts[block.name] += 1
        self.charge_kernel_time(costs.entry_ns)
        self.charge_kernel_time(costs.per_call_ns.get(block.name, 500))
        if block.handler is not None:
            task.last_syscall_result = block.handler(self, task)
        self.charge_kernel_time(costs.exit_ns)

    # ------------------------------------------------------------------
    # OS background noise
    # ------------------------------------------------------------------
    def _schedule_noise(self) -> None:
        interarrival_s = self._noise_rng.exponential(
            1.0 / self.config.noise_rate_per_sec
        )
        fire_at = self.now + max(1, int(interarrival_s * 1e9))
        self.events.schedule(fire_at, self._noise_fire, label="os-noise")

    def _noise_fire(self, when: int) -> None:
        cost = max(
            1_000,
            int(self._noise_rng.normal(self.config.noise_cost_mean_ns,
                                       self.config.noise_cost_sd_ns)),
        )
        self.run_interrupt(lambda: self.charge_kernel_time(cost),
                           label="os-noise")
        self._schedule_noise()

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, deadline: Optional[int] = None,
            stop_when: Optional[Callable[[], bool]] = None) -> None:
        """Advance the system until ``deadline``, ``stop_when()``, or
        every task has exited."""
        while True:
            self.events.dispatch_due(self.now)
            if stop_when is not None and stop_when():
                return
            if deadline is not None and self.now >= deadline:
                return
            if self.scheduler.current is None:
                task = self.scheduler.pick_next(self.now)
                if task is None:
                    if not self._advance_idle(deadline):
                        return
                    continue
            current = self.scheduler.current
            slice_end = self.scheduler.quantum_expiry()
            next_event = self.events.peek_time()
            if next_event is not None:
                slice_end = min(slice_end, next_event)
            if deadline is not None:
                slice_end = min(slice_end, deadline)
            budget = slice_end - self.now
            if budget <= 0:
                # Nothing touched the event queue since the peek above,
                # so the boundary handler can reuse its result instead
                # of peeking again.
                self._handle_boundary(next_event)
                continue
            result = self.machine.core.execute(current.cursor, budget)
            if result.consumed_ns == 0 and result.stop is ExecStop.BUDGET:
                # Budget smaller than one instruction: burn it as idle
                # spin so the loop always makes progress.
                self.clock.advance(budget)
                continue
            self.clock.advance(result.consumed_ns)
            current.cpu_time_ns += result.consumed_ns
            current.instructions_retired += result.instructions
            if result.stop is ExecStop.PROGRAM_DONE:
                self._exit_current()
            elif result.stop is ExecStop.SYSCALL:
                assert result.syscall is not None
                self._service_syscall(current, result.syscall)
            else:
                if self.scheduler.should_preempt(self.now):
                    self._charge_context_switch()
                    self.scheduler.deschedule_current(TaskState.RUNNABLE)
                else:
                    self._maybe_migrate()

    def run_until_exit(self, task: Task,
                       deadline: Optional[int] = None) -> None:
        """Run until ``task`` exits (or the safety deadline trips)."""
        self.run(deadline=deadline,
                 stop_when=lambda: task.state is TaskState.EXITED)
        if task.state is not TaskState.EXITED:
            raise KernelError(
                f"pid {task.pid} ({task.name}) did not exit by deadline"
            )

    def _handle_boundary(self, next_event: Optional[int]) -> None:
        """Zero-budget slice: quantum and/or event boundary is *now*.

        ``next_event`` is the caller's already-computed ``peek_time()``
        result — the run loop peeks once per iteration and threads the
        value through.
        """
        if self.scheduler.should_preempt(self.now):
            self._charge_context_switch()
            self.scheduler.deschedule_current(TaskState.RUNNABLE)
        elif self._maybe_migrate():
            pass  # Current task left for another CPU; re-pick next loop.
        else:
            if next_event is None or next_event > self.now:
                # Alone on the CPU with the quantum spent: new slice.
                self.scheduler.refresh_slice(self.now)
            # Events due exactly now dispatch at the top of the loop.

    def _maybe_migrate(self) -> bool:
        """Offer the current task to the cluster's migration hook.

        A single-core kernel has no hook installed, so this is one
        attribute check on that path — behaviour and RNG consumption
        are untouched.
        """
        hook = self.scheduler.migration
        if hook is None or self.scheduler.current is None:
            return False
        return hook(self)

    def _advance_idle(self, deadline: Optional[int]) -> bool:
        """No runnable task: jump to the next event.

        Returns False when the system is finished: every spawned task
        has exited (background timer/noise events don't keep the system
        alive), or there are no tasks and no deadline to run events for.
        """
        alive = any(task.alive for task in self.tasks.values())
        if self.tasks and not alive:
            return False
        next_event = self.events.peek_time()
        if next_event is None:
            if deadline is not None:
                # Nothing to do until the horizon: idle to it.
                self.clock.advance_to(max(self.now, deadline))
                return True
            if not self.tasks:
                return False
            # Tasks exist but nothing will ever wake them.
            raise KernelError("deadlock: sleeping tasks with no pending events")
        if not self.tasks and deadline is None:
            # Pure event load with no horizon: nothing meaningful to run.
            return False
        target = max(next_event, self.now)
        if deadline is not None and target > deadline:
            self.clock.advance_to(deadline)
            return True
        self.clock.advance_to(target)
        return True
