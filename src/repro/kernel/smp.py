"""First-class SMP substrate: per-core kernels under one topology.

The paper's scheduling and contention claims (§II-C, §IV-B) are
inherently multi-core — workloads on *different cores* contend for the
shared last-level cache.  This module composes single-core
(machine, kernel) pairs into an :class:`SmpCluster` under a
:class:`~repro.hw.machine.Topology`:

* one :class:`~repro.hw.machine.Machine` (private MSR file, PMU,
  L1/L2) per core, front-ending a per-socket shared LLC;
* one :class:`~repro.hw.uncore.UncorePmu` per socket, fed each
  lockstep window from its LLC's miss traffic;
* deterministic, seeded CPU migration: a
  :class:`~repro.kernel.scheduler.MigrationPolicy` consulted at
  quantum boundaries, with the ``SCHED_MIGRATE`` kprobe fired on the
  destination core so K-LEB re-arms where the task lands.

Cores advance in lockstep time windows; the window bounds cross-core
clock skew (default 100 µs — well under the scheduler quantum and the
cache-reuse timescales that matter).  A single-core cluster is
behaviourally identical to a bare :class:`~repro.kernel.kernel.Kernel`:
no migration hook is installed and no extra RNG stream is consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.faults.inject import FaultInjector
from repro.hw.machine import MachineConfig, SmpMachine, Topology
from repro.hw.presets import i7_920
from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.kprobes import ProbePoint
from repro.kernel.process import Task
from repro.kernel.scheduler import MigrationPolicy
from repro.sim.clock import us
from repro.sim.rng import RngStreams
from repro.workloads.base import Program

DEFAULT_WINDOW_NS = us(100)

#: Pid-space stride between cores so one task table could merge the
#: per-core tables without collisions (core 0 keeps the classic 1000
#: base, so single-core clusters are bit-identical to a bare kernel).
_PID_STRIDE = 10_000


class SmpCluster:
    """N per-core kernels sharing per-socket LLCs, advanced in lockstep.

    Args:
        cores: total cores (spread evenly across ``sockets``).
        machine_config: per-core machine geometry (default i7-920).
        kernel_config: per-core kernel config (default: OS noise off,
            so contention effects are not drowned in noise).
        seed: master seed; each core gets a forked RNG and migration
            gets its own named stream.
        sockets: number of sockets; ``cores`` must divide evenly.
        window_ns: lockstep window (bounds cross-core clock skew).
            Validated here — a non-positive window would silently
            desynchronize the cluster.
        migrate: enable the seeded migrate-on-quantum policy.
        migrate_probability: per-quantum-boundary migration chance.
        faults: optional fault injector shared by every core's kernel.
    """

    def __init__(self, cores: int = 2,
                 machine_config: Optional[MachineConfig] = None,
                 kernel_config: Optional[KernelConfig] = None,
                 seed: int = 0,
                 *,
                 sockets: int = 1,
                 window_ns: int = DEFAULT_WINDOW_NS,
                 migrate: bool = False,
                 migrate_probability: float = 0.25,
                 faults: Optional[FaultInjector] = None) -> None:
        if cores < 1:
            raise ExperimentError("a cluster needs at least one core")
        if sockets < 1:
            raise ExperimentError("a cluster needs at least one socket")
        if cores % sockets:
            raise ExperimentError(
                f"cores ({cores}) must divide evenly across "
                f"sockets ({sockets})")
        if window_ns <= 0:
            raise ExperimentError(
                f"lockstep window must be positive, got {window_ns}")
        config = machine_config or i7_920()
        if len(config.cache_levels) < 2:
            raise ExperimentError(
                "shared-LLC clustering needs private levels plus an LLC"
            )
        self.config = config
        self.window_ns = window_ns
        self.topology = Topology(sockets=sockets,
                                 cores_per_socket=cores // sockets)
        self.smp = SmpMachine(config, self.topology)
        # Back-compat alias: the (first) socket's shared LLC.
        self.llcs = self.smp.llcs
        self.shared_llc = self.llcs[0]
        self.uncores = self.smp.uncores
        self.kernels: List[Kernel] = []
        base_rng = RngStreams(seed)
        for cpu in range(cores):
            kernel = Kernel(
                self.smp.machine(cpu),
                config=kernel_config or KernelConfig(noise_enabled=False),
                rng=base_rng.fork(cpu + 1),
                faults=faults,
            )
            kernel.scheduler.cpu = cpu
            kernel._next_pid = 1000 + cpu * _PID_STRIDE
            self.kernels.append(kernel)
        self.migrations = 0
        self._policy: Optional[MigrationPolicy] = None
        if migrate and cores >= 2:
            self._policy = MigrationPolicy(
                cores, base_rng.stream("smp-migration"),
                probability=migrate_probability)
            for cpu, kernel in enumerate(self.kernels):
                kernel.scheduler.migration = self._make_migration_hook(cpu)
        # Per-socket (misses, lookups) marks for uncore window deltas.
        self._llc_marks: List[Tuple[int, int]] = [
            (0, 0) for _ in range(self.topology.sockets)
        ]

    # ------------------------------------------------------------------
    @property
    def cores(self) -> int:
        return len(self.kernels)

    def kernel(self, core: int) -> Kernel:
        try:
            return self.kernels[core]
        except IndexError:
            raise ExperimentError(
                f"no core {core} in a {self.cores}-core cluster"
            ) from None

    def spawn(self, core: int, program: Program, **kwargs) -> Task:
        """Spawn ``program`` on the given core's kernel."""
        return self.kernel(core).spawn(program, **kwargs)

    def cpu_of(self, task: Task) -> Optional[int]:
        """CPU whose task table currently holds ``task`` (None if gone)."""
        for cpu, kernel in enumerate(self.kernels):
            if kernel.tasks.get(task.pid) is task:
                return cpu
        return None

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def _make_migration_hook(self, cpu: int):
        policy = self._policy

        def hook(kernel: Kernel) -> bool:
            scheduler = kernel.scheduler
            task = scheduler.current
            # Gate *before* drawing randomness: pinned tasks and
            # unexpired quanta must not perturb the decision stream.
            if task is None or task.pinned:
                return False
            if kernel.now < scheduler.slice_start + scheduler.quantum_ns:
                return False
            dst = policy.pick_destination(cpu)
            if dst is None:
                return False
            self._migrate(kernel, cpu, dst, task)
            return True

        return hook

    def _migrate(self, src_kernel: Kernel, src: int, dst: int,
                 task: Task) -> None:
        """Move the running task from ``src`` to ``dst``.

        Mirrors the preemption path (context-switch charge, switch-out
        probe) on the source, then hands the task to the destination
        synchronously: it lands RUNNABLE on the destination run queue
        and the ``SCHED_MIGRATE`` probe fires on the *destination*
        kernel, which is where K-LEB must re-arm.  Cross-core clock
        skew at the hand-off is bounded by the lockstep window.
        """
        src_kernel._charge_context_switch()
        src_kernel.scheduler.migrate_current_away()
        del src_kernel.tasks[task.pid]
        dst_kernel = self.kernels[dst]
        dst_kernel.tasks[task.pid] = task
        dst_kernel.kprobes.fire(ProbePoint.SCHED_MIGRATE, task, src, dst)
        dst_kernel.scheduler.enqueue(task)
        self.migrations += 1

    # ------------------------------------------------------------------
    # Lockstep run loop
    # ------------------------------------------------------------------
    def _window(self, window_ns: Optional[int]) -> int:
        if window_ns is None:
            return self.window_ns
        if window_ns <= 0:
            raise ExperimentError(
                f"lockstep window must be positive, got {window_ns}")
        return window_ns

    def _advance_window(self, horizon: int) -> None:
        for kernel in self.kernels:
            if kernel.now < horizon:
                kernel.run(deadline=horizon)

    def _sample_uncore(self, elapsed_ns: int) -> None:
        for socket in range(self.topology.sockets):
            llc = self.llcs[socket]
            misses, lookups = llc.misses, llc.hits + llc.misses
            prev_misses, prev_lookups = self._llc_marks[socket]
            self._llc_marks[socket] = (misses, lookups)
            self.uncores[socket].advance_window(
                elapsed_ns, misses - prev_misses, lookups - prev_lookups)

    def run(self, deadline_ns: int,
            window_ns: Optional[int] = None) -> None:
        """Advance every core in lockstep windows up to ``deadline_ns``."""
        window_ns = self._window(window_ns)
        horizon = min(kernel.now for kernel in self.kernels)
        while horizon < deadline_ns:
            previous = horizon
            horizon = min(horizon + window_ns, deadline_ns)
            self._advance_window(horizon)
            self._sample_uncore(horizon - previous)

    def run_until_tasks_exit(self, tasks: Sequence[Task],
                             deadline_ns: int,
                             window_ns: Optional[int] = None) -> None:
        """Lockstep-advance until every listed task has exited."""
        window_ns = self._window(window_ns)
        horizon = min(kernel.now for kernel in self.kernels)
        while any(task.alive for task in tasks):
            if horizon >= deadline_ns:
                alive = [task.name for task in tasks if task.alive]
                raise ExperimentError(
                    f"cluster deadline reached with tasks alive: {alive}"
                )
            previous = horizon
            horizon = min(horizon + window_ns, deadline_ns)
            self._advance_window(horizon)
            self._sample_uncore(horizon - previous)

    def max_skew_ns(self) -> int:
        """Current clock skew between the fastest and slowest core."""
        times = [kernel.now for kernel in self.kernels]
        return max(times) - min(times)


@dataclass(frozen=True)
class ParallelCorunResult:
    """Contention outcome for one program in a parallel co-run."""

    name: str
    core: int
    solo_wall_ns: int
    corun_wall_ns: int

    @property
    def slowdown(self) -> float:
        """Wall-time inflation from sharing the LLC.

        Unlike the single-core co-run, there is no time-slicing here:
        every core is dedicated, so any slowdown IS cache contention.
        """
        if self.solo_wall_ns <= 0:
            raise ExperimentError(f"{self.name}: empty solo run")
        return self.corun_wall_ns / self.solo_wall_ns


def corun_parallel(programs: Sequence[Program],
                   machine_config: Optional[MachineConfig] = None,
                   seed: int = 0,
                   deadline_ns: int = 2_000_000_000
                   ) -> List[ParallelCorunResult]:
    """Run each program on its own core of a shared-LLC cluster.

    Returns per-program results with solo-vs-corun wall times; the solo
    baseline runs each program alone on an identical single-core
    cluster (same private caches, unshared LLC).
    """
    if len(programs) < 2:
        raise ExperimentError("parallel co-run needs at least two programs")
    solo_walls: List[int] = []
    for index, program in enumerate(programs):
        cluster = SmpCluster(cores=1, machine_config=machine_config,
                             seed=seed)
        task = cluster.spawn(0, program)
        cluster.run_until_tasks_exit([task], deadline_ns)
        solo_walls.append(task.wall_time_ns or 0)

    cluster = SmpCluster(cores=len(programs),
                         machine_config=machine_config, seed=seed)
    tasks = [cluster.spawn(core, program)
             for core, program in enumerate(programs)]
    cluster.run_until_tasks_exit(tasks, deadline_ns)
    return [
        ParallelCorunResult(
            name=program.name,
            core=core,
            solo_wall_ns=solo_walls[core],
            corun_wall_ns=tasks[core].wall_time_ns or 0,
        )
        for core, program in enumerate(programs)
    ]
