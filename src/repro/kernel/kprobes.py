"""Kernel probe points.

K-LEB attaches probes to the scheduler's context-switch handler to
start/stop counting when the monitored process is scheduled in/out
(§III, Fig. 3).  This module provides the registry: well-known probe
points, handler registration with handles, and firing.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List


class ProbePoint(enum.Enum):
    """Probe points the simulated kernel exposes."""

    SCHED_SWITCH_IN = "sched:switch_in"    # args: (task,)
    SCHED_SWITCH_OUT = "sched:switch_out"  # args: (task,)
    SCHED_MIGRATE = "sched:migrate"        # args: (task, src_cpu, dst_cpu)
    PROCESS_FORK = "process:fork"          # args: (parent, child)
    PROCESS_EXIT = "process:exit"          # args: (task,)


class KprobeHandle:
    """Handle returned by registration; used to unregister."""

    __slots__ = ("point", "handler", "_active")

    def __init__(self, point: ProbePoint, handler: Callable) -> None:
        self.point = point
        self.handler = handler
        self._active = True

    @property
    def active(self) -> bool:
        return self._active

    def _deactivate(self) -> None:
        self._active = False


class KprobeManager:
    """Registry and dispatcher for kernel probes."""

    def __init__(self) -> None:
        self._handlers: Dict[ProbePoint, List[KprobeHandle]] = {
            point: [] for point in ProbePoint
        }

    def register(self, point: ProbePoint, handler: Callable) -> KprobeHandle:
        """Attach ``handler`` to ``point``; returns an unregistration handle."""
        handle = KprobeHandle(point, handler)
        self._handlers[point].append(handle)
        return handle

    def unregister(self, handle: KprobeHandle) -> None:
        """Detach a previously registered handler.  Idempotent."""
        handle._deactivate()
        self._handlers[handle.point] = [
            existing for existing in self._handlers[handle.point]
            if existing is not handle
        ]

    def fire(self, point: ProbePoint, *args) -> int:
        """Invoke every handler attached to ``point``; returns the count."""
        fired = 0
        for handle in list(self._handlers[point]):
            if handle.active:
                handle.handler(*args)
                fired += 1
        return fired

    def count(self, point: ProbePoint) -> int:
        """Number of active handlers on ``point``."""
        return len(self._handlers[point])
