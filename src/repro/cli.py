"""Command-line front end.

Usage::

    kleb-repro list
    kleb-repro list-events [--kind arch|uarch]
    kleb-repro run table1 [--seed N] [--runs N] [--period-ms F]
    kleb-repro run-all [--quick]
    kleb-repro monitor --workload matmul --tool k-leb --period-ms 10
    kleb-repro monitor --tool k-leb --events L1D_MISSES,L2_MISSES,... \
        --multiplex 1.0
    kleb-repro monitor --workload matmul --cores 4 --migrate

``run`` executes one paper table/figure reproduction and prints the
paper-style text output; ``monitor`` runs a single monitored trial and
prints the report summary (handy for poking at the tools).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.timeseries import deltas, find_gaps, samples_to_series
from repro.errors import FaultError, PMUError, ToolError
from repro.experiments import EXPERIMENTS
from repro.hw import events as hw_events
from repro.experiments.report import sparkline, text_table
from repro.experiments.runner import run_monitored
from repro.faults import FaultInjector, FaultPlan, RunLedger
from repro.sim.clock import ms
from repro.tools.registry import available_tools, create_tool
from repro.workloads.dgemm import MklDgemm
from repro.workloads.linpack import LinpackWorkload
from repro.workloads.matmul import TripleLoopMatmul
from repro.workloads.meltdown import MeltdownAttack, SecretPrinter

_WORKLOADS = {
    "matmul": lambda: TripleLoopMatmul(1024),
    "dgemm": lambda: MklDgemm(),
    "linpack": lambda: LinpackWorkload(5000),
    "secret-printer": SecretPrinter,
    "meltdown": MeltdownAttack,
}

# Experiments whose trial populations can fan out over worker
# processes (the rest are single-run comparisons).
_PARALLEL_EXPERIMENTS = {"table1", "table2", "table3", "fig4", "fig6", "fig8"}

# Small-parameter overrides for `run-all --quick`.
_QUICK_KWARGS = {
    "table1": {"trials": 3},
    "table2": {"runs": 5},
    "table3": {"runs": 5},
    "fig4": {"trials": 3},
    "fig5": {"iterations": 8, "cross_platform": False},
    "fig6": {"rounds": 3},
    "fig7": {},
    "fig8": {"runs": 5},
    "fig9": {},
    "crosscheck": {},
    "multiplex": {"n": 128, "rotation_periods_ns": (ms(1), ms(0.5), ms(0.2))},
    "adaptive": {"phase_instructions": (60e6, 45e6, 70e6, 50e6)},
    "smp": {"cores": 2, "service_accesses": 60_000,
            "streamer_accesses": 80_000},
}


def _jobs_arg(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return jobs


def _faults_arg(value: str) -> FaultPlan:
    try:
        return FaultPlan.parse(value)
    except FaultError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


_FAULTS_HELP = (
    "fault-injection spec, e.g. seed=7,starve=0.3,crash=0.1 "
    "(keys: seed, timer_jitter, timer_jitter_ns, timer_miss, ioctl, "
    "read, squeeze, squeeze_factor, squeeze_fires, starve, "
    "starve_factor, pmu_wrap, crash, timeout, persistent)"
)

_TRACE_HELP = ("record a Chrome trace-event file (Perfetto-loadable; "
               ".jsonl suffix selects JSONL; .gz suffix gzips)")
_METRICS_HELP = ("record a metrics file (Prometheus text; .json suffix "
                 "selects the JSON document; .gz suffix gzips)")
_LIVE_HELP = ("serve live run telemetry over loopback HTTP on PORT "
              "(default 9137): /metrics (Prometheus), /healthz "
              "(watchdog; 503 = degraded), /runs (JSON); watch with "
              "`python -m repro.obs.top`")
_FLIGHT_HELP = ("keep a bounded flight-recorder ring of recent trace "
                "events and dump it to PATH on quarantines, watchdog "
                "trips, crashes, and run end")


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help=_TRACE_HELP)
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help=_METRICS_HELP)
    parser.add_argument("--live", nargs="?", type=int, default=None,
                        const=-1, metavar="PORT", help=_LIVE_HELP)
    parser.add_argument("--flight", default=None, metavar="PATH",
                        help=_FLIGHT_HELP)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kleb-repro",
        description="K-LEB (IISWC 2020) reproduction on a simulated machine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible tables/figures")

    events_parser = sub.add_parser(
        "list-events", help="list the hardware event catalogue")
    events_parser.add_argument(
        "--kind", choices=("arch", "uarch"), default=None,
        help="only architectural / microarchitectural events")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--runs", type=int, default=None,
                            help="override run/trial/round count")
    run_parser.add_argument("--period-ms", type=float, default=None,
                            help="override the sample period")
    run_parser.add_argument("--jobs", type=_jobs_arg, default=None, metavar="N",
                            help="worker processes for trial populations "
                                 "(default: all cores)")
    run_parser.add_argument("--faults", type=_faults_arg, default=None,
                            metavar="SPEC", help=_FAULTS_HELP)
    _add_obs_args(run_parser)

    all_parser = sub.add_parser("run-all", help="run every experiment")
    all_parser.add_argument("--quick", action="store_true",
                            help="small populations for a fast pass")
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument("--jobs", type=_jobs_arg, default=None, metavar="N",
                            help="worker processes for trial populations "
                                 "(default: all cores)")
    all_parser.add_argument("--faults", type=_faults_arg, default=None,
                            metavar="SPEC",
                            help=_FAULTS_HELP + " (trial experiments only)")
    _add_obs_args(all_parser)

    monitor = sub.add_parser("monitor", help="one monitored trial")
    monitor.add_argument("--workload", choices=sorted(_WORKLOADS),
                         default="matmul")
    monitor.add_argument("--tool", choices=available_tools(),
                         default="k-leb")
    monitor.add_argument("--period-ms", type=float, default=10.0)
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument("--events", default="LOADS,STORES,BRANCHES,LLC_MISSES",
                         help="comma-separated catalogue names "
                              "(see `list-events`); more events than "
                              "counters needs --multiplex")
    monitor.add_argument("--multiplex", type=float, default=None,
                         metavar="MS",
                         help="rotate event groups every MS milliseconds "
                              "(k-leb only); totals become scaled estimates")
    monitor.add_argument("--adapt", action="store_true",
                         help="close the loop: adapt the sampling period "
                              "and drain batches online (k-leb only)")
    monitor.add_argument("--cores", type=int, default=None, metavar="N",
                         help="run on an N-core SMP cluster with per-core "
                              "PMUs and a merged per-CPU sample ring "
                              "(k-leb only)")
    monitor.add_argument("--sockets", type=int, default=1, metavar="M",
                         help="spread --cores evenly over M sockets, one "
                              "uncore PMU each (default 1)")
    monitor.add_argument("--migrate", action="store_true",
                         help="enable seeded CPU migration of the "
                              "monitored task (requires --cores >= 2)")
    monitor.add_argument("--overhead-budget", type=float, default=None,
                         metavar="PCT",
                         help="overhead budget for --adapt as a percentage "
                              "of victim cycles, in (0, 100] (default 2)")
    monitor.add_argument("--save-json", default=None, metavar="PATH",
                         help="write the full report as JSON")
    monitor.add_argument("--save-csv", default=None, metavar="PATH",
                         help="write the sample series as CSV (K-LEB log layout)")
    monitor.add_argument("--faults", type=_faults_arg, default=None,
                         metavar="SPEC", help=_FAULTS_HELP)
    _add_obs_args(monitor)
    return parser


def _run_experiment(experiment_id: str, seed: int,
                    runs: Optional[int], period_ms: Optional[float],
                    jobs: Optional[int] = None,
                    faults: Optional[FaultPlan] = None) -> str:
    entry = EXPERIMENTS[experiment_id]
    kwargs = {"seed": seed}
    ledger: Optional[RunLedger] = None
    if experiment_id in _PARALLEL_EXPERIMENTS:
        kwargs["jobs"] = jobs  # None = all cores (resolve_jobs)
        if faults is not None:
            ledger = RunLedger()
            kwargs["faults"] = faults
            kwargs["fault_ledger"] = ledger
    elif faults is not None:
        raise SystemExit(
            f"--faults is only supported for trial-population experiments "
            f"({', '.join(sorted(_PARALLEL_EXPERIMENTS))}), "
            f"not {experiment_id!r}"
        )
    if runs is not None:
        key = {"table1": "trials", "fig4": "trials",
               "fig6": "rounds"}.get(experiment_id, "runs")
        if experiment_id in ("fig7", "fig9", "crosscheck", "multiplex",
                             "adaptive", "smp"):
            pass  # single-run experiments
        else:
            kwargs[key] = runs
    if period_ms is not None:
        kwargs["period_ns"] = ms(period_ms)
    result = entry.run(**kwargs)
    output = entry.render(result)
    if ledger is not None:
        output += "\n\n" + ledger.render()
    return output


def _cmd_list() -> int:
    rows = [[entry.experiment_id, entry.description]
            for entry in EXPERIMENTS.values()]
    print(text_table(["id", "description"], rows,
                     title="Reproducible tables and figures"))
    return 0


_KIND_FLAGS = {"arch": hw_events.EventKind.ARCHITECTURAL,
               "uarch": hw_events.EventKind.MICROARCHITECTURAL}


def _catalogue_table(kind: Optional[str] = None) -> str:
    """The event catalogue grouped by kind, as printable text."""
    sections = []
    for flag, event_kind in _KIND_FLAGS.items():
        if kind is not None and flag != kind:
            continue
        group = hw_events.events_by_kind()[event_kind]
        rows = [[event.name, f"{event.code:#06x}",
                 f"{event.counter_mask:#06b}"
                 if event.fixed_counter is None
                 else f"fixed{event.fixed_counter}",
                 event.description]
                for event in group]
        sections.append(text_table(
            ["event", "code", "counters", "description"], rows,
            title=f"{event_kind.value} events ({len(rows)})"))
    return "\n\n".join(sections)


def _cmd_list_events(args: argparse.Namespace) -> int:
    print(_catalogue_table(args.kind))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    print(_run_experiment(args.experiment, args.seed, args.runs,
                          args.period_ms, jobs=args.jobs,
                          faults=args.faults))
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    for experiment_id, entry in EXPERIMENTS.items():
        kwargs = dict(_QUICK_KWARGS[experiment_id]) if args.quick else {}
        kwargs["seed"] = args.seed
        ledger: Optional[RunLedger] = None
        if experiment_id in _PARALLEL_EXPERIMENTS:
            kwargs["jobs"] = args.jobs
            if args.faults is not None:
                # Faults apply only to trial populations; single-run
                # comparisons run clean.
                ledger = RunLedger()
                kwargs["faults"] = args.faults
                kwargs["fault_ledger"] = ledger
        print(entry.render(entry.run(**kwargs)))
        if ledger is not None:
            print("\n" + ledger.render())
        print("\n" + "#" * 72 + "\n")
    return 0


def _cmd_monitor_smp(args: argparse.Namespace, program, events) -> int:
    """One monitored trial on an N-core cluster (k-leb only)."""
    from repro.errors import ExperimentError
    from repro.experiments.smp import run_monitored_smp

    try:
        result = run_monitored_smp(
            program, events=events, period_ns=ms(args.period_ms),
            seed=args.seed, cores=args.cores, sockets=args.sockets,
            migrate=args.migrate, fault_plan=args.faults,
        )
    except (PMUError, ToolError, ExperimentError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = result.report
    print(f"workload : {program.name}")
    print(f"tool     : {report.tool} @ {report.period_ns / 1e6:g} ms")
    print(f"topology : {args.cores} core(s), {args.sockets} socket(s)"
          f"{', migration on' if args.migrate else ''}")
    print(f"wall time: {result.wall_ns / 1e9:.6f} s")
    print(f"samples  : {report.sample_count}")
    print(f"migrations: {report.metadata.get('smp_migrations', 0):g}")
    rows = [[name, f"{value:,.0f}"]
            for name, value in sorted(report.totals.items())]
    print(text_table(["event", "total"], rows))
    per_cpu = [[f"cpu{cpu}"] + [
        f"{report.metadata.get(f'smp_cpu{cpu}:{name}', 0.0):,.0f}"
        for name in events]
        for cpu in range(args.cores)]
    print(text_table(["core"] + list(events), per_cpu,
                     title="per-core victim totals"))
    for socket, bandwidth in enumerate(result.uncore_bandwidth_bytes_per_sec):
        print(f"uncore[{socket}]: {bandwidth / 1e6:,.1f} MB/s smoothed "
              f"({', '.join(f'{name}={value:,d}' for name, value in sorted(result.uncore_totals[socket].items()))})")
    series = deltas(samples_to_series(report.samples))
    for name in events:
        if len(series) and name in series.values:
            print(f"{name:16s} {sparkline(series.event(name))}")
    if args.save_json:
        from repro.io import save_report_json

        save_report_json(report, args.save_json)
        print(f"report written to {args.save_json}")
    if args.save_csv:
        from repro.io import save_samples_csv

        save_samples_csv(report, args.save_csv)
        print(f"samples written to {args.save_csv}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    program = _WORKLOADS[args.workload]()
    events = tuple(part.strip() for part in args.events.split(",") if part)
    try:
        for name in events:
            hw_events.lookup(name)
    except PMUError as error:
        # A typo'd event name gets the suggestion plus the catalogue
        # grouped by kind, not a stack trace.
        print(f"error: {error}\n", file=sys.stderr)
        print(_catalogue_table(), file=sys.stderr)
        return 2
    if args.multiplex is not None and args.multiplex <= 0:
        print(f"error: --multiplex must be a positive rotation period in "
              f"milliseconds, got {args.multiplex:g}", file=sys.stderr)
        return 2
    if args.overhead_budget is not None:
        if not args.adapt:
            print("error: --overhead-budget requires --adapt",
                  file=sys.stderr)
            return 2
        if not 0.0 < args.overhead_budget <= 100.0:
            print(f"error: --overhead-budget must be in (0, 100] percent, "
                  f"got {args.overhead_budget:g}", file=sys.stderr)
            return 2
    if (args.multiplex is not None or args.adapt) and args.tool != "k-leb":
        flag = "--multiplex" if args.multiplex is not None else "--adapt"
        print(f"error: {flag} is only supported by the k-leb tool, "
              f"not {args.tool!r}", file=sys.stderr)
        return 2
    if args.cores is None:
        if args.migrate:
            print("error: --migrate requires --cores", file=sys.stderr)
            return 2
        if args.sockets != 1:
            print("error: --sockets requires --cores", file=sys.stderr)
            return 2
    else:
        # A non-positive geometry must die with a diagnostic, not a
        # stack trace (and never a silently desynchronized cluster).
        if args.cores < 1:
            print(f"error: --cores must be >= 1, got {args.cores}",
                  file=sys.stderr)
            return 2
        if args.sockets < 1:
            print(f"error: --sockets must be >= 1, got {args.sockets}",
                  file=sys.stderr)
            return 2
        if args.cores % args.sockets:
            print(f"error: --cores ({args.cores}) must divide evenly "
                  f"across --sockets ({args.sockets})", file=sys.stderr)
            return 2
        if args.migrate and args.cores < 2:
            print("error: --migrate needs --cores >= 2", file=sys.stderr)
            return 2
        if args.tool != "k-leb":
            print(f"error: --cores is only supported by the k-leb tool, "
                  f"not {args.tool!r}", file=sys.stderr)
            return 2
        if args.multiplex is not None or args.adapt:
            flag = "--multiplex" if args.multiplex is not None else "--adapt"
            print(f"error: {flag} is not supported on an SMP session "
                  f"(--cores)", file=sys.stderr)
            return 2
        return _cmd_monitor_smp(args, program, events)
    if args.multiplex is not None or args.adapt:
        from repro.control import ControlConfig
        from repro.tools.kleb.tool import KLebTool

        control = None
        if args.adapt:
            control = (ControlConfig() if args.overhead_budget is None
                       else ControlConfig(
                           overhead_budget_percent=args.overhead_budget))
        tool = KLebTool(
            multiplex_period_ns=(ms(args.multiplex)
                                 if args.multiplex is not None else None),
            control=control,
        )
    else:
        tool = create_tool(args.tool)
    injector: Optional[FaultInjector] = None
    if args.faults is not None:
        # A single in-process trial: kernel-layer faults apply; the
        # trial-level crash/timeout knobs only matter under `run`.
        injector = FaultInjector(args.faults)
    try:
        result = run_monitored(
            program, tool, events=events,
            period_ns=ms(args.period_ms), seed=args.seed, faults=injector,
        )
    except (PMUError, ToolError) as error:
        # Unsatisfiable counter constraints / too many events without
        # --multiplex surface as a one-line diagnostic.
        raise SystemExit(f"error: {error}") from None
    report = result.report
    print(f"workload : {program.name}")
    print(f"tool     : {report.tool} @ {report.period_ns / 1e6:g} ms")
    print(f"wall time: {result.wall_ns / 1e9:.6f} s")
    print(f"samples  : {report.sample_count}")
    rows = [[name, f"{value:,.0f}"]
            for name, value in sorted(report.totals.items())]
    print(text_table(["event", "total"], rows))
    series = deltas(samples_to_series(report.samples))
    for name in events:
        if len(series) and name in series.values:
            print(f"{name:16s} {sparkline(series.event(name))}")
    if report.control is not None:
        meta = report.metadata
        print(f"\nadaptive control: "
              f"{meta.get('adaptive_observations', 0):g} observations, "
              f"period {meta.get('adaptive_min_period_ns', 0) / 1e6:g}.."
              f"{meta.get('adaptive_max_period_ns', 0) / 1e6:g} ms, "
              f"overhead {meta.get('adaptive_overhead_percent', 0):.2f}% "
              f"(budget {meta.get('adaptive_budget_percent', 0):g}%), "
              f"final level {meta.get('adaptive_final_level', 0):g}")
        from repro.control import ControlLedger

        ledger_view = ControlLedger.from_rows(report.control)
        if len(ledger_view):
            print(ledger_view.render())
    if injector is not None:
        print(f"\ninjected faults: {len(injector.ledger.records)}")
        for record in injector.ledger.records[:20]:
            print(f"  {record.time_ns:>14,d} ns  {record.site:10s} "
                  f"{record.kind}")
        if len(injector.ledger.records) > 20:
            print(f"  ... and {len(injector.ledger.records) - 20} more")
        recovery_keys = ("timer_misses", "ioctl_retries", "read_retries",
                         "recovery_reads", "drain_shrinks",
                         "drain_restores", "starved_cycles")
        recovered = {key: report.metadata[key] for key in recovery_keys
                     if report.metadata.get(key)}
        if recovered:
            print("recovery: " + ", ".join(
                f"{key}={value:g}" for key, value in recovered.items()
            ))
        gaps = find_gaps(samples_to_series(report.samples),
                         report.period_ns)
        if gaps:
            total_missing = sum(gap.missing for gap in gaps)
            print(f"sample gaps: {len(gaps)} "
                  f"(~{total_missing} samples missing)")
            for gap in gaps[:10]:
                print(f"  {gap.start_ns:>14,d} -> {gap.end_ns:,d} ns "
                      f"(~{gap.missing} missing)")
    if args.save_json:
        from repro.io import save_report_json

        save_report_json(report, args.save_json)
        print(f"report written to {args.save_json}")
    if args.save_csv:
        from repro.io import save_samples_csv

        save_samples_csv(report, args.save_csv)
        print(f"samples written to {args.save_csv}")
    return 0


def _arm_live_plane(recorder, args, flight, dump_path: str):
    """Build and start the live telemetry plane around ``recorder``.

    Returns ``(bus, server)`` — both started; the caller owns shutdown.
    The bus (and its fork-inherited queue) must exist before any worker
    pool forks, which is why this runs before the command dispatch.
    """
    from repro.obs.live import (
        LivePublisher,
        LiveServer,
        LiveState,
        SnapshotBus,
        Watchdog,
    )
    from repro.obs.live.server import DEFAULT_PORT

    label = str(getattr(args, "experiment", None) or args.command)
    # Seed the state with the pre-registered all-zero registry so
    # /metrics exposes every family from the very first scrape.
    state = LiveState(base_metrics=recorder.registry.to_json(),
                      run_label=label)
    watchdog = Watchdog(
        flight=flight,
        on_trip=lambda check, detail: flight.write(
            dump_path, f"watchdog:{check}", {"detail": detail}),
    )
    state.add_listener(watchdog.observe)

    def _dump_on_quarantine(snapshot) -> None:
        if snapshot.status == "quarantined":
            flight.write(dump_path,
                         f"quarantine:trial-{snapshot.trial}")

    state.add_listener(_dump_on_quarantine)
    bus = SnapshotBus(state)
    publisher = LivePublisher(bus)
    publisher.bind(recorder)
    recorder.publisher = publisher
    bus.start()
    server = None
    if getattr(args, "live", None) is not None:
        port = args.live if args.live >= 0 else DEFAULT_PORT
        server = LiveServer(state, watchdog, port=port)
        server.start()
        print(f"live telemetry at {server.url}  "
              f"(/metrics /healthz /runs; `python -m repro.obs.top"
              f" --url {server.url}`)")
    return bus, server


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "list-events":
        return _cmd_list_events(args)
    # Observability is off (null recorder, zero cost) unless asked for.
    wants_artifacts = bool(getattr(args, "trace", None)
                           or getattr(args, "metrics", None))
    live_armed = (getattr(args, "live", None) is not None
                  or getattr(args, "flight", None) is not None)
    recorder = None
    flight = bus = server = None
    flight_dump_path = getattr(args, "flight", None) or "repro.flight.json"
    if wants_artifacts or live_armed:
        from repro.obs import hooks as obs_hooks

        if live_armed:
            from repro.obs.live import FlightRecorder

            flight = FlightRecorder()
        # Pure --live/--flight runs keep the tracer non-retaining: the
        # flight ring sees every event at O(ring) memory, nothing more.
        recorder = obs_hooks.Recorder(trace=wants_artifacts, metrics=True,
                                      flight=flight)
        if live_armed:
            bus, server = _arm_live_plane(recorder, args, flight,
                                          flight_dump_path)
        obs_hooks.install(recorder)
    try:
        if args.command == "run":
            status = _cmd_run(args)
        elif args.command == "run-all":
            status = _cmd_run_all(args)
        elif args.command == "monitor":
            status = _cmd_monitor(args)
        else:
            raise AssertionError("unreachable")
    except BaseException as error:
        if flight is not None:
            # The post-mortem the flight recorder exists for.
            flight.write(flight_dump_path, "crash",
                         {"error": repr(error)})
            print(f"flight ring written to {flight_dump_path} (crash)",
                  file=sys.stderr)
        raise
    finally:
        if bus is not None:
            bus.stop()
        if server is not None:
            server.stop()
        if recorder is not None:
            from repro.obs import hooks as obs_hooks

            obs_hooks.reset()
    if recorder is not None and status == 0:
        if args.trace:
            recorder.write_trace(args.trace)
            print(f"trace written to {args.trace}")
        if args.metrics:
            recorder.write_metrics(args.metrics)
            print(f"metrics written to {args.metrics}")
        if getattr(args, "flight", None):
            flight.write(args.flight, "run-complete")
            print(f"flight ring written to {args.flight}")
    return status


if __name__ == "__main__":
    sys.exit(main())
