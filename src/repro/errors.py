"""Exception hierarchy for the K-LEB reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with one clause while still being able
to distinguish hardware-, kernel-, and tool-level failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Generic failure inside the discrete-event simulation engine."""


class ClockError(SimulationError):
    """An attempt to move the simulated clock backwards or misuse it."""


class HardwareError(ReproError):
    """Base class for errors in the simulated hardware layer."""


class MSRError(HardwareError):
    """Access to an undefined or reserved model-specific register."""


class PMUError(HardwareError):
    """Misconfiguration or misuse of the performance monitoring unit."""


class ScheduleError(PMUError):
    """An event set that cannot be mapped onto legal counters."""


class CacheConfigError(HardwareError):
    """An invalid cache geometry (non power-of-two sets, zero ways, ...)."""


class KernelError(ReproError):
    """Base class for errors in the simulated kernel."""


class ProcessError(KernelError):
    """Invalid process state transition or unknown PID."""


class SchedulerError(KernelError):
    """Scheduler invariant violation."""


class ModuleError(KernelError):
    """Kernel-module loading or lifecycle failure."""


class TransientModuleError(ModuleError):
    """An injected, retryable device failure (fault injection).

    Raised only by fault-injection hooks; callers such as the K-LEB
    controller treat it as transient and retry with backoff.
    """


class SyscallError(KernelError):
    """A simulated system call failed (bad arguments, bad state)."""


class TimerError(KernelError):
    """Invalid timer configuration (e.g. zero or negative period)."""


class WorkloadError(ReproError):
    """Malformed workload definition or block stream misuse."""


class ToolError(ReproError):
    """Base class for monitoring-tool failures."""


class ToolUnsupportedError(ToolError):
    """The tool cannot run in the requested environment.

    Mirrors real-world gates such as LiMiT requiring a patched kernel or
    PAPI requiring the monitored program's source code.
    """


class ExperimentError(ReproError):
    """An experiment was configured or executed incorrectly."""


class FaultError(ReproError):
    """Invalid fault-injection plan or ``--faults`` spec."""


class ControlError(ReproError):
    """Invalid adaptive-control configuration or controller misuse."""


class TrialCrashError(ExperimentError):
    """A simulated worker crash injected into a runner trial."""
