"""K-LEB reproduction: high-frequency performance monitoring via
architectural event measurement (Woralert et al., IISWC 2020).

The package layers:

* :mod:`repro.sim` — nanosecond discrete-event simulation core;
* :mod:`repro.hw` — PMU, MSRs, caches, core, machine presets;
* :mod:`repro.kernel` — scheduler, kprobes, HRTimer, syscalls, modules;
* :mod:`repro.workloads` — LINPACK, matmul/dgemm, Docker, Meltdown;
* :mod:`repro.tools` — K-LEB plus perf stat/record, PAPI, LiMiT;
* :mod:`repro.analysis` — MPKI/GFLOPS, phases, overhead, accuracy;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro.experiments import run_monitored
    from repro.tools import create_tool
    from repro.workloads import TripleLoopMatmul
    from repro.sim import ms

    result = run_monitored(TripleLoopMatmul(1024), create_tool("k-leb"),
                           events=("LOADS", "STORES"), period_ns=ms(10))
    print(result.report.totals)
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
