"""Fault ledgers: what was injected, where, and how it was absorbed.

Measurement infrastructure fails in ways that silently corrupt results
(Becker & Chakraborty); the ledger is the antidote — every injected
fault and every recovery action is recorded as a plain-data
:class:`FaultRecord`, rolled up per trial, and reported with the run.
Records are ordinary dataclasses of ints and strings so they pickle
across worker-pool boundaries and compare bit-for-bit between serial
and parallel runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs import hooks as _obs_hooks


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault or recovery action.

    ``time_ns`` is simulated time for in-kernel sites and 0 for
    runner-level events (which happen outside any simulation).
    """

    time_ns: int
    site: str        # "hrtimer" | "ioctl" | "read" | "ringbuffer" | "pmu" | "control" | "runner"
    kind: str        # e.g. "missed-deadline", "transient-failure", "backoff"
    detail: str = ""


class FaultLedger:
    """Append-only record stream for one kernel/injector instance."""

    def __init__(self) -> None:
        self.records: List[FaultRecord] = []
        self._obs = _obs_hooks.active()

    def record(self, time_ns: int, site: str, kind: str,
               detail: str = "") -> None:
        self.records.append(FaultRecord(time_ns=int(time_ns), site=site,
                                        kind=kind, detail=detail))
        if self._obs is not None:
            self._obs.fault_landed(int(time_ns), site, kind)

    def count(self, site: Optional[str] = None,
              kind: Optional[str] = None) -> int:
        return sum(
            1 for record in self.records
            if (site is None or record.site == site)
            and (kind is None or record.kind == kind)
        )

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class TrialLedger:
    """Per-trial roll-up: attempts, outcome, and every fault record."""

    trial: int
    seed: int
    attempts: int = 1
    quarantined: bool = False
    error: str = ""
    records: List[FaultRecord] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return len(self.records)


class RunLedger:
    """Fault ledger for a whole trial population.

    Filled by :func:`repro.experiments.runner.run_trials` when a fault
    plan is active; rendered by the CLI after the experiment output.
    """

    def __init__(self) -> None:
        self.trials: List[TrialLedger] = []

    def add(self, entry: TrialLedger) -> None:
        self.trials.append(entry)

    @property
    def quarantined(self) -> List[TrialLedger]:
        return [entry for entry in self.trials if entry.quarantined]

    @property
    def retried(self) -> List[TrialLedger]:
        return [entry for entry in self.trials
                if entry.attempts > 1 and not entry.quarantined]

    def total(self, site: Optional[str] = None,
              kind: Optional[str] = None) -> int:
        return sum(
            1 for entry in self.trials for record in entry.records
            if (site is None or record.site == site)
            and (kind is None or record.kind == kind)
        )

    def site_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.trials:
            for record in entry.records:
                counts[record.site] = counts.get(record.site, 0) + 1
        return counts

    def render(self) -> str:
        """Human-readable summary for the CLI."""
        lines = ["Fault ledger"]
        lines.append(
            f"  trials: {len(self.trials)}  retried: {len(self.retried)}  "
            f"quarantined: {len(self.quarantined)}"
        )
        counts = self.site_counts()
        if counts:
            per_site = "  ".join(
                f"{site}={count}" for site, count in sorted(counts.items())
            )
            lines.append(f"  injected by site: {per_site}")
        else:
            lines.append("  injected by site: (none)")
        for entry in self.quarantined:
            lines.append(
                f"  quarantined trial {entry.trial} (seed {entry.seed}) "
                f"after {entry.attempts} attempts: {entry.error}"
            )
        for entry in self.retried:
            lines.append(
                f"  trial {entry.trial} recovered after "
                f"{entry.attempts} attempts"
            )
        return "\n".join(lines)
