"""Deterministic fault plans.

A :class:`FaultPlan` is pure configuration: an injection probability
and magnitude for every fault site the simulation exposes, plus the
seed that makes schedules reproducible.  The plan itself never draws
randomness — :class:`~repro.faults.inject.FaultInjector` derives
per-trial streams from ``(plan.seed, trial)`` via
:mod:`repro.sim.rng`, so identical plans produce bit-identical fault
schedules regardless of run order or worker count.

Fault sites (see ISSUE 2 / paper §III "safety mechanism"):

* HRTimer: extra fire latency and missed deadlines;
* K-LEB device interface: transient ``ioctl``/``read`` failures;
* ring buffer: capacity squeezes (memory pressure on the sample pool);
* controller: forced starvation (drain cycles stretched);
* PMU: counter preloads that force 48-bit wraparound mid-run;
* runner: trial-level worker crashes, timeouts, and persistent
  failures that must be quarantined.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from repro.errors import FaultError
from repro.sim.rng import RngStreams

#: Attempts that always fail — marks a persistently-failing trial.
ALWAYS_FAILS = 1_000_000


@dataclass(frozen=True)
class TrialFate:
    """What the plan has in store for one trial of the runner."""

    kind: Optional[str]        # None | "crash" | "timeout" | "persistent"
    failing_attempts: int      # attempts that fail before one succeeds

    @property
    def benign(self) -> bool:
        return self.kind is None


BENIGN_FATE = TrialFate(kind=None, failing_attempts=0)

# CLI spec key -> (field name, parser).  Probabilities are [0, 1].
_SPEC_KEYS = {
    "seed": ("seed", int),
    "timer_jitter": ("timer_extra_jitter_prob", float),
    "timer_jitter_ns": ("timer_extra_jitter_ns", int),
    "timer_miss": ("timer_miss_prob", float),
    "ioctl": ("ioctl_failure_prob", float),
    "read": ("read_failure_prob", float),
    "squeeze": ("squeeze_prob", float),
    "squeeze_factor": ("squeeze_factor", float),
    "squeeze_fires": ("squeeze_fires", int),
    "starve": ("starve_prob", float),
    "starve_factor": ("starve_factor", float),
    "pmu_wrap": ("pmu_wrap_margin", int),
    "control_sensor": ("control_sensor_prob", float),
    "control_freeze": ("control_freeze_prob", float),
    "control_freeze_cycles": ("control_freeze_cycles", int),
    "crash": ("trial_crash_prob", float),
    "timeout": ("trial_timeout_prob", float),
    "persistent": ("trial_persistent_prob", float),
}


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic fault-injection schedule configuration."""

    seed: int = 0

    # HRTimer faults (kernel/hrtimer.py)
    timer_extra_jitter_prob: float = 0.0   # per fire
    timer_extra_jitter_ns: int = 50_000    # latency scale when injected
    timer_miss_prob: float = 0.0           # per fire: handler never runs

    # Device-interface faults (tools/kleb/module.py)
    ioctl_failure_prob: float = 0.0        # per ioctl, transient
    read_failure_prob: float = 0.0         # per read, transient

    # Ring-buffer capacity squeezes (kernel/ringbuffer.py)
    squeeze_prob: float = 0.0              # per timer fire: episode starts
    squeeze_factor: float = 0.25           # effective capacity fraction
    squeeze_fires: int = 200               # episode length in fires

    # Forced controller starvation (tools/kleb/controller.py)
    starve_prob: float = 0.0               # per drain cycle
    starve_factor: float = 8.0             # sleep multiplier when starved

    # PMU counter wraparound (hw/pmu.py): preload programmable counters
    # to 2^48 - margin so they wrap early in the run.
    pmu_wrap_margin: Optional[int] = None

    # Adaptive-control faults (control/controller.py sensor path):
    # glitched sensor readings the controller must discard, and frozen
    # decision windows where the loop cannot act.
    control_sensor_prob: float = 0.0       # per drain cycle: reading lost
    control_freeze_prob: float = 0.0       # per drain cycle: episode starts
    control_freeze_cycles: int = 8         # frozen episode length in cycles

    # Trial-level faults (experiments/runner.py, experiments/parallel.py)
    trial_crash_prob: float = 0.0          # transient worker crash
    trial_timeout_prob: float = 0.0        # one attempt blows its deadline
    trial_persistent_prob: float = 0.0     # every attempt fails: quarantine

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def kernel_active(self) -> bool:
        """Any in-simulation fault site enabled (needs an injector)."""
        return (
            self.timer_extra_jitter_prob > 0
            or self.timer_miss_prob > 0
            or self.ioctl_failure_prob > 0
            or self.read_failure_prob > 0
            or self.squeeze_prob > 0
            or self.starve_prob > 0
            or self.pmu_wrap_margin is not None
            or self.control_sensor_prob > 0
            or self.control_freeze_prob > 0
        )

    @property
    def trial_active(self) -> bool:
        """Any trial-level fault enabled (needs the retry runner)."""
        return (
            self.trial_crash_prob > 0
            or self.trial_timeout_prob > 0
            or self.trial_persistent_prob > 0
        )

    @property
    def active(self) -> bool:
        return self.kernel_active or self.trial_active

    def validate(self) -> None:
        for spec in fields(self):
            if spec.name.endswith("_prob"):
                value = getattr(self, spec.name)
                if not 0.0 <= value <= 1.0:
                    raise FaultError(
                        f"{spec.name} must be in [0, 1], got {value}"
                    )
        if self.squeeze_factor <= 0 or self.squeeze_factor > 1:
            raise FaultError(
                f"squeeze_factor must be in (0, 1], got {self.squeeze_factor}"
            )
        if self.squeeze_fires <= 0:
            raise FaultError(
                f"squeeze_fires must be positive, got {self.squeeze_fires}"
            )
        if self.starve_factor < 1.0:
            raise FaultError(
                f"starve_factor must be >= 1, got {self.starve_factor}"
            )
        if self.timer_extra_jitter_ns < 0:
            raise FaultError("timer_extra_jitter_ns must be non-negative")
        if self.pmu_wrap_margin is not None and self.pmu_wrap_margin <= 0:
            raise FaultError(
                f"pmu_wrap_margin must be positive, got {self.pmu_wrap_margin}"
            )
        if self.control_freeze_cycles <= 0:
            raise FaultError(
                f"control_freeze_cycles must be positive, "
                f"got {self.control_freeze_cycles}"
            )
        total = (self.trial_crash_prob + self.trial_timeout_prob
                 + self.trial_persistent_prob)
        if total > 1.0:
            raise FaultError(
                f"trial fault probabilities sum to {total}, must be <= 1"
            )

    # ------------------------------------------------------------------
    # CLI spec parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``key=value,key=value`` CLI spec.

        Keys: ``seed``, ``timer_jitter``, ``timer_jitter_ns``,
        ``timer_miss``, ``ioctl``, ``read``, ``squeeze``,
        ``squeeze_factor``, ``squeeze_fires``, ``starve``,
        ``starve_factor``, ``pmu_wrap``, ``control_sensor``,
        ``control_freeze``, ``control_freeze_cycles``, ``crash``,
        ``timeout``, ``persistent``.  Example:
        ``seed=7,ioctl=0.05,starve=0.2``.
        """
        values = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise FaultError(
                    f"fault spec entry {part!r} is not key=value"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in _SPEC_KEYS:
                known = ", ".join(sorted(_SPEC_KEYS))
                raise FaultError(
                    f"unknown fault spec key {key!r} (known: {known})"
                )
            field_name, convert = _SPEC_KEYS[key]
            try:
                values[field_name] = convert(raw.strip())
            except ValueError as error:
                raise FaultError(
                    f"bad value for fault spec key {key!r}: {raw!r}"
                ) from error
        plan = cls(**values)
        plan.validate()
        return plan

    def describe(self) -> str:
        """Short human-readable summary of the enabled fault sites."""
        parts = [f"seed={self.seed}"]
        for key, (field_name, _) in _SPEC_KEYS.items():
            if key == "seed":
                continue
            value = getattr(self, field_name)
            default = getattr(type(self)(), field_name)
            if value != default:
                parts.append(f"{key}={value}")
        return ",".join(parts)

    # ------------------------------------------------------------------
    # Trial-level schedule
    # ------------------------------------------------------------------
    def trial_fate(self, trial: int) -> TrialFate:
        """The (deterministic) trial-level fault drawn for ``trial``.

        A pure function of ``(seed, trial)``: recomputing it for a
        retry attempt, or in a different worker process, always yields
        the same answer.
        """
        if not self.trial_active:
            return BENIGN_FATE
        rng = RngStreams(self.seed).fork(trial).stream("trial-fate")
        draw = float(rng.uniform())
        if draw < self.trial_persistent_prob:
            return TrialFate(kind="persistent", failing_attempts=ALWAYS_FAILS)
        draw -= self.trial_persistent_prob
        if draw < self.trial_crash_prob:
            # One or two failing attempts — always within the runner's
            # retry budget, so transient crashes recover.
            failing = 1 + int(float(rng.uniform()) < 0.5)
            return TrialFate(kind="crash", failing_attempts=failing)
        draw -= self.trial_crash_prob
        if draw < self.trial_timeout_prob:
            return TrialFate(kind="timeout", failing_attempts=1)
        return BENIGN_FATE
