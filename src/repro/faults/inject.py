"""The fault injector: consulted at every hook point in the stack.

One :class:`FaultInjector` is created per trial attempt and handed to
the :class:`~repro.kernel.kernel.Kernel`; hook points (HRTimer fires,
K-LEB ioctl/read entry, buffer pushes, controller drain cycles) ask it
whether a fault strikes *now*.  All randomness comes from the
injector's own :class:`~repro.sim.rng.RngStreams` family derived from
``(plan.seed, trial)`` — never from the kernel's experiment streams —
so enabling fault injection does not perturb a single draw of the
underlying simulation, and the same plan yields a bit-identical fault
schedule on every run and under any worker count.

With an inert plan every hook returns its benign answer without
touching an rng stream, so the no-faults path costs nothing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.faults.ledger import FaultLedger
from repro.faults.plan import FaultPlan
from repro.hw.pmu import COUNTER_WIDTH_BITS
from repro.sim.rng import RngStreams

_COUNTER_WRAP = 1 << COUNTER_WIDTH_BITS

#: Plan with every fault site disabled — the default for every kernel.
INERT_PLAN = FaultPlan()


class FaultInjector:
    """Per-trial deterministic fault source plus its ledger."""

    def __init__(self, plan: FaultPlan = INERT_PLAN, trial: int = 0) -> None:
        plan.validate()
        self.plan = plan
        self.trial = trial
        self.ledger = FaultLedger()
        self._rng = RngStreams(plan.seed).fork(trial)
        # Active capacity-squeeze episode, if any.
        self._squeeze_fires_left = 0
        self._squeeze_capacity: Optional[int] = None
        # Active control decision-freeze episode, if any.
        self._freeze_cycles_left = 0

    def _stream(self, name: str) -> np.random.Generator:
        return self._rng.stream(f"fault:{name}")

    # ------------------------------------------------------------------
    # HRTimer hooks (kernel/hrtimer.py)
    # ------------------------------------------------------------------
    def timer_extra_jitter_ns(self, now: int) -> int:
        """Extra fire latency injected on top of the model's jitter."""
        probability = self.plan.timer_extra_jitter_prob
        if probability <= 0:
            return 0
        rng = self._stream("timer-jitter")
        if float(rng.uniform()) >= probability:
            return 0
        extra = int(rng.exponential(self.plan.timer_extra_jitter_ns))
        if extra <= 0:
            return 0
        self.ledger.record(now, "hrtimer", "extra-jitter", f"+{extra}ns")
        return extra

    def timer_missed(self, now: int) -> bool:
        """True when this fire's handler is swallowed (masked-IRQ window)."""
        probability = self.plan.timer_miss_prob
        if probability <= 0:
            return False
        if float(self._stream("timer-miss").uniform()) >= probability:
            return False
        self.ledger.record(now, "hrtimer", "missed-deadline")
        return True

    # ------------------------------------------------------------------
    # Device-interface hooks (tools/kleb/module.py)
    # ------------------------------------------------------------------
    def ioctl_fails(self, command: str, now: int) -> bool:
        probability = self.plan.ioctl_failure_prob
        if probability <= 0:
            return False
        if float(self._stream("ioctl").uniform()) >= probability:
            return False
        self.ledger.record(now, "ioctl", "transient-failure", command)
        return True

    def read_fails(self, now: int) -> bool:
        probability = self.plan.read_failure_prob
        if probability <= 0:
            return False
        if float(self._stream("read").uniform()) >= probability:
            return False
        self.ledger.record(now, "read", "transient-failure")
        return True

    # ------------------------------------------------------------------
    # Ring-buffer hooks (kernel/ringbuffer.py via the module's fire path)
    # ------------------------------------------------------------------
    def squeeze_capacity(self, nominal_capacity: int,
                         now: int) -> Optional[int]:
        """Effective buffer capacity for this timer fire.

        Returns the squeezed capacity while an episode is active, or
        ``None`` when the buffer should run at nominal capacity.
        Episodes start with probability ``squeeze_prob`` per fire and
        last ``squeeze_fires`` fires.
        """
        if self.plan.squeeze_prob <= 0:
            return None
        if self._squeeze_fires_left > 0:
            self._squeeze_fires_left -= 1
            if self._squeeze_fires_left == 0:
                self.ledger.record(now, "ringbuffer", "squeeze-released")
                self._squeeze_capacity = None
                return None
            return self._squeeze_capacity
        if float(self._stream("squeeze").uniform()) < self.plan.squeeze_prob:
            capacity = max(1, int(nominal_capacity * self.plan.squeeze_factor))
            self._squeeze_capacity = capacity
            self._squeeze_fires_left = self.plan.squeeze_fires
            self.ledger.record(
                now, "ringbuffer", "squeeze",
                f"capacity {nominal_capacity} -> {capacity} "
                f"for {self.plan.squeeze_fires} fires",
            )
            return capacity
        return None

    # ------------------------------------------------------------------
    # Controller hooks (tools/kleb/controller.py)
    # ------------------------------------------------------------------
    def starve_factor(self, now: int) -> float:
        """Multiplier applied to this drain cycle's sleep (1.0 = none)."""
        probability = self.plan.starve_prob
        if probability <= 0:
            return 1.0
        if float(self._stream("starve").uniform()) >= probability:
            return 1.0
        self.ledger.record(now, "controller", "starved-cycle",
                           f"x{self.plan.starve_factor:g}")
        return self.plan.starve_factor

    # ------------------------------------------------------------------
    # Adaptive-control hooks (control/controller.py via the K-LEB
    # controller's observation path)
    # ------------------------------------------------------------------
    def control_sensor_glitch(self, now: int) -> bool:
        """True when this drain cycle's sensor reading is corrupted.

        The controller discards the reading instead of folding garbage
        into its EWMAs — a lost observation, not a wrong decision.
        """
        probability = self.plan.control_sensor_prob
        if probability <= 0:
            return False
        if float(self._stream("control-sensor").uniform()) >= probability:
            return False
        self.ledger.record(now, "control", "sensor-glitch")
        return True

    def control_frozen(self, now: int) -> bool:
        """True while a decision-freeze episode is active.

        Episodes start with probability ``control_freeze_prob`` per
        drain cycle and last ``control_freeze_cycles`` cycles; while
        frozen the loop cannot observe or act (modelling a controller
        process descheduled across its decision window).
        """
        if self.plan.control_freeze_prob <= 0:
            return False
        if self._freeze_cycles_left > 0:
            self._freeze_cycles_left -= 1
            if self._freeze_cycles_left == 0:
                self.ledger.record(now, "control", "freeze-released")
                return False
            return True
        if (float(self._stream("control-freeze").uniform())
                < self.plan.control_freeze_prob):
            self._freeze_cycles_left = self.plan.control_freeze_cycles
            self.ledger.record(
                now, "control", "decision-freeze",
                f"{self.plan.control_freeze_cycles} cycles",
            )
            return True
        return False

    # ------------------------------------------------------------------
    # PMU hooks (hw/pmu.py via the module's config path)
    # ------------------------------------------------------------------
    def counter_preload(self, index: int, now: int) -> Optional[int]:
        """Initial counter value forcing an early 48-bit wraparound."""
        margin = self.plan.pmu_wrap_margin
        if margin is None:
            return None
        value = _COUNTER_WRAP - margin
        self.ledger.record(now, "pmu", "wrap-preload",
                           f"counter {index} -> 2^48-{margin}")
        return value
