"""Seeded, deterministic fault injection and the degradation paths it
exercises.

The paper's §III safety mechanism (pause-on-full ring buffer) is
K-LEB's only defense against controller starvation; this package makes
that defense — and every other failure path in the reproduction —
testable on demand:

* :class:`FaultPlan` — pure configuration: probabilities/magnitudes
  per fault site plus the seed.  Identical seeds yield bit-identical
  fault schedules, across runs and across worker counts.
* :class:`FaultInjector` — per-trial oracle consulted at the hook
  points (HRTimer fires, K-LEB ioctl/read entry, buffer pushes,
  controller drain cycles, PMU programming).
* :class:`FaultLedger` / :class:`RunLedger` — plain-data records of
  every injected fault and recovery action, reported per trial.

Recovery lives with the components: the controller retries transient
device failures with capped exponential backoff and adaptively
shortens its drain interval under back-pressure; the runner retries
transiently-failing trials and quarantines persistent ones; the
analysis layer flags dropped-sample gaps instead of interpolating
over them.
"""

from repro.faults.inject import FaultInjector, INERT_PLAN
from repro.faults.ledger import FaultLedger, FaultRecord, RunLedger, TrialLedger
from repro.faults.plan import ALWAYS_FAILS, BENIGN_FATE, FaultPlan, TrialFate

__all__ = [
    "ALWAYS_FAILS",
    "BENIGN_FATE",
    "FaultInjector",
    "FaultLedger",
    "FaultPlan",
    "FaultRecord",
    "INERT_PLAN",
    "RunLedger",
    "TrialFate",
    "TrialLedger",
]
