"""Online decision-making applications built on K-LEB data.

The paper's introduction motivates high-frequency, low-overhead counter
collection with four application families (§I): malware/anomaly
detection (Demme et al.), online program verification (Bruska et al.),
scheduling techniques (Torres et al.), and dynamic power estimation
(Liu et al.).  The anomaly detector lives in
:mod:`repro.analysis.detection`; this package implements the other
three on top of the monitoring substrate:

* :mod:`repro.apps.power` — counter-driven dynamic power estimation;
* :mod:`repro.apps.verification` — program identity/version
  verification from counter signatures;
* :mod:`repro.apps.colocation` — contention-aware workload co-location
  (the Fig. 5 classification put to work);
* :mod:`repro.apps.smp` — shared-LLC multi-core clusters for true
  parallel contention studies (and per-core K-LEB monitoring).
"""

from repro.apps.power import PowerModel, PowerEstimate, estimate_power_series
from repro.apps.verification import (
    SignatureDatabase,
    ProgramSignature,
    VerificationResult,
    signature_from_report,
)
from repro.apps.colocation import (
    ColocationPlan,
    CorunResult,
    corun,
    plan_colocation,
)
from repro.apps.smp import (
    SmpCluster,
    ParallelCorunResult,
    corun_parallel,
)

__all__ = [
    "PowerModel",
    "PowerEstimate",
    "estimate_power_series",
    "SignatureDatabase",
    "ProgramSignature",
    "VerificationResult",
    "signature_from_report",
    "ColocationPlan",
    "CorunResult",
    "corun",
    "plan_colocation",
    "SmpCluster",
    "ParallelCorunResult",
    "corun_parallel",
]
