"""Program identity verification from counter signatures.

The paper cites Bruska et al. ("Verification of OpenSSL version via
hardware performance counters"): a program's per-instruction hardware
event mix is a fingerprint, so a monitored run can be checked against a
database of known-good signatures — catching a swapped library version
or a tampered binary without reading its code.

A signature is the vector of per-kilo-instruction rates of the
monitored events.  Verification computes the relative distance between
the observed signature and each enrolled one; the run is accepted when
the best match is the claimed program within a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.tools.base import ToolReport

DEFAULT_TOLERANCE = 0.05   # 5 % mean relative deviation


@dataclass(frozen=True)
class ProgramSignature:
    """Per-kilo-instruction event rates for one known program/version."""

    name: str
    rates_pki: Dict[str, float]

    def distance(self, other: "ProgramSignature") -> float:
        """Mean relative deviation over the common event set."""
        shared = set(self.rates_pki) & set(other.rates_pki)
        if not shared:
            raise ExperimentError(
                f"signatures {self.name!r}/{other.name!r} share no events"
            )
        total = 0.0
        for event in shared:
            mine = self.rates_pki[event]
            theirs = other.rates_pki[event]
            scale = max(abs(mine), abs(theirs))
            total += 0.0 if scale == 0 else abs(mine - theirs) / scale
        return total / len(shared)


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of verifying one monitored run."""

    accepted: bool
    claimed: str
    best_match: Optional[str]
    distance_to_claimed: float
    best_distance: float
    tolerance: float

    @property
    def impostor(self) -> bool:
        """True when the run matches a *different* enrolled program."""
        return (not self.accepted and self.best_match is not None
                and self.best_match != self.claimed)


def signature_from_report(report: ToolReport, name: str,
                          events: Optional[Sequence[str]] = None
                          ) -> ProgramSignature:
    """Extract a signature from a monitored run's totals."""
    totals = report.totals
    instructions = totals.get("INST_RETIRED", 0.0)
    if instructions <= 0:
        raise ExperimentError("report has no instruction count")
    selected = list(events) if events is not None else [
        event for event in report.events if event in totals
    ]
    if not selected:
        raise ExperimentError("no events available for a signature")
    rates = {
        event: totals[event] / (instructions / 1000.0)
        for event in selected
        if event in totals
    }
    return ProgramSignature(name=name, rates_pki=rates)


class SignatureDatabase:
    """Enrolled signatures and the verification procedure."""

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE) -> None:
        if tolerance <= 0:
            raise ExperimentError("tolerance must be positive")
        self.tolerance = tolerance
        self._signatures: Dict[str, ProgramSignature] = {}

    def __len__(self) -> int:
        return len(self._signatures)

    def enroll(self, signature: ProgramSignature) -> None:
        """Add (or replace) a known-good signature."""
        self._signatures[signature.name] = signature

    def enroll_report(self, report: ToolReport, name: str,
                      events: Optional[Sequence[str]] = None) -> None:
        self.enroll(signature_from_report(report, name, events))

    def names(self) -> List[str]:
        return sorted(self._signatures)

    def verify(self, report: ToolReport, claimed: str,
               events: Optional[Sequence[str]] = None) -> VerificationResult:
        """Check a run against its claimed identity.

        Accepted iff the claimed program is enrolled, the observed
        signature is within tolerance of it, and no other enrolled
        program matches strictly better.
        """
        if claimed not in self._signatures:
            raise ExperimentError(f"no enrolled signature for {claimed!r}")
        observed = signature_from_report(report, "observed", events)
        distances: List[Tuple[str, float]] = [
            (name, observed.distance(signature))
            for name, signature in self._signatures.items()
        ]
        distances.sort(key=lambda pair: pair[1])
        best_name, best_distance = distances[0]
        to_claimed = dict(distances)[claimed]
        accepted = best_name == claimed and to_claimed <= self.tolerance
        return VerificationResult(
            accepted=accepted,
            claimed=claimed,
            best_match=best_name,
            distance_to_claimed=to_claimed,
            best_distance=best_distance,
            tolerance=self.tolerance,
        )
