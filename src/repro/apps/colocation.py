"""Contention-aware workload co-location.

The paper cites Torres et al. (§I, §II-C, §IV-B): counter data lets a
scheduler "colocate computation-intensive programs or containers with
the memory-intensive ones on the same core, while scheduling the
programs that require the same type of resources on different cores".

Two pieces here:

* :func:`corun` — actually co-run two programs on one simulated system
  and measure the *contention* each suffers: the growth in a program's
  CPU time versus running alone.  On the shared cache hierarchy two
  memory-intensive workloads evict each other's lines, so the
  contention factor emerges from the cache model.
* :func:`plan_colocation` — the scheduling policy: given per-workload
  MPKI measurements (e.g. from the Fig. 5 experiment), pair the most
  memory-intensive workload with the most computation-intensive one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.classify import MPKI_THRESHOLD
from repro.errors import ExperimentError
from repro.hw.machine import Machine, MachineConfig
from repro.hw.presets import i7_920
from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel
from repro.sim.clock import seconds
from repro.sim.rng import RngStreams
from repro.workloads.base import Program


@dataclass(frozen=True)
class CorunResult:
    """Contention outcome for one program of a co-run pair."""

    name: str
    solo_cpu_ns: int
    corun_cpu_ns: int
    corun_wall_ns: int

    @property
    def contention_factor(self) -> float:
        """CPU-time inflation caused by sharing the machine (cache
        pollution, not time-slicing — wall time captures that)."""
        if self.solo_cpu_ns <= 0:
            raise ExperimentError(f"{self.name}: empty solo run")
        return self.corun_cpu_ns / self.solo_cpu_ns


def _run_solo(program: Program, machine_config: MachineConfig,
              seed: int) -> int:
    kernel = Kernel(Machine(machine_config),
                    config=KernelConfig(noise_enabled=False),
                    rng=RngStreams(seed))
    task = kernel.spawn(program)
    kernel.run_until_exit(task, deadline=seconds(120))
    return task.cpu_time_ns


def corun(first: Program, second: Program,
          machine_config: Optional[MachineConfig] = None,
          seed: int = 0) -> Tuple[CorunResult, CorunResult]:
    """Run two programs together on one machine and quantify contention.

    Returns one :class:`CorunResult` per program.  The pair shares the
    core (round-robin) *and* the cache hierarchy, so a trace-driven
    workload's extra misses under co-location are real evictions.
    """
    config = machine_config or i7_920()
    solo = (_run_solo(first, config, seed), _run_solo(second, config, seed))

    kernel = Kernel(Machine(config),
                    config=KernelConfig(noise_enabled=False),
                    rng=RngStreams(seed))
    task_a = kernel.spawn(first)
    task_b = kernel.spawn(second)
    kernel.run(deadline=seconds(240))
    for task in (task_a, task_b):
        if task.alive:
            raise ExperimentError(f"co-run of {task.name} did not finish")
    return (
        CorunResult(name=first.name, solo_cpu_ns=solo[0],
                    corun_cpu_ns=task_a.cpu_time_ns,
                    corun_wall_ns=task_a.wall_time_ns or 0),
        CorunResult(name=second.name, solo_cpu_ns=solo[1],
                    corun_cpu_ns=task_b.cpu_time_ns,
                    corun_wall_ns=task_b.wall_time_ns or 0),
    )


@dataclass(frozen=True)
class ColocationPlan:
    """Pairings produced by the MPKI-complementarity policy."""

    pairs: List[Tuple[str, str]]          # (memory-heavy, compute-heavy)
    unpaired: List[str]
    mpki: Dict[str, float]

    def describe(self) -> str:
        lines = []
        for core, (memory_side, compute_side) in enumerate(self.pairs):
            lines.append(
                f"core {core}: {memory_side} "
                f"(MPKI {self.mpki[memory_side]:.1f}) + {compute_side} "
                f"(MPKI {self.mpki[compute_side]:.1f})"
            )
        if self.unpaired:
            lines.append(f"unpaired: {', '.join(self.unpaired)}")
        return "\n".join(lines)


def plan_colocation(mpki: Dict[str, float]) -> ColocationPlan:
    """Pair complementary workloads: highest MPKI with lowest MPKI.

    The policy the paper's §IV-B sketches: never put two
    memory-intensive workloads on the same core.
    """
    if not mpki:
        raise ExperimentError("no measurements to plan from")
    ordered = sorted(mpki, key=mpki.__getitem__)   # low -> high
    pairs: List[Tuple[str, str]] = []
    low_index, high_index = 0, len(ordered) - 1
    while low_index < high_index:
        compute_side = ordered[low_index]
        memory_side = ordered[high_index]
        pairs.append((memory_side, compute_side))
        low_index += 1
        high_index -= 1
    unpaired = [ordered[low_index]] if low_index == high_index else []
    return ColocationPlan(pairs=pairs, unpaired=unpaired, mpki=dict(mpki))


def validate_plan(plan: ColocationPlan,
                  threshold: float = MPKI_THRESHOLD) -> List[str]:
    """Return violations: pairs where both sides are memory-intensive."""
    violations = []
    for memory_side, compute_side in plan.pairs:
        if (plan.mpki[memory_side] > threshold
                and plan.mpki[compute_side] > threshold):
            violations.append(f"{memory_side}+{compute_side}")
    return violations
