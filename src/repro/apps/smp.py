"""Shared-LLC multi-core clusters (compatibility shim).

The cluster started life here as a demo app; it has since been promoted
into the first-class SMP substrate at :mod:`repro.kernel.smp` (per-core
PMUs, per-socket uncore counters, seeded CPU migration).  This module
re-exports the public names so existing imports keep working.
"""

from __future__ import annotations

from repro.kernel.smp import (DEFAULT_WINDOW_NS, ParallelCorunResult,
                              SmpCluster, corun_parallel)

__all__ = [
    "DEFAULT_WINDOW_NS",
    "ParallelCorunResult",
    "SmpCluster",
    "corun_parallel",
]
