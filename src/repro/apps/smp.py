"""Shared-LLC multi-core clusters.

The paper's scheduling motivation (§II-C, §IV-B, citing Torres et al.)
is about workloads on *different cores contending for the shared
last-level cache*.  The base substrate is a single time-shared core;
this module composes several of those into a cluster: one
(machine, kernel) pair per core, all front-ending the **same**
:class:`~repro.hw.cache.CacheLevel` as their LLC, advanced in lockstep
time windows.

That gives real parallel contention — a streamer on core 1 evicts the
LLC-resident working set of a service on core 0 *while it runs* — with
zero changes to the single-core kernel semantics.  Each core keeps its
own PMU and can run its own K-LEB instance, exactly like per-core
monitoring on a real SMP.

Window size bounds the skew between cores (default 100 µs — well under
the scheduler quantum and the cache-reuse timescales that matter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.hw.cache import CacheLevel
from repro.hw.machine import Machine, MachineConfig
from repro.hw.presets import i7_920
from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import Task
from repro.sim.clock import us
from repro.sim.rng import RngStreams
from repro.workloads.base import Program

DEFAULT_WINDOW_NS = us(100)


class SmpCluster:
    """N single-core kernels sharing one last-level cache."""

    def __init__(self, cores: int = 2,
                 machine_config: Optional[MachineConfig] = None,
                 kernel_config: Optional[KernelConfig] = None,
                 seed: int = 0) -> None:
        if cores < 1:
            raise ExperimentError("a cluster needs at least one core")
        config = machine_config or i7_920()
        if len(config.cache_levels) < 2:
            raise ExperimentError(
                "shared-LLC clustering needs private levels plus an LLC"
            )
        self.config = config
        self.shared_llc = CacheLevel(config.cache_levels[-1])
        self.kernels: List[Kernel] = []
        base_rng = RngStreams(seed)
        for core in range(cores):
            machine = Machine(config, shared_llc=self.shared_llc)
            kernel = Kernel(
                machine,
                config=kernel_config or KernelConfig(noise_enabled=False),
                rng=base_rng.fork(core + 1),
            )
            self.kernels.append(kernel)

    @property
    def cores(self) -> int:
        return len(self.kernels)

    def kernel(self, core: int) -> Kernel:
        try:
            return self.kernels[core]
        except IndexError:
            raise ExperimentError(
                f"no core {core} in a {self.cores}-core cluster"
            ) from None

    def spawn(self, core: int, program: Program, **kwargs) -> Task:
        """Spawn ``program`` on the given core's kernel."""
        return self.kernel(core).spawn(program, **kwargs)

    def run(self, deadline_ns: int,
            window_ns: int = DEFAULT_WINDOW_NS) -> None:
        """Advance every core in lockstep windows up to ``deadline_ns``."""
        if window_ns <= 0:
            raise ExperimentError("window must be positive")
        horizon = min(kernel.now for kernel in self.kernels)
        while horizon < deadline_ns:
            horizon = min(horizon + window_ns, deadline_ns)
            for kernel in self.kernels:
                if kernel.now < horizon:
                    kernel.run(deadline=horizon)

    def run_until_tasks_exit(self, tasks: Sequence[Task],
                             deadline_ns: int,
                             window_ns: int = DEFAULT_WINDOW_NS) -> None:
        """Lockstep-advance until every listed task has exited."""
        if window_ns <= 0:
            raise ExperimentError("window must be positive")
        horizon = min(kernel.now for kernel in self.kernels)
        while any(task.alive for task in tasks):
            if horizon >= deadline_ns:
                alive = [task.name for task in tasks if task.alive]
                raise ExperimentError(
                    f"cluster deadline reached with tasks alive: {alive}"
                )
            horizon = min(horizon + window_ns, deadline_ns)
            for kernel in self.kernels:
                if kernel.now < horizon:
                    kernel.run(deadline=horizon)

    def max_skew_ns(self) -> int:
        """Current clock skew between the fastest and slowest core."""
        times = [kernel.now for kernel in self.kernels]
        return max(times) - min(times)


@dataclass(frozen=True)
class ParallelCorunResult:
    """Contention outcome for one program in a parallel co-run."""

    name: str
    core: int
    solo_wall_ns: int
    corun_wall_ns: int

    @property
    def slowdown(self) -> float:
        """Wall-time inflation from sharing the LLC.

        Unlike the single-core co-run, there is no time-slicing here:
        every core is dedicated, so any slowdown IS cache contention.
        """
        if self.solo_wall_ns <= 0:
            raise ExperimentError(f"{self.name}: empty solo run")
        return self.corun_wall_ns / self.solo_wall_ns


def corun_parallel(programs: Sequence[Program],
                   machine_config: Optional[MachineConfig] = None,
                   seed: int = 0,
                   deadline_ns: int = 2_000_000_000
                   ) -> List[ParallelCorunResult]:
    """Run each program on its own core of a shared-LLC cluster.

    Returns per-program results with solo-vs-corun wall times; the solo
    baseline runs each program alone on an identical single-core
    cluster (same private caches, unshared LLC).
    """
    if len(programs) < 2:
        raise ExperimentError("parallel co-run needs at least two programs")
    solo_walls: List[int] = []
    for index, program in enumerate(programs):
        cluster = SmpCluster(cores=1, machine_config=machine_config,
                             seed=seed)
        task = cluster.spawn(0, program)
        cluster.run_until_tasks_exit([task], deadline_ns)
        solo_walls.append(task.wall_time_ns or 0)

    cluster = SmpCluster(cores=len(programs),
                         machine_config=machine_config, seed=seed)
    tasks = [cluster.spawn(core, program)
             for core, program in enumerate(programs)]
    cluster.run_until_tasks_exit(tasks, deadline_ns)
    return [
        ParallelCorunResult(
            name=program.name,
            core=core,
            solo_wall_ns=solo_walls[core],
            corun_wall_ns=tasks[core].wall_time_ns or 0,
        )
        for core, program in enumerate(programs)
    ]
