"""Dynamic power estimation from performance counters.

The paper cites Liu et al. ("Dynamic power estimation with hardware
performance counters support on multi-core platform") as one of the
online decision-making applications that needs exactly what K-LEB
provides: periodic counter samples at low overhead.

The standard technique is an event-energy model: each hardware event
carries an average energy cost (instructions retire through the
pipeline, loads/stores move data through the cache hierarchy, LLC
misses activate DRAM), so interval power is

    P(t) = P_static + sum_e  weight_e * count_e(t) / dt

The default weights are ballpark per-event energies for a Nehalem-class
part; calibrate against a power meter (here: against a known workload)
with :meth:`PowerModel.calibrated`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.analysis.timeseries import EventSeries
from repro.errors import ExperimentError

# Per-event energy in nanojoules (order-of-magnitude literature values
# for ~45 nm parts: ~0.5 nJ per instruction through the pipeline, tens
# of nJ per DRAM access).
DEFAULT_EVENT_ENERGY_NJ: Dict[str, float] = {
    "INST_RETIRED": 0.45,
    "LOADS": 0.30,
    "STORES": 0.35,
    "ARITH_MUL": 0.25,
    "FP_OPS": 0.20,
    "BRANCH_MISSES": 5.0,    # pipeline flush
    "LLC_REFERENCES": 3.0,
    "LLC_MISSES": 30.0,      # DRAM activate + transfer
}

DEFAULT_STATIC_WATTS = 18.0   # uncore + leakage for a desktop part


@dataclass(frozen=True)
class PowerEstimate:
    """Summary of an estimated power trace."""

    mean_watts: float
    peak_watts: float
    min_watts: float
    energy_joules: float
    duration_s: float

    @property
    def average_above_static(self) -> float:
        return self.mean_watts


@dataclass
class PowerModel:
    """Linear counter-to-power model."""

    event_energy_nj: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_EVENT_ENERGY_NJ)
    )
    static_watts: float = DEFAULT_STATIC_WATTS

    def interval_power(self, counts: Dict[str, float],
                       interval_ns: float) -> float:
        """Watts over one interval from its event counts."""
        if interval_ns <= 0:
            raise ExperimentError("interval must be positive")
        energy_nj = sum(
            self.event_energy_nj.get(name, 0.0) * value
            for name, value in counts.items()
        )
        return self.static_watts + energy_nj / interval_ns  # nJ/ns == W

    def power_series(self, series: EventSeries) -> np.ndarray:
        """Per-interval power (W) from a *delta* series."""
        if len(series) == 0:
            return np.array([], dtype=np.float64)
        timestamps = series.timestamps
        intervals = np.diff(timestamps, prepend=timestamps[0] - (
            timestamps[1] - timestamps[0] if len(timestamps) > 1 else 1
        )).astype(np.float64)
        intervals[intervals <= 0] = np.nan
        dynamic = np.zeros(len(series), dtype=np.float64)
        for name, weight in self.event_energy_nj.items():
            data = series.values.get(name)
            if data is not None:
                dynamic += weight * data
        watts = self.static_watts + dynamic / intervals
        return np.nan_to_num(watts, nan=self.static_watts)

    def calibrated(self, series: EventSeries,
                   measured_mean_watts: float) -> "PowerModel":
        """Scale the dynamic weights so the model's mean over ``series``
        matches an external measurement (one-point calibration)."""
        estimate = summarize(self.power_series(series), series)
        dynamic_mean = estimate.mean_watts - self.static_watts
        if dynamic_mean <= 0:
            raise ExperimentError("cannot calibrate on an idle trace")
        target_dynamic = measured_mean_watts - self.static_watts
        if target_dynamic <= 0:
            raise ExperimentError(
                "measured power must exceed the static floor"
            )
        scale = target_dynamic / dynamic_mean
        return PowerModel(
            event_energy_nj={name: weight * scale
                             for name, weight in self.event_energy_nj.items()},
            static_watts=self.static_watts,
        )


def summarize(watts: np.ndarray, series: EventSeries) -> PowerEstimate:
    """Aggregate a power trace into a :class:`PowerEstimate`."""
    if len(watts) == 0:
        raise ExperimentError("empty power trace")
    duration_ns = float(series.timestamps[-1] - series.timestamps[0])
    if len(series) > 1:
        mean_interval = duration_ns / (len(series) - 1)
        duration_ns += mean_interval  # include the first interval
    else:
        duration_ns = 1.0
    duration_s = duration_ns / 1e9
    mean_watts = float(watts.mean())
    return PowerEstimate(
        mean_watts=mean_watts,
        peak_watts=float(watts.max()),
        min_watts=float(watts.min()),
        energy_joules=mean_watts * duration_s,
        duration_s=duration_s,
    )


def estimate_power_series(series: EventSeries,
                          model: Optional[PowerModel] = None) -> PowerEstimate:
    """One-call estimate: delta series in, power summary out."""
    model = model if model is not None else PowerModel()
    return summarize(model.power_series(series), series)
