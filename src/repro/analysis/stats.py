"""Distribution statistics for the box-and-whisker comparison (Fig. 8).

The paper normalizes each tool's run times and plots their spread;
K-LEB's box is the tightest, evidencing the least (and most
consistent) interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ExperimentError


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus whiskers (Tukey 1.5×IQR convention)."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    mean: float
    std: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    @property
    def spread(self) -> float:
        """Whisker-to-whisker width — the figure's visual 'spread'."""
        return self.whisker_high - self.whisker_low


def box_stats(values: Sequence[float]) -> BoxStats:
    """Compute box-plot statistics for one population."""
    if len(values) == 0:
        raise ExperimentError("cannot summarize an empty population")
    data = np.asarray(values, dtype=np.float64)
    q1, median, q3 = np.percentile(data, [25, 50, 75])
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inside = data[(data >= low_fence) & (data <= high_fence)]
    if len(inside) == 0:
        inside = data
    return BoxStats(
        minimum=float(data.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(data.max()),
        whisker_low=float(inside.min()),
        whisker_high=float(inside.max()),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if len(data) > 1 else 0.0,
    )


def normalize(values: Sequence[float], reference: float) -> np.ndarray:
    """Normalize run times to a reference (the baseline mean)."""
    if reference <= 0:
        raise ExperimentError("normalization reference must be positive")
    return np.asarray(values, dtype=np.float64) / reference
