"""Monitoring overhead statistics (Tables I-III).

Overhead is the victim's wall-clock stretch relative to the
no-profiling baseline: ``(monitored - baseline) / baseline``.  The
paper reports averages over 100 runs; :func:`summarize_overhead` takes
the two run populations and produces the same summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ExperimentError


def overhead_percent(monitored_ns: float, baseline_ns: float) -> float:
    """Single-pair overhead in percent."""
    if baseline_ns <= 0:
        raise ExperimentError("baseline runtime must be positive")
    return 100.0 * (monitored_ns - baseline_ns) / baseline_ns


@dataclass(frozen=True)
class OverheadStats:
    """Overhead summary for one tool against a baseline population."""

    tool: str
    runs: int
    baseline_mean_ns: float
    monitored_mean_ns: float
    overhead_mean_percent: float
    overhead_std_percent: float

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"{self.tool}: {self.overhead_mean_percent:.2f}% "
            f"(±{self.overhead_std_percent:.2f}, n={self.runs})"
        )


def summarize_overhead(tool: str, monitored_ns: Sequence[float],
                       baseline_ns: Sequence[float]) -> OverheadStats:
    """Summarize overhead of a run population vs a baseline population."""
    if not monitored_ns or not baseline_ns:
        raise ExperimentError("need at least one run in each population")
    baseline_mean = float(np.mean(baseline_ns))
    monitored = np.asarray(monitored_ns, dtype=np.float64)
    per_run = 100.0 * (monitored - baseline_mean) / baseline_mean
    return OverheadStats(
        tool=tool,
        runs=len(monitored_ns),
        baseline_mean_ns=baseline_mean,
        monitored_mean_ns=float(monitored.mean()),
        overhead_mean_percent=float(per_run.mean()),
        overhead_std_percent=float(per_run.std(ddof=1)) if len(monitored) > 1
        else 0.0,
    )


def relative_reduction_percent(ours: float, next_best: float) -> float:
    """Relative overhead reduction vs the next-best tool.

    The paper's headline: "K-LEB shows 58.8 % decrease in performance
    overhead when comparing to the next best tool, i.e. perf record."
    """
    if next_best <= 0:
        raise ExperimentError("next-best overhead must be positive")
    return 100.0 * (next_best - ours) / next_best
