"""Phase detection over event time series.

The paper reads LINPACK's phase structure straight off K-LEB's samples
(Fig. 4): a quiet kernel-level init, a LOAD/STORE-heavy setup, then
repeating load -> compute -> store cycles.  This module recovers those
segments automatically: each interval is labelled by its dominant
event (after normalization), and consecutive same-label intervals are
merged into segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.timeseries import EventSeries, moving_average
from repro.errors import ExperimentError

IDLE = "idle"


@dataclass(frozen=True)
class PhaseSegment:
    """One contiguous run of intervals sharing a dominant event."""

    label: str
    start_index: int
    end_index: int           # exclusive
    start_ns: int
    end_ns: int

    @property
    def length(self) -> int:
        return self.end_index - self.start_index


def dominant_event(interval_values: Dict[str, float],
                   scale: Dict[str, float],
                   idle_threshold: float = 0.05) -> str:
    """Label one interval by its (normalized) dominant event.

    ``scale`` holds each event's peak rate over the whole series, so a
    low-rate event (ARITH_MUL in setup) does not get drowned out by a
    high-rate one (LOADS) purely on magnitude.  Intervals where every
    event sits below ``idle_threshold`` of its peak are labelled idle —
    that is what LINPACK's kernel-level init looks like to a user-only
    monitor.
    """
    best_name = IDLE
    best_value = idle_threshold
    for name, value in interval_values.items():
        peak = scale.get(name, 0.0)
        if peak <= 0:
            continue
        normalized = value / peak
        if normalized > best_value:
            best_value = normalized
            best_name = name
    return best_name


def detect_phases(series: EventSeries, events: Sequence[str],
                  smooth_window: int = 3,
                  idle_threshold: float = 0.05) -> List[PhaseSegment]:
    """Segment a *delta* series into dominant-event phases."""
    if len(series) == 0:
        return []
    missing = [name for name in events if name not in series.values]
    if missing:
        raise ExperimentError(f"series lacks events: {missing}")
    smoothed = {
        name: moving_average(series.values[name], smooth_window)
        for name in events
    }
    scale = {name: float(np.max(data)) for name, data in smoothed.items()}
    labels: List[str] = []
    for index in range(len(series)):
        interval = {name: float(smoothed[name][index]) for name in events}
        labels.append(dominant_event(interval, scale, idle_threshold))
    segments: List[PhaseSegment] = []
    start = 0
    for index in range(1, len(labels) + 1):
        if index == len(labels) or labels[index] != labels[start]:
            segments.append(PhaseSegment(
                label=labels[start],
                start_index=start,
                end_index=index,
                start_ns=int(series.timestamps[start]),
                end_ns=int(series.timestamps[index - 1]),
            ))
            start = index
    return segments


def merge_short_segments(segments: List[PhaseSegment],
                         min_length: int) -> List[PhaseSegment]:
    """Absorb segments shorter than ``min_length`` into their neighbour.

    Jitter produces one-interval blips; the paper's phase reading is
    about the macro structure.
    """
    if not segments:
        return []
    merged: List[PhaseSegment] = [segments[0]]
    for segment in segments[1:]:
        previous = merged[-1]
        if segment.length < min_length:
            merged[-1] = PhaseSegment(
                label=previous.label,
                start_index=previous.start_index,
                end_index=segment.end_index,
                start_ns=previous.start_ns,
                end_ns=segment.end_ns,
            )
        elif previous.length < min_length and len(merged) == 1:
            merged[-1] = PhaseSegment(
                label=segment.label,
                start_index=previous.start_index,
                end_index=segment.end_index,
                start_ns=previous.start_ns,
                end_ns=segment.end_ns,
            )
        elif segment.label == previous.label:
            merged[-1] = PhaseSegment(
                label=previous.label,
                start_index=previous.start_index,
                end_index=segment.end_index,
                start_ns=previous.start_ns,
                end_ns=segment.end_ns,
            )
        else:
            merged.append(segment)
    return merged


def count_cycles(segments: Sequence[PhaseSegment],
                 cycle_labels: Sequence[str]) -> int:
    """Count occurrences of a repeating label pattern (e.g. the
    LINPACK load -> compute -> store cycle)."""
    if not cycle_labels:
        raise ExperimentError("cycle pattern must be non-empty")
    labels = [segment.label for segment in segments]
    pattern = list(cycle_labels)
    count = 0
    index = 0
    while index + len(pattern) <= len(labels):
        if labels[index:index + len(pattern)] == pattern:
            count += 1
            index += len(pattern)
        else:
            index += 1
    return count
