"""Cross-tool count accuracy (Fig. 9).

The paper compares the hardware event counts each tool reports for the
same program, focusing on *architectural* (deterministic) events —
Branch, Load, Store, Instructions retired — whose true counts do not
depend on machine state.  Claims reproduced here:

* K-LEB vs perf stat: < 0.0008 % difference on deterministic events;
* perf record vs K-LEB: < 0.15 % (sampling reconstruction);
* any tool pair, any event: < 0.3 %.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.errors import ExperimentError
from repro.tools.base import ToolReport


def count_difference_percent(reference: float, other: float) -> float:
    """Absolute percentage difference of ``other`` vs ``reference``."""
    if reference == 0:
        return 0.0 if other == 0 else float("inf")
    return abs(other - reference) / abs(reference) * 100.0


def accuracy_matrix(reports: Mapping[str, ToolReport],
                    events: Sequence[str],
                    reference_tool: str = "k-leb") -> Dict[str, Dict[str, float]]:
    """Percentage count difference of every tool vs the reference.

    Returns ``{tool: {event: percent_difference}}`` for all tools other
    than the reference.  Events missing from a tool's totals raise — a
    silent gap would fake perfect accuracy.
    """
    if reference_tool not in reports:
        raise ExperimentError(f"no report for reference tool {reference_tool!r}")
    reference = reports[reference_tool].totals
    matrix: Dict[str, Dict[str, float]] = {}
    for tool, report in reports.items():
        if tool == reference_tool:
            continue
        row: Dict[str, float] = {}
        for event in events:
            if event not in reference:
                raise ExperimentError(
                    f"reference tool {reference_tool!r} did not record {event}"
                )
            if event not in report.totals:
                raise ExperimentError(
                    f"tool {tool!r} did not record {event}"
                )
            row[event] = count_difference_percent(
                reference[event], report.totals[event]
            )
        matrix[tool] = row
    return matrix


def worst_difference(matrix: Mapping[str, Mapping[str, float]]) -> float:
    """The largest deviation anywhere in an accuracy matrix."""
    worst = 0.0
    for row in matrix.values():
        for value in row.values():
            worst = max(worst, value)
    return worst
