"""Cache-anomaly detection from high-frequency samples.

The paper stops short of building a detector ("outside the scope of
this work", §IV-C) but demonstrates the enabling capability: at 100 µs
resolution the Flush+Reload burst is visible *during* execution, unlike
perf's single whole-run sample.  This module implements the obvious
detector the paper gestures at: flag sustained intervals whose LLC
miss-to-reference ratio and per-kilo-instruction miss rate exceed a
baseline envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.timeseries import EventSeries
from repro.errors import ExperimentError


@dataclass(frozen=True)
class AnomalyVerdict:
    """Detector output over one monitored run."""

    anomalous: bool
    first_flag_index: Optional[int]      # first suspicious interval
    first_flag_ns: Optional[int]
    flagged_intervals: int
    total_intervals: int
    peak_mpki: float
    mean_mpki: float

    @property
    def flagged_fraction(self) -> float:
        if self.total_intervals == 0:
            return 0.0
        return self.flagged_intervals / self.total_intervals


def interval_mpki(series: EventSeries) -> np.ndarray:
    """Per-interval MPKI from a *delta* series."""
    misses = series.event("LLC_MISSES")
    instructions = series.event("INST_RETIRED")
    with np.errstate(divide="ignore", invalid="ignore"):
        values = np.where(instructions > 0,
                          misses / (instructions / 1000.0), 0.0)
    return values


def detect_cache_anomaly(series: EventSeries,
                         mpki_threshold: float = 15.0,
                         ratio_threshold: float = 0.6,
                         min_consecutive: int = 3) -> AnomalyVerdict:
    """Flag Flush+Reload-like behaviour in a delta series.

    An interval is suspicious when its MPKI exceeds ``mpki_threshold``
    AND its LLC miss/reference ratio exceeds ``ratio_threshold`` (the
    attack's reloads miss almost every probe line).  A run is anomalous
    once ``min_consecutive`` suspicious intervals occur in a row —
    single-interval spikes are normal phase noise.
    """
    if min_consecutive <= 0:
        raise ExperimentError("min_consecutive must be positive")
    total = len(series)
    if total == 0:
        return AnomalyVerdict(False, None, None, 0, 0, 0.0, 0.0)
    mpki_values = interval_mpki(series)
    references = series.event("LLC_REFERENCES")
    misses = series.event("LLC_MISSES")
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(references > 0, misses / references, 0.0)
    suspicious = (mpki_values > mpki_threshold) & (ratios > ratio_threshold)
    flagged = int(suspicious.sum())
    first_index: Optional[int] = None
    run = 0
    for index, flag in enumerate(suspicious):
        run = run + 1 if flag else 0
        if run >= min_consecutive:
            first_index = index - min_consecutive + 1
            break
    return AnomalyVerdict(
        anomalous=first_index is not None,
        first_flag_index=first_index,
        first_flag_ns=(int(series.timestamps[first_index])
                       if first_index is not None else None),
        flagged_intervals=flagged,
        total_intervals=total,
        peak_mpki=float(mpki_values.max()) if total else 0.0,
        mean_mpki=float(mpki_values.mean()) if total else 0.0,
    )
