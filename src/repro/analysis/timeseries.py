"""Time-series operations on counter samples.

Tools deliver *cumulative* snapshots (counter values at each fire);
figures plot *per-interval* activity (Fig. 4's LINPACK phases, Fig. 7's
Meltdown burst), so the central operation here is differencing, plus
alignment/averaging across trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.tools.base import Sample


@dataclass
class EventSeries:
    """Aligned per-event series: timestamps plus one array per event."""

    timestamps: np.ndarray                 # int64 ns
    values: Dict[str, np.ndarray]          # event -> float64 array

    def __len__(self) -> int:
        return len(self.timestamps)

    def event(self, name: str) -> np.ndarray:
        try:
            return self.values[name]
        except KeyError:
            known = ", ".join(sorted(self.values))
            raise ExperimentError(
                f"series has no event {name!r} (has: {known})"
            ) from None


def samples_to_series(samples: Sequence[Sample]) -> EventSeries:
    """Stack samples into aligned arrays (cumulative values)."""
    if not samples:
        return EventSeries(np.array([], dtype=np.int64), {})
    names = sorted(samples[0].values)
    timestamps = np.array([sample.timestamp for sample in samples],
                          dtype=np.int64)
    values = {
        name: np.array([sample.values.get(name, 0) for sample in samples],
                       dtype=np.float64)
        for name in names
    }
    return EventSeries(timestamps, values)


def deltas(series: EventSeries) -> EventSeries:
    """Per-interval activity from cumulative snapshots.

    Output has one fewer point; timestamps mark interval ends.  Counter
    wraparound (48-bit) shows up as a negative delta and is corrected.
    """
    if len(series) < 2:
        return EventSeries(np.array([], dtype=np.int64), {
            name: np.array([], dtype=np.float64) for name in series.values
        })
    wrap = float(1 << 48)
    out: Dict[str, np.ndarray] = {}
    for name, cumulative in series.values.items():
        diff = np.diff(cumulative)
        diff[diff < 0] += wrap
        out[name] = diff
    return EventSeries(series.timestamps[1:], out)


def resample_counts(series: EventSeries, bucket_ns: int) -> EventSeries:
    """Aggregate per-interval deltas into fixed wall-clock buckets.

    Used to average multiple trials whose sample timestamps don't align
    exactly (jitter), as the paper does for Fig. 4's 10-trial average.
    """
    if bucket_ns <= 0:
        raise ExperimentError("bucket size must be positive")
    if len(series) == 0:
        return series
    start = int(series.timestamps[0])
    buckets = ((series.timestamps - start) // bucket_ns).astype(np.int64)
    count = int(buckets.max()) + 1
    timestamps = start + (np.arange(count, dtype=np.int64) + 1) * bucket_ns
    values: Dict[str, np.ndarray] = {}
    for name, data in series.values.items():
        summed = np.zeros(count, dtype=np.float64)
        np.add.at(summed, buckets, data)
        values[name] = summed
    return EventSeries(timestamps, values)


def moving_average(data: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge shrinkage."""
    if window <= 0:
        raise ExperimentError("window must be positive")
    if window == 1 or len(data) == 0:
        return np.asarray(data, dtype=np.float64)
    kernel = np.ones(window) / window
    padded = np.convolve(data, kernel, mode="same")
    # Correct the edges where the kernel hangs off the array.
    ones = np.convolve(np.ones(len(data)), kernel, mode="same")
    return padded / ones


def average_series(series_list: Sequence[EventSeries],
                   bucket_ns: int) -> EventSeries:
    """Bucket-align several trials' delta series and average them."""
    if not series_list:
        raise ExperimentError("no series to average")
    resampled = [resample_counts(series, bucket_ns) for series in series_list]
    length = max(len(series) for series in resampled)
    names = sorted({name for series in resampled for name in series.values})
    timestamps = np.arange(1, length + 1, dtype=np.int64) * bucket_ns
    values: Dict[str, np.ndarray] = {}
    for name in names:
        stacked = np.zeros((len(resampled), length), dtype=np.float64)
        for row, series in enumerate(resampled):
            data = series.values.get(name)
            if data is not None:
                stacked[row, :len(data)] = data
        values[name] = stacked.mean(axis=0)
    return EventSeries(timestamps, values)
