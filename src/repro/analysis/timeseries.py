"""Time-series operations on counter samples.

Tools deliver *cumulative* snapshots (counter values at each fire);
figures plot *per-interval* activity (Fig. 4's LINPACK phases, Fig. 7's
Meltdown burst), so the central operation here is differencing, plus
alignment/averaging across trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.tools.base import Sample, SampleColumns


@dataclass
class EventSeries:
    """Aligned per-event series: timestamps plus one array per event."""

    timestamps: np.ndarray                 # int64 ns
    values: Dict[str, np.ndarray]          # event -> float64 array

    def __len__(self) -> int:
        return len(self.timestamps)

    def event(self, name: str) -> np.ndarray:
        try:
            return self.values[name]
        except KeyError:
            known = ", ".join(sorted(self.values))
            raise ExperimentError(
                f"series has no event {name!r} (has: {known})"
            ) from None


def samples_to_series(samples: Sequence[Sample]) -> EventSeries:
    """Stack samples into aligned arrays (cumulative values)."""
    if not samples:
        return EventSeries(np.array([], dtype=np.int64), {})
    if isinstance(samples, SampleColumns):
        # Columnar series: each typed column converts in one bulk
        # buffer read — same sorted-name layout and values as stacking
        # the materialized samples, with no per-sample dict ever built.
        timestamps = np.frombuffer(samples.timestamps,
                                   dtype=np.int64).copy()
        values = {
            name: np.frombuffer(samples.column(name),
                                dtype=np.int64).astype(np.float64)
            for name in sorted(samples.names)
        }
        return EventSeries(timestamps, values)
    names = sorted(samples[0].values)
    timestamps = np.array([sample.timestamp for sample in samples],
                          dtype=np.int64)
    values = {
        name: np.array([sample.values.get(name, 0) for sample in samples],
                       dtype=np.float64)
        for name in names
    }
    return EventSeries(timestamps, values)


def deltas(series: EventSeries) -> EventSeries:
    """Per-interval activity from cumulative snapshots.

    Output has one fewer point; timestamps mark interval ends.  Counter
    wraparound (48-bit) shows up as a negative delta and is corrected.
    """
    if len(series) < 2:
        return EventSeries(np.array([], dtype=np.int64), {
            name: np.array([], dtype=np.float64) for name in series.values
        })
    wrap = float(1 << 48)
    out: Dict[str, np.ndarray] = {}
    for name, cumulative in series.values.items():
        diff = np.diff(cumulative)
        diff[diff < 0] += wrap
        out[name] = diff
    return EventSeries(series.timestamps[1:], out)


@dataclass(frozen=True)
class SampleGap:
    """A hole in a sample series: timer misses, pauses, drops.

    ``missing`` estimates how many sampling periods fell inside the
    hole (at least 1).
    """

    start_ns: int
    end_ns: int
    missing: int

    @property
    def span_ns(self) -> int:
        return self.end_ns - self.start_ns


def find_gaps(series: EventSeries, period_ns: int,
              tolerance: float = 1.5) -> List[SampleGap]:
    """Locate dropped-sample windows in a cumulative sample series.

    An inter-sample interval longer than ``period_ns * tolerance``
    means the timer fired (or should have fired) without a sample
    landing — a missed deadline, a paused buffer, or drops.  The
    default tolerance absorbs ordinary fire jitter.

    Consecutive over-threshold intervals describe **one** hole (a
    paused buffer swallows several periods in a row but may still leak
    the odd sample), so adjacent gaps — where one ends on the exact
    sample the next starts from — coalesce into a single
    :class:`SampleGap` with their ``missing`` estimates summed.
    """
    if period_ns <= 0:
        raise ExperimentError("period must be positive")
    if tolerance <= 1.0:
        raise ExperimentError("gap tolerance must exceed 1.0")
    if len(series) < 2:
        return []
    intervals = np.diff(series.timestamps)
    threshold = period_ns * tolerance
    gaps: List[SampleGap] = []
    for index in np.nonzero(intervals > threshold)[0]:
        interval = int(intervals[index])
        # Half-up, not round(): banker's rounding would call an
        # interval of exactly 2.5 periods "2 fires" and report one
        # missing sample where two fire slots actually elapsed.
        missing = max(1, int(interval / period_ns + 0.5) - 1)
        start = int(series.timestamps[index])
        end = int(series.timestamps[index + 1])
        if gaps and gaps[-1].end_ns == start:
            merged = gaps.pop()
            gaps.append(SampleGap(start_ns=merged.start_ns, end_ns=end,
                                  missing=merged.missing + missing))
        else:
            gaps.append(SampleGap(start_ns=start, end_ns=end,
                                  missing=missing))
    return gaps


def deltas_with_gaps(series: EventSeries, period_ns: int,
                     tolerance: float = 1.5
                     ) -> Tuple[EventSeries, List[SampleGap]]:
    """Gap-aware differencing: flag holes instead of interpolating.

    Like :func:`deltas`, but intervals spanning a gap get ``NaN``
    deltas — a delta across a hole mixes several periods' activity
    into one point and would silently flatten bursts.  Callers plot
    around the NaNs (matplotlib breaks the line) or handle the
    returned gap list explicitly.
    """
    flat = deltas(series)
    gaps = find_gaps(series, period_ns, tolerance)
    if not gaps or len(flat) == 0:
        return flat, gaps
    threshold = period_ns * tolerance
    mask = np.diff(series.timestamps) > threshold
    values = {name: data.copy() for name, data in flat.values.items()}
    for data in values.values():
        data[mask] = np.nan
    return EventSeries(flat.timestamps, values), gaps


def resample_counts(series: EventSeries, bucket_ns: int) -> EventSeries:
    """Aggregate per-interval deltas into fixed wall-clock buckets.

    Used to average multiple trials whose sample timestamps don't align
    exactly (jitter), as the paper does for Fig. 4's 10-trial average.
    """
    if bucket_ns <= 0:
        raise ExperimentError("bucket size must be positive")
    if len(series) == 0:
        return series
    start = int(series.timestamps[0])
    buckets = ((series.timestamps - start) // bucket_ns).astype(np.int64)
    count = int(buckets.max()) + 1
    timestamps = start + (np.arange(count, dtype=np.int64) + 1) * bucket_ns
    values: Dict[str, np.ndarray] = {}
    for name, data in series.values.items():
        summed = np.zeros(count, dtype=np.float64)
        np.add.at(summed, buckets, data)
        values[name] = summed
    return EventSeries(timestamps, values)


def moving_average(data: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge shrinkage."""
    if window <= 0:
        raise ExperimentError("window must be positive")
    if window == 1 or len(data) == 0:
        return np.asarray(data, dtype=np.float64)
    kernel = np.ones(window) / window
    padded = np.convolve(data, kernel, mode="same")
    # Correct the edges where the kernel hangs off the array.
    ones = np.convolve(np.ones(len(data)), kernel, mode="same")
    return padded / ones


def average_series(series_list: Sequence[EventSeries],
                   bucket_ns: int) -> EventSeries:
    """Bucket-align several trials' delta series and average them."""
    if not series_list:
        raise ExperimentError("no series to average")
    resampled = [resample_counts(series, bucket_ns) for series in series_list]
    length = max(len(series) for series in resampled)
    names = sorted({name for series in resampled for name in series.values})
    timestamps = np.arange(1, length + 1, dtype=np.int64) * bucket_ns
    values: Dict[str, np.ndarray] = {}
    for name in names:
        stacked = np.zeros((len(resampled), length), dtype=np.float64)
        for row, series in enumerate(resampled):
            data = series.values.get(name)
            if data is not None:
                stacked[row, :len(data)] = data
        values[name] = stacked.mean(axis=0)
    return EventSeries(timestamps, values)
