"""Derived performance metrics.

The quantities the paper reports: MPKI (Misses Per Kilo-Instruction,
§IV-B/C), GFLOPS (Table I), plus the usual IPC and miss-ratio helpers.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ExperimentError
from repro.tools.base import ToolReport


def mpki(misses: float, instructions: float) -> float:
    """Misses per kilo-instruction."""
    if instructions <= 0:
        raise ExperimentError("MPKI undefined for zero instructions")
    return misses / (instructions / 1000.0)


def ipc(instructions: float, cycles: float) -> float:
    """Instructions per cycle."""
    if cycles <= 0:
        raise ExperimentError("IPC undefined for zero cycles")
    return instructions / cycles


def gflops(flops: float, elapsed_ns: float) -> float:
    """Billions of floating-point operations per second."""
    if elapsed_ns <= 0:
        raise ExperimentError("GFLOPS undefined for zero elapsed time")
    return flops / elapsed_ns  # FLOPs per nanosecond == GFLOPS


def miss_ratio(misses: float, references: float) -> float:
    """LLC miss ratio (misses / references), 0 when no references."""
    if references <= 0:
        return 0.0
    return misses / references


def report_mpki(totals: Mapping[str, float],
                miss_event: str = "LLC_MISSES") -> float:
    """MPKI from a tool report's totals dict.

    Requires both the miss event and INST_RETIRED (always present: it
    lives on a fixed counter).
    """
    if miss_event not in totals:
        raise ExperimentError(
            f"totals lack {miss_event}; monitored events were insufficient"
        )
    if "INST_RETIRED" not in totals:
        raise ExperimentError("totals lack INST_RETIRED")
    return mpki(totals[miss_event], totals["INST_RETIRED"])


def report_mpki_from(report: ToolReport,
                     miss_event: str = "LLC_MISSES") -> float:
    """Convenience wrapper for :func:`report_mpki` on a ToolReport."""
    return report_mpki(report.totals, miss_event=miss_event)
