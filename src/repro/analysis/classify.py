"""Workload classification by memory intensity.

The paper applies the Muralidhara et al. (MICRO'11) rule to Docker
images (§IV-B): MPKI above 10 means memory-intensive; below,
computation-intensive.  Schedulers can use the classes to co-locate
complementary workloads (§IV-B's scheduling discussion).
"""

from __future__ import annotations

import enum
from typing import Mapping

from repro.analysis.metrics import report_mpki
from repro.tools.base import ToolReport

MPKI_THRESHOLD = 10.0


class WorkloadClass(enum.Enum):
    """Muralidhara memory-intensity classes."""

    COMPUTATION_INTENSIVE = "computation-intensive"
    MEMORY_INTENSIVE = "memory-intensive"


def classify_mpki(value: float,
                  threshold: float = MPKI_THRESHOLD) -> WorkloadClass:
    """Classify a measured MPKI value."""
    if value > threshold:
        return WorkloadClass.MEMORY_INTENSIVE
    return WorkloadClass.COMPUTATION_INTENSIVE


def classify_report(report: ToolReport,
                    threshold: float = MPKI_THRESHOLD) -> WorkloadClass:
    """Classify a monitored run from its LLC misses and instructions."""
    return classify_mpki(report_mpki(report.totals), threshold)


def classify_totals(totals: Mapping[str, float],
                    threshold: float = MPKI_THRESHOLD) -> WorkloadClass:
    """Classify raw totals (LLC_MISSES + INST_RETIRED)."""
    return classify_mpki(report_mpki(totals), threshold)
