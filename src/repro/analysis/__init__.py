"""Analysis of performance-counter data.

Pure functions over :class:`~repro.tools.base.ToolReport` objects and
raw sample series: derived metrics (MPKI, IPC, GFLOPS), time-series
manipulation, phase detection (the LINPACK load/compute/store cycles),
workload classification, overhead statistics, box-plot statistics
(Fig. 8), cross-tool count accuracy (Fig. 9), and the Meltdown anomaly
detector the paper sketches in §IV-C.
"""

from repro.analysis.metrics import (
    mpki,
    ipc,
    gflops,
    miss_ratio,
    report_mpki,
)
from repro.analysis.timeseries import (
    EventSeries,
    samples_to_series,
    deltas,
    resample_counts,
    moving_average,
)
from repro.analysis.phases import PhaseSegment, detect_phases, dominant_event
from repro.analysis.classify import (
    WorkloadClass,
    classify_mpki,
    classify_report,
    MPKI_THRESHOLD,
)
from repro.analysis.overhead import OverheadStats, overhead_percent, summarize_overhead
from repro.analysis.stats import BoxStats, box_stats, normalize
from repro.analysis.accuracy import count_difference_percent, accuracy_matrix
from repro.analysis.detection import AnomalyVerdict, detect_cache_anomaly

__all__ = [
    "mpki",
    "ipc",
    "gflops",
    "miss_ratio",
    "report_mpki",
    "EventSeries",
    "samples_to_series",
    "deltas",
    "resample_counts",
    "moving_average",
    "PhaseSegment",
    "detect_phases",
    "dominant_event",
    "WorkloadClass",
    "classify_mpki",
    "classify_report",
    "MPKI_THRESHOLD",
    "OverheadStats",
    "overhead_percent",
    "summarize_overhead",
    "BoxStats",
    "box_stats",
    "normalize",
    "count_difference_percent",
    "accuracy_matrix",
    "AnomalyVerdict",
    "detect_cache_anomaly",
]
