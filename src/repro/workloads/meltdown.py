"""Meltdown case study workloads (paper §IV-C, Figs. 6-7).

Two programs:

* :class:`SecretPrinter` — the benign victim: prints a secret string,
  with a short (<10 ms) runtime and moderate cache traffic
  (paper: 7.52 LLC misses per kilo-instruction on average).
* :class:`MeltdownAttack` — the same program with the Meltdown exploit
  attached: for every secret byte it runs Flush+Reload rounds — flush
  256 probe lines, transiently access the secret-indexed line, then
  reload all probe lines timing each one.  The reloads miss for every
  line except the transiently-touched one, which is exactly the side
  channel — and exactly why LLC references/misses explode (paper:
  27.53 MPKI, with clearly higher LLC counts in Figs. 6-7).

All cache events here are *emergent*: the blocks carry addresses, and
the simulated cache hierarchy decides what misses.  The probe lines are
spaced one page apart as in the public PoC (to defeat the prefetcher).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterator, List, Tuple

from repro.workloads.base import Block, MemOp, OpKind, Program, RateBlock, TraceBlock

_LINE = 64
_PAGE = 4096

# Victim shape: per secret character, a compute block plus a streaming
# trace.  Stream lines are fresh (LLC misses); a reuse trace revisits
# lines two characters back — far enough to have left L1/L2, close
# enough to still sit in the LLC, producing LLC *references* that are
# not misses.
_VICTIM_INSTR_PER_CHAR = 2.6e5
_VICTIM_STREAM_OPS = 2000
_VICTIM_REUSE_OPS = 1000
_VICTIM_TRACE_IPO = 2.0

# Attack shape: Flush+Reload rounds per character.  The PoC retries
# each byte many times to get a reliable read.
_PROBE_LINES = 256
_ATTACK_ROUNDS_PER_CHAR = 50
_ATTACK_TRACE_IPO = 4.0
_ATTACK_LOGIC_INSTR_PER_CHAR = 1.5e5

DEFAULT_SECRET = "SqueamishOssifrage!!"


# Op lists are pure functions of their address parameters, and trace
# execution never mutates them (the cursor only advances an index), so
# they are built once and shared across blocks() iterations and trials.
# A 20-char secret otherwise rebuilds ~60k MemOps per trial.
@lru_cache(maxsize=None)
def _victim_scan_ops(stream_base: int, index: int) -> Tuple[MemOp, ...]:
    """Streaming + reuse trace for victim character ``index``."""
    ops: List[MemOp] = []
    stream_start = stream_base + index * _VICTIM_STREAM_OPS * _LINE
    for op_index in range(_VICTIM_STREAM_OPS):
        ops.append(MemOp(stream_start + op_index * _LINE, OpKind.LOAD))
    if index >= 2:
        reuse_start = stream_base + (index - 2) * _VICTIM_STREAM_OPS * _LINE
        for op_index in range(_VICTIM_REUSE_OPS):
            ops.append(MemOp(reuse_start + op_index * _LINE, OpKind.LOAD))
    return tuple(ops)


# The attack block repeats one Flush+Reload round rounds_per_char
# times.  Memoizing the tiling keeps the *same tuple object* across
# blocks() iterations and trials, so the core's batch replay planner
# (keyed on op-tuple identity) compiles each character's trace once
# per process instead of once per trial.
@lru_cache(maxsize=None)
def _tiled_ops(round_ops: Tuple[MemOp, ...],
               repeats: int) -> Tuple[MemOp, ...]:
    return round_ops * repeats


@lru_cache(maxsize=None)
def _flush_reload_ops(probe_base: int, stride: int,
                      byte_value: int) -> Tuple[MemOp, ...]:
    """One Flush+Reload round: flush all probes, transient access,
    reload all probes (one hit — the leaked byte — 255 misses)."""
    ops: List[MemOp] = []
    for line in range(_PROBE_LINES):
        ops.append(MemOp(probe_base + line * stride, OpKind.FLUSH))
    # Transient out-of-order access: the secret byte indexes the
    # probe array; the architectural exception is suppressed but the
    # cache fill persists — the heart of Meltdown.
    ops.append(MemOp(probe_base + byte_value * stride, OpKind.LOAD))
    for line in range(_PROBE_LINES):
        ops.append(MemOp(probe_base + line * stride, OpKind.LOAD))
    return tuple(ops)


class SecretPrinter(Program):
    """The benign victim program: prints ``secret``, one char at a time."""

    def __init__(self, secret: str = DEFAULT_SECRET,
                 stream_base: int = 0x1000_0000) -> None:
        self.name = "secret-printer"
        self.secret = secret
        self.stream_base = stream_base

    @property
    def metadata(self) -> Dict[str, float]:
        return {"secret_length": float(len(self.secret))}

    def _victim_char_blocks(self, index: int) -> Iterator[Block]:
        """Blocks for processing one character (shared with the attack)."""
        yield RateBlock(
            instructions=_VICTIM_INSTR_PER_CHAR,
            rates={
                "LOADS": 0.30,
                "STORES": 0.14,
                "BRANCHES": 0.16,
                "BRANCH_MISSES": 0.003,
            },
            cpi=1.0,
            label=f"print-char-{index}",
        )
        yield TraceBlock(ops=_victim_scan_ops(self.stream_base, index),
                         instructions_per_op=_VICTIM_TRACE_IPO,
                         label=f"buffer-scan-{index}")

    def blocks(self) -> Iterator[Block]:
        yield RateBlock(instructions=5e4,
                        rates={"LOADS": 0.35, "STORES": 0.20, "BRANCHES": 0.12},
                        cpi=1.0, label="startup")
        for index in range(len(self.secret)):
            for block in self._victim_char_blocks(index):
                yield block


class MeltdownAttack(SecretPrinter):
    """The victim with the Meltdown Flush+Reload exploit attached."""

    def __init__(self, secret: str = DEFAULT_SECRET,
                 probe_base: int = 0x4000_0000,
                 rounds_per_char: int = _ATTACK_ROUNDS_PER_CHAR,
                 stream_base: int = 0x1000_0000,
                 probe_stride: int = _PAGE) -> None:
        super().__init__(secret=secret, stream_base=stream_base)
        self.name = "secret-printer+meltdown"
        self.probe_base = probe_base
        self.rounds_per_char = rounds_per_char
        # The PoC spaces probes one page apart to defeat the next-line
        # prefetcher; a naive line-spaced probe array is detectable
        # with the prefetcher enabled (see the prefetcher ablation).
        self.probe_stride = probe_stride
        self._recovered: List[str] = []

    def recovered_secret(self) -> str:
        """Bytes the side channel has leaked so far (fills in as it runs)."""
        return "".join(self._recovered)

    def _flush_reload_round(self, byte_value: int) -> List[MemOp]:
        """One Flush+Reload round (see :func:`_flush_reload_ops`)."""
        return list(_flush_reload_ops(self.probe_base, self.probe_stride,
                                      byte_value))

    def blocks(self) -> Iterator[Block]:
        self._recovered = []
        yield RateBlock(instructions=8e4,
                        rates={"LOADS": 0.35, "STORES": 0.20, "BRANCHES": 0.12},
                        cpi=1.0, label="attack-setup")
        for index, char in enumerate(self.secret):
            for block in self._victim_char_blocks(index):
                yield block
            # Attack bookkeeping: retry loops, timing comparisons.
            yield RateBlock(
                instructions=_ATTACK_LOGIC_INSTR_PER_CHAR,
                rates={"LOADS": 0.25, "STORES": 0.10, "BRANCHES": 0.22,
                       "BRANCH_MISSES": 0.01},
                cpi=1.0,
                label=f"attack-logic-{index}",
            )
            round_ops = _flush_reload_ops(self.probe_base, self.probe_stride,
                                          ord(char) & 0xFF)
            # Reuse the same op objects each round: the access pattern
            # repeats exactly, and trace construction cost matters.
            ops = _tiled_ops(round_ops, self.rounds_per_char)
            yield TraceBlock(ops=ops, instructions_per_op=_ATTACK_TRACE_IPO,
                             label=f"flush-reload-{index}")
            self._recovered.append(char)
