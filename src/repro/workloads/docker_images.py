"""Docker image workload profiles (paper §IV-B, Fig. 5).

The paper pulls popular images from Docker Hub and classifies them by
LLC misses per kilo-instruction (Muralidhara et al.: MPKI > 10 means
memory-intensive):

* interpreter images (Ruby, Golang, Python) — MPKI < 1;
* MySQL, Traefik, Ghost — MPKI between 1 and 10 (still
  computation-intensive);
* web-server images (Apache, Nginx, Tomcat) — MPKI well above 10.

Each profile describes one *service iteration* (a request / unit of
work): a compute block plus a memory trace over a hot working set,
fresh streaming lines (the LLC misses), and medium-distance reuse
(LLC hits).  MPKI emerges from those access patterns through the cache
model; the ``target_mpki`` field records the class the paper measured
so tests can assert the emergent value lands in the right class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np

from repro.workloads.base import Block, MemOp, OpKind, Program, RateBlock, TraceBlock

_LINE = 64


@dataclass(frozen=True)
class DockerImageProfile:
    """Behavioural profile of one Docker image's service loop."""

    image: str
    category: str                 # "interpreter" | "middleware" | "webserver"
    target_mpki: float            # class anchor from the paper's figure
    compute_instructions: float   # per iteration
    hot_set_bytes: int            # resident working set
    hot_ops: int                  # accesses into the hot set per iteration
    stream_ops: int               # fresh streaming lines per iteration (miss)
    reuse_ops: int                # medium-distance revisits (LLC hits)
    instructions_per_op: float = 4.0
    event_scale: float = 4.0
    cpi: float = 1.0
    # Long-distance revisits: addresses ~far_reuse_distance_lines back
    # in the stream history.  Chosen between the two platforms' LLC
    # capacities (i7-920: 128Ki lines; Xeon 8259CL: 256Ki lines), these
    # hit on the big-LLC machine and miss on the small one — the
    # paper's "absolute values of cache misses vary with the cache
    # structure of the processor".
    far_reuse_ops: int = 0
    far_reuse_distance_lines: int = 160_000


def _profile(image: str, category: str, target_mpki: float,
             stream_ops: int, hot_set_kib: int, hot_ops: int = 800,
             reuse_ops: int = 300, far_reuse_ops: int = 0,
             compute_instructions: float = 1.0e6) -> DockerImageProfile:
    return DockerImageProfile(
        image=image,
        category=category,
        target_mpki=target_mpki,
        compute_instructions=compute_instructions,
        hot_set_bytes=hot_set_kib * 1024,
        hot_ops=hot_ops,
        stream_ops=stream_ops,
        reuse_ops=reuse_ops,
        far_reuse_ops=far_reuse_ops,
    )


# stream_ops per iteration is the dominant MPKI knob: each fresh line is
# one LLC miss.  With ~1e6 compute instructions plus trace instructions,
# MPKI ~= stream_ops / (total kilo-instructions).
DOCKER_IMAGES: Dict[str, DockerImageProfile] = {
    profile.image: profile
    for profile in [
        # Interpreters: everything lives in the hot set.
        _profile("python", "interpreter", 0.60, stream_ops=410, hot_set_kib=384),
        _profile("golang", "interpreter", 0.30, stream_ops=175, hot_set_kib=256),
        _profile("ruby", "interpreter", 0.45, stream_ops=290, hot_set_kib=320),
        _profile("node", "interpreter", 0.80, stream_ops=560, hot_set_kib=448),
        # Middleware: moderate streaming (query buffers, logs).
        _profile("mysql", "middleware", 4.5, stream_ops=4340, hot_set_kib=1024),
        _profile("traefik", "middleware", 2.8, stream_ops=2540, hot_set_kib=768),
        _profile("ghost", "middleware", 6.5, stream_ops=6590, hot_set_kib=1024),
        _profile("postgres", "middleware", 5.5, stream_ops=5400, hot_set_kib=1536),
        _profile("redis", "middleware", 8.5, stream_ops=8700, hot_set_kib=2048),
        # Web servers: request/response buffers stream through memory.
        _profile("apache", "webserver", 18.0, stream_ops=19900, hot_set_kib=3072,
                 far_reuse_ops=1700),
        _profile("nginx", "webserver", 14.0, stream_ops=14650, hot_set_kib=2048,
                 far_reuse_ops=1250),
        _profile("tomcat", "webserver", 22.0, stream_ops=25700, hot_set_kib=4096,
                 far_reuse_ops=2200),
    ]
}


class ContainerWorkload(Program):
    """The service loop of one container, built from its image profile."""

    def __init__(self, profile: DockerImageProfile, iterations: int = 20,
                 seed: int = 0, address_base: int = 0x2000_0000) -> None:
        self.name = f"container-{profile.image}"
        self.profile = profile
        self.iterations = iterations
        self.seed = seed
        self.address_base = address_base

    @property
    def metadata(self) -> Dict[str, float]:
        return {
            "target_mpki": self.profile.target_mpki,
            "iterations": float(self.iterations),
        }

    def blocks(self) -> Iterator[Block]:
        profile = self.profile
        rng = np.random.default_rng(self.seed)
        hot_lines = max(1, profile.hot_set_bytes // _LINE)
        hot_base = self.address_base
        stream_base = self.address_base + profile.hot_set_bytes + (1 << 24)
        stream_cursor = 0
        previous_stream: List[int] = []
        history: List[int] = []
        for iteration in range(self.iterations):
            yield RateBlock(
                instructions=profile.compute_instructions,
                rates={
                    "LOADS": 0.28,
                    "STORES": 0.13,
                    "BRANCHES": 0.17,
                    "BRANCH_MISSES": 0.004,
                },
                cpi=profile.cpi,
                label=f"service-{iteration}",
            )
            ops: List[MemOp] = []
            hot_indices = rng.integers(0, hot_lines, size=profile.hot_ops)
            for index in hot_indices:
                ops.append(MemOp(hot_base + int(index) * _LINE, OpKind.LOAD))
            stream_addresses: List[int] = []
            for _ in range(profile.stream_ops):
                address = stream_base + stream_cursor * _LINE
                stream_cursor += 1
                stream_addresses.append(address)
                ops.append(MemOp(address, OpKind.LOAD))
            if previous_stream and profile.reuse_ops:
                step = max(1, len(previous_stream) // profile.reuse_ops)
                for address in previous_stream[::step][:profile.reuse_ops]:
                    ops.append(MemOp(address, OpKind.LOAD))
            if profile.far_reuse_ops and \
                    len(history) > profile.far_reuse_distance_lines:
                window_end = len(history) - profile.far_reuse_distance_lines
                window = history[max(0, window_end - profile.far_reuse_ops):
                                 window_end]
                for address in window:
                    ops.append(MemOp(address, OpKind.LOAD))
            history.extend(stream_addresses)
            previous_stream = stream_addresses
            yield TraceBlock(
                ops=ops,
                instructions_per_op=profile.instructions_per_op,
                event_scale=profile.event_scale,
                cpi=profile.cpi,
                label=f"memory-{iteration}",
            )
