"""Workload intermediate representation.

A *program* is a sequence of **blocks**, the atomic units the simulated
core executes:

* :class:`RateBlock` — ``n`` instructions with a fixed per-instruction
  event mix and CPI.  Supports partial execution, so the scheduler can
  preempt mid-block.  Used for compute-dominated workloads (LINPACK,
  matrix multiply) where cache state does not need to be simulated.
* :class:`TraceBlock` — an explicit list of memory operations replayed
  through the cache hierarchy.  Cache events (LLC references/misses)
  *emerge* from the access pattern.  Used for the Meltdown and Docker
  case studies.
* :class:`SyscallBlock` — the program traps into the kernel.  Used by
  instrumentation-based tools (PAPI, LiMiT) whose counter reads execute
  inside the monitored program, and by programs that sleep or do I/O.

Programs are *factories*: ``program.blocks()`` returns a fresh iterator
each call, so one definition can run many trials and tools can wrap it
with instrumentation without consuming the original.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Union

from repro.errors import WorkloadError


class OpKind(enum.Enum):
    """Kind of one memory operation in a trace."""

    LOAD = "load"
    STORE = "store"
    FLUSH = "flush"   # clflush — invalidates without access


class MemOp(NamedTuple):
    """One memory operation: a byte address plus operation kind.

    A ``NamedTuple`` rather than a dataclass: traces contain hundreds
    of thousands of these, and construction cost dominates trace build
    time otherwise.
    """

    address: int
    kind: OpKind = OpKind.LOAD


@dataclass
class RateBlock:
    """``instructions`` instructions with fixed event rates.

    Attributes:
        instructions: total instructions in the block (may be fractional
            after a partial execution).
        rates: per-instruction occurrence rate of each PMU event
            (``INST_RETIRED`` and cycle events are implicit and must not
            appear here).
        cpi: cycles per instruction for this block.
        privilege: ``"user"`` or ``"kernel"`` — ring the block runs in.
        label: phase name, surfaced in time-series analysis.
    """

    instructions: float
    rates: Dict[str, float] = field(default_factory=dict)
    cpi: float = 1.0
    privilege: str = "user"
    label: str = ""

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise WorkloadError("RateBlock needs a non-negative instruction count")
        if self.cpi <= 0:
            raise WorkloadError("RateBlock needs a positive CPI")
        for name, rate in self.rates.items():
            if rate < 0:
                raise WorkloadError(f"negative rate for event {name!r}")
        if "INST_RETIRED" in self.rates or "CORE_CYCLES" in self.rates:
            raise WorkloadError("instruction/cycle events are implicit in RateBlock")


@dataclass
class TraceBlock:
    """Explicit memory operations replayed through the cache hierarchy.

    Attributes:
        ops: the memory operations, in order.
        instructions_per_op: non-memory instructions interleaved before
            each op (charged at ``cpi``).
        event_scale: memory instructions folded into each simulated op.
            One op stands for ``event_scale`` real accesses with spatial
            locality: one access is replayed through the cache, the
            other ``event_scale - 1`` hit L1 (same/adjacent line) and
            are charged as ordinary instructions.  LOADS/STORES count
            all of them; cache miss events come only from the simulated
            access — faithful MPKI at a fraction of the trace length.
        cpi: CPI of the interleaved non-memory instructions.
        privilege: ring the block runs in.
        label: phase name.
    """

    ops: Sequence[MemOp]
    instructions_per_op: float = 0.0
    event_scale: float = 1.0
    cpi: float = 1.0
    privilege: str = "user"
    label: str = ""

    def __post_init__(self) -> None:
        if self.instructions_per_op < 0:
            raise WorkloadError("instructions_per_op must be non-negative")
        if self.event_scale <= 0:
            raise WorkloadError("event_scale must be positive")
        if self.cpi <= 0:
            raise WorkloadError("TraceBlock needs a positive CPI")


@dataclass
class SyscallBlock:
    """The program invokes a system call.

    ``handler`` runs kernel-side when the kernel services the trap; it
    receives the kernel object and the calling task and may return a
    value (stored on the task for tools that care).  ``name`` selects
    the kernel's cost model entry for the call.
    """

    name: str
    handler: Optional[Callable] = None
    label: str = ""


Block = Union[RateBlock, TraceBlock, SyscallBlock]

# Sentinel syscall name for a *user-space probe*: the handler runs but
# no trap cost is charged — models unprivileged instructions observing
# state (LiMiT's rdpmc counter reads, timing checks).
USER_PROBE = "__user_probe__"


def user_probe(handler: Callable, label: str = "user-probe") -> SyscallBlock:
    """A zero-cost callback block (see :data:`USER_PROBE`)."""
    return SyscallBlock(name=USER_PROBE, handler=handler, label=label)


def scale_rate_block(block: RateBlock, factor: float) -> RateBlock:
    """A copy of ``block`` with the instruction count scaled by ``factor``."""
    if factor < 0:
        raise WorkloadError("scale factor must be non-negative")
    return replace(block, instructions=block.instructions * factor)


class Program:
    """Base class for workload programs.

    Subclasses override :meth:`blocks` to yield the block sequence and
    may override :attr:`name`.  ``metadata`` carries workload-specific
    ground truth (e.g. total FLOPs for LINPACK) used by analysis code.
    """

    name: str = "program"

    def blocks(self) -> Iterator[Block]:
        raise NotImplementedError

    @property
    def metadata(self) -> Dict[str, float]:
        return {}

    def instrumented(self, inserter: "BlockInserter") -> "Program":
        """A derived program with instrumentation blocks woven in.

        This models source-level instrumentation (PAPI/LiMiT): the tool
        recompiles the program with counter reads at strategic points.
        """
        return _InstrumentedProgram(self, inserter)


class ListProgram(Program):
    """A program defined by a concrete list of block prototypes."""

    def __init__(self, name: str, blocks: Iterable[Block],
                 metadata: Optional[Dict[str, float]] = None) -> None:
        self.name = name
        self._blocks = list(blocks)
        self._metadata = dict(metadata or {})

    def blocks(self) -> Iterator[Block]:
        for block in self._blocks:
            yield _copy_block(block)

    @property
    def metadata(self) -> Dict[str, float]:
        return dict(self._metadata)


class BlockInserter:
    """Strategy deciding where instrumentation blocks go.

    ``every_instructions`` inserts the blocks produced by ``factory``
    each time roughly that many instructions of the original program
    have streamed past (trace ops count as ``instructions_per_op + 1``).
    ``prologue``/``epilogue`` factories run once at program start/end.
    """

    def __init__(self, factory: Callable[[], List[Block]],
                 every_instructions: float,
                 prologue: Optional[Callable[[], List[Block]]] = None,
                 epilogue: Optional[Callable[[], List[Block]]] = None) -> None:
        if every_instructions <= 0:
            raise WorkloadError("insertion interval must be positive")
        self.factory = factory
        self.every_instructions = every_instructions
        self.prologue = prologue
        self.epilogue = epilogue


class _InstrumentedProgram(Program):
    """Weaves instrumentation blocks into a base program."""

    def __init__(self, base: Program, inserter: BlockInserter) -> None:
        self._base = base
        self._inserter = inserter
        self.name = f"{base.name}+instrumented"

    @property
    def metadata(self) -> Dict[str, float]:
        return self._base.metadata

    def blocks(self) -> Iterator[Block]:
        inserter = self._inserter
        if inserter.prologue is not None:
            for block in inserter.prologue():
                yield block
        budget = inserter.every_instructions
        for block in self._base.blocks():
            if isinstance(block, RateBlock):
                remaining = block.instructions
                while remaining > 0:
                    take = min(remaining, budget)
                    if take > 0:
                        yield replace(block, instructions=take,
                                      rates=dict(block.rates))
                    remaining -= take
                    budget -= take
                    if budget <= 0:
                        for inserted in inserter.factory():
                            yield inserted
                        budget = inserter.every_instructions
            elif isinstance(block, TraceBlock):
                per_op = block.instructions_per_op + 1.0
                ops = list(block.ops)
                start = 0
                while start < len(ops):
                    take_ops = max(1, int(budget / per_op))
                    chunk = ops[start:start + take_ops]
                    yield replace(block, ops=chunk)
                    start += len(chunk)
                    budget -= len(chunk) * per_op
                    if budget <= 0:
                        for inserted in inserter.factory():
                            yield inserted
                        budget = inserter.every_instructions
            else:
                yield block
        if inserter.epilogue is not None:
            for block in inserter.epilogue():
                yield block


class BlockCursor:
    """Execution cursor over a program's block stream.

    The simulated core consumes programs through this cursor: it tracks
    the current block and how much of it has already executed, so a
    preempted task resumes exactly where it stopped.
    """

    _EPSILON = 1e-9

    def __init__(self, program: Program) -> None:
        self.program = program
        self._iterator = program.blocks()
        self._current: Optional[Block] = None
        self._op_index = 0
        self.finished = False

    def peek(self) -> Optional[Block]:
        """Current block, fetching the next one if needed; None at end."""
        if self.finished:
            return None
        if self._current is None:
            try:
                self._current = next(self._iterator)
                self._op_index = 0
            except StopIteration:
                self.finished = True
                return None
        return self._current

    def advance(self) -> None:
        """Discard the current block and move to the next."""
        self._current = None
        self._op_index = 0

    # -- RateBlock consumption ----------------------------------------
    def consume_instructions(self, count: float) -> None:
        """Record that ``count`` instructions of the current RateBlock ran."""
        block = self._require(RateBlock)
        if count - block.instructions > self._EPSILON:
            raise WorkloadError(
                f"consumed {count} instructions but only "
                f"{block.instructions} remain in block {block.label!r}"
            )
        block.instructions -= count
        if block.instructions <= self._EPSILON:
            self.advance()

    # -- TraceBlock consumption ---------------------------------------
    @property
    def op_index(self) -> int:
        return self._op_index

    def remaining_ops(self) -> int:
        block = self._require(TraceBlock)
        return len(block.ops) - self._op_index

    def consume_ops(self, count: int) -> None:
        """Record that ``count`` memory ops of the current TraceBlock ran."""
        block = self._require(TraceBlock)
        if self._op_index + count > len(block.ops):
            raise WorkloadError("consumed more trace ops than remain")
        self._op_index += count
        if self._op_index >= len(block.ops):
            self.advance()

    def _require(self, kind: type) -> Block:
        block = self.peek()
        if not isinstance(block, kind):
            raise WorkloadError(
                f"cursor expected {kind.__name__}, found {type(block).__name__}"
            )
        return block


def _copy_block(block: Block) -> Block:
    """Fresh copy so one prototype list can serve many runs."""
    if isinstance(block, RateBlock):
        return replace(block, rates=dict(block.rates))
    if isinstance(block, TraceBlock):
        return replace(block)
    return replace(block)
