"""LINPACK benchmark analogue (paper §IV-A, Table I, Fig. 4).

The paper profiles the Intel MKL LINPACK binary (problem size 5000)
and highlights three behaviours K-LEB captures:

1. an **initialization** phase running at kernel level (no user-mode
   counts for the first samples);
2. a **setup** phase with a sharp rise in LOAD/STORE and few
   multiplies (building the matrix);
3. the **solve** phase with a repeating load -> compute -> store cycle.

The model reproduces that phase structure with rate blocks and carries
the ground-truth FLOP count (2/3·n³ + 2·n²) so experiments can compute
GFLOPS from the *measured* solve wall time — monitoring overhead
stretches the solve phase and lowers GFLOPS exactly as in Table I.

Timing markers: the program brackets the solve section with
``gettimeofday`` syscalls that stamp ``solve_start``/``solve_end`` into
the task's scratch area, mirroring how LINPACK itself times only the
factor/solve step.
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.errors import WorkloadError
from repro.workloads.base import Block, Program, RateBlock, SyscallBlock

# Effective FLOPs per retired instruction during the solve phase.
# The i7-920 the paper used reaches 37.24 GFLOPS across its four SSE
# cores; our single "aggregate core" at 2.67 GHz and CPI 1 therefore
# retires ~14 FLOPs per instruction.  This is a representation choice,
# not a calibration against the tools (see DESIGN.md §5).
FLOPS_PER_INSTRUCTION = 13.95

_SOLVE_CYCLES = 12  # repeating load/compute/store cycles visible in Fig. 4


class LinpackWorkload(Program):
    """Dense linear system solve: factor + solve with phase structure."""

    def __init__(self, problem_size: int = 5000,
                 init_seconds: float = 0.25,
                 setup_seconds: float = 1.9,
                 frequency_hz: float = 2.67e9) -> None:
        if problem_size < 10:
            raise WorkloadError("LINPACK problem size too small to model")
        self.name = f"linpack-n{problem_size}"
        self.problem_size = problem_size
        self.frequency_hz = frequency_hz
        n = float(problem_size)
        self.total_flops = (2.0 / 3.0) * n ** 3 + 2.0 * n ** 2
        self._init_instructions = init_seconds * frequency_hz
        self._setup_instructions = setup_seconds * frequency_hz
        self._solve_instructions = self.total_flops / FLOPS_PER_INSTRUCTION

    @property
    def metadata(self) -> Dict[str, float]:
        return {
            "total_flops": self.total_flops,
            "problem_size": float(self.problem_size),
            "solve_instructions": self._solve_instructions,
        }

    def blocks(self) -> Iterator[Block]:
        # Phase 1: kernel-level initialization — config parsing, memory
        # mapping.  Runs at kernel privilege, so a user-only monitor
        # (K-LEB's default) records near-zero counts here (Fig. 4).
        yield RateBlock(
            instructions=self._init_instructions,
            rates={"LOADS": 0.32, "STORES": 0.18, "BRANCHES": 0.16},
            cpi=1.1,
            privilege="kernel",
            label="init",
        )
        # Phase 2: benchmark parameter setup — matrix generation.
        # Sharp LOAD/STORE rise, few multiplies.
        yield RateBlock(
            instructions=self._setup_instructions,
            rates={
                "LOADS": 0.95,
                "STORES": 0.80,
                "ARITH_MUL": 0.02,
                "FP_OPS": 0.05,
                "BRANCHES": 0.10,
                "LLC_REFERENCES": 0.004,
                "LLC_MISSES": 0.001,
            },
            cpi=1.0,
            label="setup",
        )
        yield SyscallBlock("gettimeofday", handler=_stamp("solve_start"),
                           label="solve-start")
        # Phase 3: solve — repeating load -> compute -> store cycles.
        per_cycle = self._solve_instructions / _SOLVE_CYCLES
        for index in range(_SOLVE_CYCLES):
            yield RateBlock(
                instructions=per_cycle * 0.22,
                rates={
                    "LOADS": 1.30,
                    "STORES": 0.10,
                    "ARITH_MUL": 0.40,
                    "FP_OPS": 1.0,
                    "BRANCHES": 0.06,
                    "LLC_REFERENCES": 0.006,
                    "LLC_MISSES": 0.002,
                },
                cpi=1.0,
                label=f"solve-load-{index}",
            )
            yield RateBlock(
                instructions=per_cycle * 0.60,
                rates={
                    "LOADS": 0.45,
                    "STORES": 0.05,
                    "ARITH_MUL": 7.0,       # SIMD multiply-accumulate
                    "FP_OPS": FLOPS_PER_INSTRUCTION * 1.35,
                    "BRANCHES": 0.04,
                    "LLC_REFERENCES": 0.002,
                    "LLC_MISSES": 0.0005,
                },
                cpi=1.0,
                label=f"solve-compute-{index}",
            )
            yield RateBlock(
                instructions=per_cycle * 0.18,
                rates={
                    "LOADS": 0.25,
                    "STORES": 1.20,
                    "ARITH_MUL": 0.30,
                    "FP_OPS": 0.6,
                    "BRANCHES": 0.05,
                    "LLC_REFERENCES": 0.005,
                    "LLC_MISSES": 0.0015,
                },
                cpi=1.0,
                label=f"solve-store-{index}",
            )
        yield SyscallBlock("gettimeofday", handler=_stamp("solve_end"),
                           label="solve-end")


def _stamp(key: str):
    """Syscall handler writing the current time into task scratch."""

    def handler(kernel, task):
        task.scratch[key] = kernel.now
        return kernel.now

    return handler


def measured_gflops(run) -> float:
    """GFLOPS from the recorded solve window.

    Accepts anything carrying the timing markers and program metadata:
    a live :class:`~repro.kernel.process.Task` or a
    :class:`~repro.experiments.runner.TrialSummary`.  Raises
    :class:`WorkloadError` if the program has not completed its timing
    markers yet.
    """
    scratch = run.scratch
    if "solve_start" not in scratch or "solve_end" not in scratch:
        raise WorkloadError("LINPACK timing markers missing — run incomplete")
    elapsed_ns = scratch["solve_end"] - scratch["solve_start"]
    if elapsed_ns <= 0:
        raise WorkloadError("LINPACK solve window is empty")
    metadata = getattr(run, "program_metadata", None)
    if metadata is None:
        metadata = run.program.metadata
    flops = metadata["total_flops"]
    return flops / elapsed_ns  # FLOPs per ns == GFLOPS
