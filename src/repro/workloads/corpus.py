"""A small corpus of SPEC-like synthetic programs.

Eight programs with distinct, stable event mixes — compression,
pointer-chasing graph code, a compiler-like branchy mix, dense and
sparse numeric kernels, and so on.  Useful wherever a *population* of
distinguishable programs is needed:

* enrolling a signature database for the verification application
  (each program's per-instruction mix is its fingerprint);
* exercising classifiers and schedulers on more than two behaviours;
* generating varied monitoring traces in tests.

Rates are loosely modelled on published SPEC CPU characterizations
(branchy integer codes vs FP kernels vs memory-bound sweeps); what
matters here is that they are *distinct and internally consistent*, not
that they match any particular SPEC version's absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.base import Block, Program, RateBlock


@dataclass(frozen=True)
class CorpusProfile:
    """Event mix and shape of one corpus program."""

    name: str
    description: str
    rates: Dict[str, float]
    cpi: float
    default_instructions: float


CORPUS_PROFILES: Dict[str, CorpusProfile] = {
    profile.name: profile
    for profile in [
        CorpusProfile(
            name="bzip-like",
            description="block-sorting compression: byte loads, tables, "
                        "branchy inner loops",
            rates={"LOADS": 0.42, "STORES": 0.18, "BRANCHES": 0.22,
                   "BRANCH_MISSES": 0.018, "ARITH_MUL": 0.01,
                   "LLC_REFERENCES": 0.004, "LLC_MISSES": 0.001},
            cpi=1.15,
            default_instructions=8e7,
        ),
        CorpusProfile(
            name="mcf-like",
            description="network simplex: pointer chasing, cache hostile",
            rates={"LOADS": 0.38, "STORES": 0.09, "BRANCHES": 0.20,
                   "BRANCH_MISSES": 0.012, "ARITH_MUL": 0.005,
                   "LLC_REFERENCES": 0.045, "LLC_MISSES": 0.028},
            cpi=2.4,
            default_instructions=5e7,
        ),
        CorpusProfile(
            name="gcc-like",
            description="compiler: very branchy, moderate memory",
            rates={"LOADS": 0.30, "STORES": 0.16, "BRANCHES": 0.26,
                   "BRANCH_MISSES": 0.022, "ARITH_MUL": 0.008,
                   "LLC_REFERENCES": 0.009, "LLC_MISSES": 0.003},
            cpi=1.3,
            default_instructions=7e7,
        ),
        CorpusProfile(
            name="namd-like",
            description="molecular dynamics: dense FP, few branches",
            rates={"LOADS": 0.34, "STORES": 0.12, "BRANCHES": 0.05,
                   "BRANCH_MISSES": 0.001, "ARITH_MUL": 0.30,
                   "FP_OPS": 0.85, "LLC_REFERENCES": 0.002,
                   "LLC_MISSES": 0.0006},
            cpi=0.8,
            default_instructions=1.2e8,
        ),
        CorpusProfile(
            name="lbm-like",
            description="lattice Boltzmann: streaming FP, memory bound",
            rates={"LOADS": 0.40, "STORES": 0.28, "BRANCHES": 0.03,
                   "BRANCH_MISSES": 0.0005, "ARITH_MUL": 0.18,
                   "FP_OPS": 0.55, "LLC_REFERENCES": 0.035,
                   "LLC_MISSES": 0.022},
            cpi=1.9,
            default_instructions=6e7,
        ),
        CorpusProfile(
            name="perl-like",
            description="interpreter: dispatch branches, hash lookups",
            rates={"LOADS": 0.36, "STORES": 0.20, "BRANCHES": 0.24,
                   "BRANCH_MISSES": 0.015, "ARITH_MUL": 0.012,
                   "LLC_REFERENCES": 0.006, "LLC_MISSES": 0.0015},
            cpi=1.25,
            default_instructions=7e7,
        ),
        CorpusProfile(
            name="sjeng-like",
            description="game tree search: branches + bit tricks",
            rates={"LOADS": 0.26, "STORES": 0.10, "BRANCHES": 0.23,
                   "BRANCH_MISSES": 0.028, "ARITH_MUL": 0.02,
                   "LLC_REFERENCES": 0.003, "LLC_MISSES": 0.0008},
            cpi=1.1,
            default_instructions=9e7,
        ),
        CorpusProfile(
            name="libquantum-like",
            description="quantum simulation: regular sweeps, wide loads",
            rates={"LOADS": 0.45, "STORES": 0.22, "BRANCHES": 0.08,
                   "BRANCH_MISSES": 0.001, "ARITH_MUL": 0.10,
                   "FP_OPS": 0.20, "LLC_REFERENCES": 0.028,
                   "LLC_MISSES": 0.018},
            cpi=1.6,
            default_instructions=8e7,
        ),
    ]
}


class CorpusWorkload(Program):
    """One corpus program, optionally scaled in length."""

    def __init__(self, profile_name: str,
                 instructions: float = 0.0,
                 chunk_instructions: float = 5e6) -> None:
        try:
            profile = CORPUS_PROFILES[profile_name]
        except KeyError:
            known = ", ".join(sorted(CORPUS_PROFILES))
            raise WorkloadError(
                f"unknown corpus program {profile_name!r} (known: {known})"
            ) from None
        self.profile = profile
        self.name = profile.name
        self.instructions = (instructions if instructions > 0
                             else profile.default_instructions)
        self.chunk_instructions = chunk_instructions
        # Chunk plan computed once: blocks() stamps a fresh RateBlock
        # per chunk each run (the cursor consumes instruction counts in
        # place, so the block objects themselves cannot be shared), but
        # the sizes never change between trials.
        sizes: List[float] = []
        remaining = self.instructions
        while remaining > 0:
            take = min(remaining, self.chunk_instructions)
            sizes.append(take)
            remaining -= take
        self._chunk_sizes: Tuple[float, ...] = tuple(sizes)

    @property
    def metadata(self) -> Dict[str, float]:
        return {"instructions": self.instructions,
                "cpi_hint": self.profile.cpi}

    def blocks(self) -> Iterator[Block]:
        profile = self.profile
        # Execution never mutates a block's rates (only the instruction
        # count), so every chunk can alias the profile's dict instead of
        # copying it — long corpus runs yield thousands of chunks.
        rates = profile.rates
        for take in self._chunk_sizes:
            yield RateBlock(instructions=take,
                            rates=rates,
                            cpi=profile.cpi,
                            label=profile.name)


def corpus_programs(instructions: float = 0.0) -> List[CorpusWorkload]:
    """Instantiate the whole corpus (optionally length-normalized)."""
    return [CorpusWorkload(name, instructions=instructions)
            for name in sorted(CORPUS_PROFILES)]


def memory_bound_names() -> Tuple[str, ...]:
    """Corpus programs whose LLC MPKI class is memory-intensive."""
    return tuple(
        name for name, profile in sorted(CORPUS_PROFILES.items())
        if profile.rates.get("LLC_MISSES", 0.0) * 1000 > 10
    )
