"""Docker engine model (paper §IV-B).

``docker run`` produces a small process tree: the shim process sets up
the container environment, forks the containerized workload, and waits
for it.  K-LEB is pointed at the *shim* PID and must follow the fork to
the actual workload — exactly the multi-PID tracing the paper calls out
("a single application can have multiple PIDs ... trace the process,
and its children").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, TYPE_CHECKING

from repro.errors import WorkloadError
from repro.sim.clock import ms

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Task
from repro.workloads.base import Block, Program, RateBlock, SyscallBlock
from repro.workloads.docker_images import (
    DOCKER_IMAGES,
    ContainerWorkload,
    DockerImageProfile,
)

_container_ids = itertools.count(1)


@dataclass
class DockerContainer:
    """Handle to a launched container's process tree."""

    container_id: str
    image: str
    shim_task: "Task"
    _workload_holder: Dict[str, "Task"] = field(default_factory=dict)

    @property
    def workload_task(self) -> Optional["Task"]:
        """The forked container process (None until the fork happens)."""
        return self._workload_holder.get("task")

    @property
    def finished(self) -> bool:
        return not self.shim_task.alive


class _ShimProgram(Program):
    """containerd-shim: set up, fork the workload, wait, tear down."""

    def __init__(self, workload: Program, image: str,
                 holder: Dict[str, "Task"]) -> None:
        self.name = f"containerd-shim-{image}"
        self._workload = workload
        self._image = image
        self._holder = holder

    def blocks(self) -> Iterator[Block]:
        # Namespace/cgroup setup work.
        yield RateBlock(instructions=4e5,
                        rates={"LOADS": 0.30, "STORES": 0.18, "BRANCHES": 0.15},
                        cpi=1.1, label="container-setup")

        def do_fork(kernel: "Kernel", task: "Task") -> int:
            child = kernel.spawn(self._workload,
                                 name=f"{self._image}-main",
                                 ppid=task.pid)
            self._holder["task"] = child
            return child.pid

        yield SyscallBlock("fork", handler=do_fork, label="fork-workload")

        # waitpid loop: poll the child, sleeping between checks.
        status: Dict[str, bool] = {}

        def do_wait(kernel: "Kernel", task: "Task") -> bool:
            child = self._holder.get("task")
            if child is None:
                raise WorkloadError("shim waited before forking")
            if not child.alive:
                status["done"] = True
                return True
            kernel.sleep_current(ms(1))
            return False

        while not status.get("done"):
            yield SyscallBlock("wait", handler=do_wait, label="waitpid")

        yield RateBlock(instructions=1e5,
                        rates={"LOADS": 0.25, "STORES": 0.15, "BRANCHES": 0.12},
                        cpi=1.1, label="container-teardown")


class DockerEngine:
    """Launches containers as process trees on a simulated kernel."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    def run_container(self, image: str, iterations: int = 20,
                      seed: int = 0) -> DockerContainer:
        """``docker run image`` — spawn the shim (which forks the workload)."""
        profile = self.image_profile(image)
        container_number = next(_container_ids)
        workload = ContainerWorkload(
            profile,
            iterations=iterations,
            seed=seed,
            # Separate address spaces so containers don't share cache lines.
            address_base=0x2000_0000 + container_number * 0x0800_0000,
        )
        holder: Dict[str, Task] = {}
        shim = self.kernel.spawn(
            _ShimProgram(workload, image, holder),
            name=f"containerd-shim-{image}",
        )
        return DockerContainer(
            container_id=f"c{container_number:04d}",
            image=image,
            shim_task=shim,
            _workload_holder=holder,
        )

    @staticmethod
    def image_profile(image: str) -> DockerImageProfile:
        try:
            return DOCKER_IMAGES[image]
        except KeyError:
            known = ", ".join(sorted(DOCKER_IMAGES))
            raise WorkloadError(
                f"unknown docker image {image!r} (known: {known})"
            ) from None

    @staticmethod
    def available_images() -> list:
        return sorted(DOCKER_IMAGES)
