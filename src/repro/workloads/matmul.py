"""Triple-nested-loop matrix multiplication (paper §V, Table II, Fig. 8).

The paper's overhead test program: a plain C triple loop multiplying
two n×n matrices, chosen because its runtime is easily adjusted and its
source is available for the tools that need instrumentation (PAPI,
LiMiT).  At n=1024 the model runs ≈2 s on the i7-920 preset, matching
the paper's "2 s required by the traditional triple nested loop".

The inner loop body is modelled at 5 instructions per iteration
(2 loads, multiply+add, accumulator store, loop bookkeeping) with n³
iterations.
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.errors import WorkloadError
from repro.workloads.base import Block, Program, RateBlock

_INSTRUCTIONS_PER_ITERATION = 5.0
_CHUNK_INSTRUCTIONS = 2e7


class TripleLoopMatmul(Program):
    """n³ inner-loop iterations of load/load/multiply/add."""

    def __init__(self, n: int = 1024) -> None:
        if n < 2:
            raise WorkloadError("matrix dimension must be at least 2")
        self.name = f"matmul-triple-n{n}"
        self.n = n
        self.iterations = float(n) ** 3
        self.instructions = self.iterations * _INSTRUCTIONS_PER_ITERATION
        self.total_flops = 2.0 * self.iterations  # multiply + add

    @property
    def metadata(self) -> Dict[str, float]:
        return {
            "instructions": self.instructions,
            "total_flops": self.total_flops,
            "n": float(self.n),
            "cpi_hint": 1.0,
        }

    def blocks(self) -> Iterator[Block]:
        # Event mix per instruction given the 5-instruction loop body:
        # 2 loads, 1 multiply/FP-add pair, 1 store of the c[i][j]
        # accumulator (naive compiled code does not promote it to a
        # register), 1 loop branch.  The access pattern of a naive
        # triple loop misses the LLC rarely at these sizes.
        rates = {
            "LOADS": 2.0 / _INSTRUCTIONS_PER_ITERATION,
            "STORES": 1.0 / _INSTRUCTIONS_PER_ITERATION,
            "ARITH_MUL": 1.0 / _INSTRUCTIONS_PER_ITERATION,
            "FP_OPS": 2.0 / _INSTRUCTIONS_PER_ITERATION,
            "BRANCHES": 1.0 / _INSTRUCTIONS_PER_ITERATION,
            "BRANCH_MISSES": 0.0006,
            "LLC_REFERENCES": 0.0020,
            "LLC_MISSES": 0.0004,
        }
        remaining = self.instructions
        while remaining > 0:
            take = min(remaining, _CHUNK_INSTRUCTIONS)
            yield RateBlock(instructions=take, rates=dict(rates), cpi=1.0,
                            label="matmul")
            remaining -= take
