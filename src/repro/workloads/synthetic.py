"""Simple synthetic workloads used by tests and ablation benchmarks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import Block, MemOp, OpKind, Program, RateBlock, TraceBlock

DEFAULT_COMPUTE_RATES: Dict[str, float] = {
    "LOADS": 0.30,
    "STORES": 0.12,
    "BRANCHES": 0.15,
    "BRANCH_MISSES": 0.002,
    "ARITH_MUL": 0.05,
    "FP_OPS": 0.10,
    "LLC_REFERENCES": 0.001,
    "LLC_MISSES": 0.0002,
}


class UniformComputeWorkload(Program):
    """A single homogeneous compute phase.

    Handy as a minimal, fully-predictable victim: every hardware event
    count is ``rate × instructions`` by construction.
    """

    def __init__(self, instructions: float,
                 rates: Optional[Dict[str, float]] = None,
                 cpi: float = 1.0, name: str = "uniform-compute",
                 chunk_instructions: float = 5e6) -> None:
        if instructions <= 0:
            raise WorkloadError("instruction count must be positive")
        self.name = name
        self.instructions = float(instructions)
        self.rates = dict(DEFAULT_COMPUTE_RATES if rates is None else rates)
        self.cpi = cpi
        self.chunk_instructions = chunk_instructions

    def blocks(self) -> Iterator[Block]:
        remaining = self.instructions
        while remaining > 0:
            take = min(remaining, self.chunk_instructions)
            yield RateBlock(instructions=take, rates=dict(self.rates),
                            cpi=self.cpi, label="compute")
            remaining -= take

    @property
    def metadata(self) -> Dict[str, float]:
        return {"instructions": self.instructions}


#: Memory-heavy phase profile: load/LLC rates well above the compute
#: profile, multiplies well below — the contrast the phase detector
#: (and the adaptive controller's signal tracker) keys on.
MEMORY_PHASE_RATES: Dict[str, float] = {
    "LOADS": 0.55,
    "STORES": 0.20,
    "BRANCHES": 0.08,
    "BRANCH_MISSES": 0.004,
    "ARITH_MUL": 0.005,
    "FP_OPS": 0.01,
    "LLC_REFERENCES": 0.02,
    "LLC_MISSES": 0.008,
}


class PhaseShiftWorkload(Program):
    """Alternating compute-heavy / memory-heavy phases.

    The canonical victim for phase-detection experiments: event rates
    switch abruptly at each phase boundary, so a monitor sampling fast
    enough sees clean steps while a slow one blurs or misses the short
    phases entirely (the paper's 100 µs-vs-10 ms argument, Fig. 4).

    ``phases`` is a list of ``(instructions, rates)`` pairs executed in
    order; :meth:`alternating` builds the standard compute/memory
    square wave.
    """

    def __init__(self, phases: Sequence[Tuple[float, Dict[str, float]]],
                 cpi: float = 1.0, name: str = "phase-shift",
                 chunk_instructions: float = 2e6) -> None:
        if not phases:
            raise WorkloadError("phase list must not be empty")
        for instructions, _ in phases:
            if instructions <= 0:
                raise WorkloadError("phase instruction counts must be positive")
        self.name = name
        self.phases: List[Tuple[float, Dict[str, float]]] = [
            (float(instructions), dict(rates)) for instructions, rates in phases
        ]
        self.cpi = cpi
        self.chunk_instructions = chunk_instructions

    @classmethod
    def alternating(cls, phase_instructions: Sequence[float],
                    cpi: float = 1.0,
                    name: str = "phase-shift") -> "PhaseShiftWorkload":
        """Square wave: even phases compute-heavy, odd phases memory-heavy."""
        phases = [
            (instructions,
             DEFAULT_COMPUTE_RATES if index % 2 == 0 else MEMORY_PHASE_RATES)
            for index, instructions in enumerate(phase_instructions)
        ]
        return cls(phases, cpi=cpi, name=name)

    def blocks(self) -> Iterator[Block]:
        for index, (instructions, rates) in enumerate(self.phases):
            remaining = instructions
            while remaining > 0:
                take = min(remaining, self.chunk_instructions)
                yield RateBlock(instructions=take, rates=dict(rates),
                                cpi=self.cpi, label=f"phase-{index}")
                remaining -= take

    @property
    def metadata(self) -> Dict[str, float]:
        return {
            "instructions": sum(
                instructions for instructions, _ in self.phases),
            "phases": float(len(self.phases)),
            "transitions": float(len(self.phases) - 1),
        }


class StridedMemoryWorkload(Program):
    """Sequential strided sweeps over a buffer, via the cache model.

    With ``buffer_bytes`` far above LLC capacity every sweep access
    misses (streaming); below L1 capacity everything hits after warmup.
    """

    def __init__(self, buffer_bytes: int, accesses: int, stride_bytes: int = 64,
                 instructions_per_access: float = 10.0,
                 name: str = "strided-memory",
                 address_base: int = 0) -> None:
        if buffer_bytes <= 0 or accesses <= 0 or stride_bytes <= 0:
            raise WorkloadError("buffer, accesses, and stride must be positive")
        self.name = name
        self.buffer_bytes = buffer_bytes
        self.accesses = accesses
        self.stride_bytes = stride_bytes
        self.instructions_per_access = instructions_per_access
        # Distinct processes occupy distinct physical pages; give
        # co-running workloads distinct bases so they never share lines.
        self.address_base = address_base

    def blocks(self) -> Iterator[Block]:
        ops = []
        address = 0
        for _ in range(self.accesses):
            ops.append(MemOp(self.address_base + address % self.buffer_bytes,
                             OpKind.LOAD))
            address += self.stride_bytes
        yield TraceBlock(ops=ops,
                         instructions_per_op=self.instructions_per_access,
                         label="sweep")


class PointerChaseWorkload(Program):
    """Random-order loads over a working set (a pointer chase).

    The classic latency-bound pattern: no spatial locality, hit rate
    governed purely by working-set size vs cache capacity.
    """

    def __init__(self, working_set_bytes: int, accesses: int, seed: int = 0,
                 instructions_per_access: float = 4.0,
                 name: str = "pointer-chase",
                 address_base: int = 0) -> None:
        if working_set_bytes <= 0 or accesses <= 0:
            raise WorkloadError("working set and accesses must be positive")
        self.name = name
        self.working_set_bytes = working_set_bytes
        self.accesses = accesses
        self.seed = seed
        self.instructions_per_access = instructions_per_access
        self.address_base = address_base

    def blocks(self) -> Iterator[Block]:
        rng = np.random.default_rng(self.seed)
        lines = max(1, self.working_set_bytes // 64)
        indices = rng.integers(0, lines, size=self.accesses)
        ops = [MemOp(self.address_base + int(index) * 64, OpKind.LOAD)
               for index in indices]
        yield TraceBlock(ops=ops,
                         instructions_per_op=self.instructions_per_access,
                         label="chase")
