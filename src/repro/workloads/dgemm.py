"""Intel MKL ``dgemm`` analogue (paper §V, Table III).

Same mathematical job as :class:`~repro.workloads.matmul.TripleLoopMatmul`
but through a vectorized, blocked BLAS routine: far fewer retired
instructions per FLOP (SIMD width) and a lower CPI (dense FMA pipes).
At the default n=1180 the model runs ≈92 ms on the i7-920 preset — the paper's
"less than 100 ms" — which is what makes fixed tool-startup costs
(PAPI's library initialization especially) balloon to 21.4 % overhead.
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.errors import WorkloadError
from repro.workloads.base import Block, Program, RateBlock

_FLOPS_PER_INSTRUCTION = 8.0   # packed double FMA + unrolling
_CPI = 0.6                     # superscalar FMA pipes keep CPI below 1
_CHUNK_INSTRUCTIONS = 5e6


class MklDgemm(Program):
    """Blocked, vectorized n×n matrix multiply."""

    def __init__(self, n: int = 1180) -> None:
        if n < 2:
            raise WorkloadError("matrix dimension must be at least 2")
        self.name = f"dgemm-n{n}"
        self.n = n
        self.total_flops = 2.0 * float(n) ** 3
        self.instructions = self.total_flops / _FLOPS_PER_INSTRUCTION

    @property
    def metadata(self) -> Dict[str, float]:
        return {
            "instructions": self.instructions,
            "total_flops": self.total_flops,
            "n": float(self.n),
            "cpi_hint": _CPI,
            # Intel MKL needs a modern glibc/kernel — the reason the
            # paper could not run it on LiMiT's patched 2.6.32 kernel
            # (Table III reports no LiMiT data).
            "min_kernel_major": 3.0,
        }

    def blocks(self) -> Iterator[Block]:
        # Per instruction: one packed load feeds roughly every other
        # FMA; blocking keeps operands in L1/L2 so LLC traffic is low.
        rates = {
            "LOADS": 0.45,
            "STORES": 0.12,
            "ARITH_MUL": 4.0,   # SIMD multiplies per retired instruction
            "FP_OPS": _FLOPS_PER_INSTRUCTION,
            "BRANCHES": 0.04,
            "BRANCH_MISSES": 0.0002,
            "LLC_REFERENCES": 0.0015,
            "LLC_MISSES": 0.0003,
        }
        remaining = self.instructions
        while remaining > 0:
            take = min(remaining, _CHUNK_INSTRUCTIONS)
            yield RateBlock(instructions=take, rates=dict(rates), cpi=_CPI,
                            label="dgemm")
            remaining -= take
