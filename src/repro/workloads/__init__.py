"""Synthetic workloads.

Each workload reproduces the *behaviourally relevant* structure of a
program the paper measured: instruction volume, event mix, phase
shape, and (for cache studies) the memory access pattern.  See
DESIGN.md §2 for the substitution rationale.
"""

from repro.workloads.base import (
    Block,
    RateBlock,
    TraceBlock,
    SyscallBlock,
    MemOp,
    OpKind,
    BlockCursor,
    Program,
    ListProgram,
    scale_rate_block,
)
from repro.workloads.linpack import LinpackWorkload
from repro.workloads.matmul import TripleLoopMatmul
from repro.workloads.dgemm import MklDgemm
from repro.workloads.meltdown import SecretPrinter, MeltdownAttack
from repro.workloads.docker_images import DOCKER_IMAGES, DockerImageProfile
from repro.workloads.docker import DockerEngine, DockerContainer
from repro.workloads.synthetic import (
    UniformComputeWorkload,
    StridedMemoryWorkload,
    PointerChaseWorkload,
)
from repro.workloads.corpus import (
    CORPUS_PROFILES,
    CorpusProfile,
    CorpusWorkload,
    corpus_programs,
)

__all__ = [
    "Block",
    "RateBlock",
    "TraceBlock",
    "SyscallBlock",
    "MemOp",
    "OpKind",
    "BlockCursor",
    "Program",
    "ListProgram",
    "scale_rate_block",
    "LinpackWorkload",
    "TripleLoopMatmul",
    "MklDgemm",
    "SecretPrinter",
    "MeltdownAttack",
    "DOCKER_IMAGES",
    "DockerImageProfile",
    "DockerEngine",
    "DockerContainer",
    "UniformComputeWorkload",
    "StridedMemoryWorkload",
    "PointerChaseWorkload",
    "CORPUS_PROFILES",
    "CorpusProfile",
    "CorpusWorkload",
    "corpus_programs",
]
