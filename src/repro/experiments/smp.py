"""SMP contention crosscheck — streamer vs. service on a shared LLC.

The paper's scheduling motivation (§II-C, §IV-B) is that co-located
workloads contend for the shared last-level cache and a high-frequency
monitor can see it happen.  This experiment pins that claim to the SMP
substrate: an LLC-resident *service* (pointer chase) is monitored by
one K-LEB instance while *streamer* aggressors on the remaining cores
sweep a buffer much larger than the LLC.

Crosschecked against single-core ground truth:

* the service's architectural counts (INST_RETIRED) are identical solo
  vs. contended — contention changes *time*, not the instruction
  stream;
* its LLC MPKI inflates under contention (the streamers evict its
  working set);
* per-socket uncore bandwidth rises with the streamers' DRAM traffic.

With ``migrate=True`` the service also wanders across cores under the
seeded migrate-on-quantum policy, and the per-core counter deltas in
the report metadata show the split — their sum still matches the
single-core totals (conservation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments import report as report_mod
from repro.experiments.parallel import map_trials
from repro.faults import FaultPlan
from repro.faults.inject import FaultInjector
from repro.hw.machine import MachineConfig
from repro.kernel.config import KernelConfig
from repro.kernel.smp import SmpCluster
from repro.sim.clock import ms, seconds, us
from repro.tools.base import ToolReport
from repro.tools.kleb.tool import KLebTool
from repro.workloads.base import Program
from repro.workloads.synthetic import (PointerChaseWorkload,
                                       StridedMemoryWorkload)

EVENTS = ("LLC_MISSES", "BRANCH_MISSES")

#: Quantum for SMP runs: short enough that the migrate-on-quantum
#: policy gets regular chances on sub-second victims.
SMP_QUANTUM_NS = ms(1)


def _smp_kernel_config(kernel_config: Optional[KernelConfig]
                       ) -> KernelConfig:
    if kernel_config is not None:
        return kernel_config
    return KernelConfig(noise_enabled=False, quantum_ns=SMP_QUANTUM_NS)


@dataclass
class SmpRunResult:
    """One monitored SMP run, reduced to plain (picklable) data."""

    report: ToolReport
    wall_ns: int
    migrations: int
    cores: int
    sockets: int
    uncore_bandwidth_bytes_per_sec: Tuple[float, ...]
    uncore_totals: Tuple[Dict[str, int], ...]

    def mpki(self, instructions_event: str = "INST_RETIRED",
             misses_event: str = "LLC_MISSES") -> float:
        instructions = self.report.totals.get(instructions_event, 0.0)
        if instructions <= 0:
            return 0.0
        return self.report.totals.get(misses_event, 0.0) / instructions * 1e3

    def per_core_mpki(self) -> Tuple[float, ...]:
        """Victim MPKI split by core (from the smp_cpu* metadata)."""
        values: List[float] = []
        for cpu in range(self.cores):
            instructions = self.report.metadata.get(
                f"smp_cpu{cpu}:INST_RETIRED", 0.0)
            misses = self.report.metadata.get(
                f"smp_cpu{cpu}:LLC_MISSES", 0.0)
            values.append(misses / instructions * 1e3
                          if instructions > 0 else 0.0)
        return tuple(values)


def run_monitored_smp(program: Program,
                      *,
                      events: Sequence[str] = EVENTS,
                      period_ns: int = us(100),
                      seed: int = 0,
                      cores: int = 2,
                      sockets: int = 1,
                      migrate: bool = False,
                      aggressors: Sequence[Program] = (),
                      machine_config: Optional[MachineConfig] = None,
                      kernel_config: Optional[KernelConfig] = None,
                      fault_plan: Optional[FaultPlan] = None,
                      trial: int = 0,
                      deadline_ns: int = seconds(30)) -> SmpRunResult:
    """Monitor ``program`` with one K-LEB instance on an SMP cluster.

    The victim spawns (stopped) on core 0 — the controller's home —
    and, with ``migrate``, wanders under the seeded policy while the
    per-CPU ring keeps the sample stream merged.  ``aggressors`` spawn
    round-robin on the remaining cores.  A ``fault_plan`` arms one
    injector shared by every core's kernel.
    """
    if len(aggressors) > max(0, cores - 1):
        raise ExperimentError(
            f"{len(aggressors)} aggressors need at least "
            f"{len(aggressors) + 1} cores, got {cores}")
    faults = (FaultInjector(fault_plan, trial)
              if fault_plan is not None and fault_plan.active else None)
    cluster = SmpCluster(
        cores=cores,
        machine_config=machine_config,
        kernel_config=_smp_kernel_config(kernel_config),
        seed=seed,
        sockets=sockets,
        migrate=migrate,
        faults=faults,
    )
    victim = cluster.spawn(0, program, start=False)
    for index, aggressor in enumerate(aggressors):
        task = cluster.spawn(1 + index % (cores - 1), aggressor)
        # Background load stays put (taskset semantics): migration —
        # and the migration accounting — is about the monitored victim.
        task.pinned = True
    session = KLebTool().attach_cluster(
        cluster, victim, list(events), period_ns)
    cluster.run_until_tasks_exit([victim], deadline_ns=deadline_ns)
    tool_report = session.finalize()
    return SmpRunResult(
        report=tool_report,
        wall_ns=victim.wall_time_ns or 0,
        migrations=cluster.migrations,
        cores=cores,
        sockets=sockets,
        uncore_bandwidth_bytes_per_sec=tuple(
            uncore.bandwidth_bytes_per_sec for uncore in cluster.uncores),
        uncore_totals=tuple(uncore.totals() for uncore in cluster.uncores),
    )


#: Service working set: far bigger than L2 (so its reuse lives in the
#: LLC) yet a small fraction of the LLC (so it is LLC-warm solo after
#: one cold traversal — the contrast contention destroys).
SERVICE_WORKING_SET_BYTES = 2 * 1024 * 1024
#: Streamer sweep buffer: 8x the LLC, no reuse — pure eviction
#: pressure plus DRAM bandwidth.
STREAMER_BUFFER_BYTES = 64 * 1024 * 1024


def _service(seed: int, accesses: int) -> Program:
    return PointerChaseWorkload(SERVICE_WORKING_SET_BYTES, accesses,
                                seed=seed, name="service")


def _streamer(index: int, accesses: int) -> Program:
    # Distinct GiB-aligned bases: the cache model is physically indexed
    # with no address-space tagging, so co-runners sharing base 0 would
    # alias (and effectively prefetch) each other's lines.
    return StridedMemoryWorkload(STREAMER_BUFFER_BYTES, accesses,
                                 name=f"streamer{index}",
                                 address_base=(index + 1) << 30)


def run_smp_trials(runs: int,
                   *,
                   jobs: Optional[int] = None,
                   base_seed: int = 0,
                   cores: int = 4,
                   migrate: bool = True,
                   service_accesses: int = 120_000,
                   streamer_accesses: int = 60_000,
                   period_ns: int = us(100),
                   fault_plan: Optional[FaultPlan] = None
                   ) -> List[SmpRunResult]:
    """A population of seeded SMP trials, fanned over ``jobs`` workers.

    Trial ``t`` gets seed ``base_seed + t`` and (under a fault plan)
    injector trial ``t`` — a pure function of the index, so any worker
    count returns a bit-identical list (the jobs=1 == jobs=4 pin).
    """

    def one(trial: int) -> SmpRunResult:
        program = _service(base_seed + trial, service_accesses)
        return run_monitored_smp(
            program,
            period_ns=period_ns,
            seed=base_seed + trial,
            cores=cores,
            migrate=migrate,
            aggressors=[_streamer(index, streamer_accesses)
                        for index in range(cores - 1)],
            fault_plan=fault_plan,
            trial=trial,
        )

    return map_trials(one, runs, jobs=jobs)


@dataclass
class SmpContentionResult:
    """Solo vs. contended crosscheck outcome."""

    cores: int
    migrate: bool
    solo: SmpRunResult
    contended: SmpRunResult

    @property
    def instruction_drift_percent(self) -> float:
        solo = self.solo.report.totals.get("INST_RETIRED", 0.0)
        contended = self.contended.report.totals.get("INST_RETIRED", 0.0)
        if solo <= 0:
            return 0.0
        return abs(contended - solo) / solo * 100.0

    @property
    def mpki_inflation(self) -> float:
        solo = self.solo.mpki()
        return self.contended.mpki() / solo if solo > 0 else 0.0

    @property
    def bandwidth_inflation(self) -> float:
        solo = self.solo.uncore_bandwidth_bytes_per_sec[0]
        contended = self.contended.uncore_bandwidth_bytes_per_sec[0]
        return contended / solo if solo > 0 else 0.0


def run(cores: int = 4, seed: int = 0, period_ns: int = us(100),
        migrate: bool = True,
        service_accesses: int = 300_000,
        streamer_accesses: int = 400_000) -> SmpContentionResult:
    """Contention crosscheck: the monitored service solo vs. co-located
    with LLC streamers, same seed and events."""
    if cores < 2:
        raise ExperimentError("the contention crosscheck needs >= 2 cores")
    solo = run_monitored_smp(
        _service(seed, service_accesses),
        period_ns=period_ns, seed=seed, cores=1, migrate=False,
    )
    contended = run_monitored_smp(
        _service(seed, service_accesses),
        period_ns=period_ns, seed=seed, cores=cores, migrate=migrate,
        aggressors=[_streamer(index, streamer_accesses)
                    for index in range(cores - 1)],
    )
    return SmpContentionResult(cores=cores, migrate=migrate,
                               solo=solo, contended=contended)


def render(result: SmpContentionResult) -> str:
    solo, contended = result.solo, result.contended
    rows = [
        ["LLC MPKI", f"{solo.mpki():.3f}", f"{contended.mpki():.3f}",
         f"{result.mpki_inflation:.2f}x"],
        ["INST_RETIRED",
         report_mod.format_count(solo.report.totals["INST_RETIRED"]),
         report_mod.format_count(contended.report.totals["INST_RETIRED"]),
         f"{result.instruction_drift_percent:.4f}% drift"],
        ["uncore bandwidth",
         f"{solo.uncore_bandwidth_bytes_per_sec[0] / 1e6:.1f} MB/s",
         f"{contended.uncore_bandwidth_bytes_per_sec[0] / 1e6:.1f} MB/s",
         f"{result.bandwidth_inflation:.2f}x"],
        ["service wall time", f"{solo.wall_ns / 1e6:.2f} ms",
         f"{contended.wall_ns / 1e6:.2f} ms",
         f"{contended.wall_ns / max(solo.wall_ns, 1):.2f}x"],
    ]
    table = report_mod.text_table(
        ["metric", "solo (1 core)",
         f"contended ({result.cores} cores)", "ratio"],
        rows,
        title=("SMP contention crosscheck "
               f"(service vs {result.cores - 1} streamer(s)"
               f"{', migrating' if result.migrate else ''})"),
    )
    per_core = ", ".join(
        f"cpu{cpu}={value:.3f}"
        for cpu, value in enumerate(contended.per_core_mpki()))
    return (
        f"{table}\n\n"
        f"service migrations: {contended.migrations}\n"
        f"per-core service MPKI: {per_core}\n"
        f"uncore totals (socket 0): {contended.uncore_totals[0]}"
    )
