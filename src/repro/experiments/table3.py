"""Table III — overhead on Intel MKL dgemm (<100 ms).

Paper values (100 runs, 10 ms sample rate):

===========  =========
tool         overhead
===========  =========
K-LEB        1.13 %
perf stat    7.64 %
perf record  2.00 %
PAPI         21.40 %  (library-init fixed cost dominates)
LiMiT        n/a      (unsupported OS / kernel for Intel MKL)
===========  =========
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.overhead import OverheadStats, summarize_overhead
from repro.experiments.overhead_common import OVERHEAD_EVENTS, collect_tool_runs
from repro.experiments.table2 import OverheadTableResult, render as _render
from repro.faults import FaultPlan, RunLedger
from repro.hw.machine import MachineConfig
from repro.sim.clock import ms
from repro.workloads.dgemm import MklDgemm

TOOLS = ("none", "k-leb", "perf-stat", "perf-record", "papi", "limit")


def run(runs: int = 30, n: int = 1180, period_ns: int = ms(10),
        seed: int = 0,
        machine_config: Optional[MachineConfig] = None,
        jobs: Optional[int] = 1,
        faults: Optional[FaultPlan] = None,
        fault_ledger: Optional[RunLedger] = None) -> OverheadTableResult:
    """Reproduce Table III.  LiMiT must come back unsupported — Intel
    MKL cannot run on the patched 2.6.32 kernel."""
    program = MklDgemm(n)
    runs_data = collect_tool_runs(
        program, TOOLS, runs=runs, period_ns=period_ns,
        events=OVERHEAD_EVENTS, base_seed=seed,
        machine_config=machine_config, jobs=jobs,
        faults=faults, fault_ledger=fault_ledger,
    )
    baseline = runs_data["none"].wall_ns
    stats = {}
    for name, record in runs_data.items():
        if record.supported and name != "none":
            stats[name] = summarize_overhead(name, record.wall_ns, baseline)
    return OverheadTableResult(
        title=f"Table III — MKL dgemm n={n}",
        stats=stats,
        runs_data=runs_data,
        runs=runs,
        period_ns=period_ns,
    )


def render(result: OverheadTableResult) -> str:
    return _render(result)
