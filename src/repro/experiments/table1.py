"""Table I — LINPACK GFLOPS across profiling tools.

Paper values (10 trials, problem size 5000, 10 ms sample rate):

=============  ============  ======  =========  ===========
tool           No profiling  K-LEB   perf stat  perf record
=============  ============  ======  =========  ===========
GFLOPS         37.24         37.00   34.78      36.89
loss (%)       0             0.64    7.08       0.96
=============  ============  ======  =========  ===========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.experiments import report
from repro.experiments.runner import run_trials
from repro.faults import FaultPlan, RunLedger
from repro.hw.machine import MachineConfig
from repro.sim.clock import ms
from repro.tools.registry import create_tool
from repro.workloads.linpack import LinpackWorkload, measured_gflops

TOOLS = ("none", "k-leb", "perf-stat", "perf-record")
EVENTS = ("ARITH_MUL", "LOADS", "STORES")


@dataclass
class Table1Result:
    """GFLOPS and performance loss per tool."""

    gflops: Dict[str, float]
    loss_percent: Dict[str, float]
    trials: int
    problem_size: int
    period_ns: int


def run(trials: int = 10, problem_size: int = 5000,
        period_ns: int = ms(10), seed: int = 0,
        machine_config: Optional[MachineConfig] = None,
        jobs: Optional[int] = 1,
        faults: Optional[FaultPlan] = None,
        fault_ledger: Optional[RunLedger] = None) -> Table1Result:
    """Reproduce Table I."""
    program = LinpackWorkload(problem_size)
    gflops: Dict[str, float] = {}
    for name in TOOLS:
        results = run_trials(
            program, create_tool(name), runs=trials, events=EVENTS,
            period_ns=period_ns, base_seed=seed,
            machine_config=machine_config, jobs=jobs,
            faults=faults, fault_ledger=fault_ledger,
        )
        gflops[name] = float(np.mean([
            measured_gflops(result) for result in results
        ]))
    baseline = gflops["none"]
    loss = {
        name: 100.0 * (baseline - value) / baseline
        for name, value in gflops.items()
    }
    return Table1Result(
        gflops=gflops,
        loss_percent=loss,
        trials=trials,
        problem_size=problem_size,
        period_ns=period_ns,
    )


def render(result: Table1Result) -> str:
    """Paper-style rows: GFLOPS and performance loss per tool."""
    headers = ["Profiling Tools"] + [_label(name) for name in TOOLS]
    rows: List[List[str]] = [
        ["GFlops"] + [f"{result.gflops[name]:.2f}" for name in TOOLS],
        ["Performance Loss (%)"] + [
            f"{result.loss_percent[name]:.2f}" for name in TOOLS
        ],
    ]
    return report.text_table(
        headers, rows,
        title=(f"Table I — LINPACK (n={result.problem_size}, "
               f"{result.trials} trials, {result.period_ns // 1_000_000} ms rate)"),
    )


def _label(name: str) -> str:
    return {
        "none": "No profiling",
        "k-leb": "K-LEB",
        "perf-stat": "Perf stat",
        "perf-record": "Perf record",
    }.get(name, name)
