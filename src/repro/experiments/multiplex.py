"""Multiplexing accuracy crosscheck — scaled estimates vs ground truth.

Eight matmul-generated events (two rotation groups of four) are
monitored by a multiplexed K-LEB run and compared against ground-truth
full-count runs in which each group owns the counters for the whole
execution.  Sweeping the rotation period turns the cost of
time-multiplexing into a measured curve: the faster the rotation, the
more windows each group samples and the closer the
``count × time_enabled / time_running`` extrapolation lands — the
dominant error source in perf-based measurement that the paper's
K-LEB design avoids by fitting its events into the counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments import report
from repro.experiments.runner import run_monitored
from repro.sim.clock import ms, us
from repro.tools.kleb.tool import KLebTool
from repro.workloads.matmul import TripleLoopMatmul

# Every event the matmul workload generates: two groups of four.
EVENTS = ("LOADS", "STORES", "ARITH_MUL", "FP_OPS",
          "BRANCHES", "BRANCH_MISSES", "LLC_REFERENCES", "LLC_MISSES")
DEFAULT_ROTATION_PERIODS_NS = (ms(2), ms(1), us(500), us(200))


@dataclass
class MultiplexResult:
    """Scaled-estimate error per rotation period."""

    n: int
    period_ns: int
    rotation_periods_ns: Tuple[int, ...]
    truth: Dict[str, float]
    # rotation period -> event -> scaled estimate.
    estimates: Dict[int, Dict[str, float]]
    # rotation period -> event -> |estimate - truth| / truth (percent).
    errors_percent: Dict[int, Dict[str, float]]
    # rotation period -> rotations performed.
    rotations: Dict[int, int]

    def mean_error_percent(self, rotation_ns: int) -> float:
        errors = self.errors_percent[rotation_ns]
        return sum(errors.values()) / len(errors)

    def worst_error_percent(self, rotation_ns: int) -> float:
        return max(self.errors_percent[rotation_ns].values())


def _ground_truth(n: int, period_ns: int, seed: int,
                  events: Sequence[str]) -> Dict[str, float]:
    """Full-count totals: each four-event group gets a dedicated run."""
    truth: Dict[str, float] = {}
    for start in range(0, len(events), 4):
        chunk = tuple(events[start:start + 4])
        result = run_monitored(
            TripleLoopMatmul(n), KLebTool(), events=chunk,
            period_ns=period_ns, seed=seed,
        )
        for name in chunk:
            truth[name] = result.report.totals[name]
    return truth


def run(n: int = 256, period_ns: int = us(100), seed: int = 0,
        rotation_periods_ns: Sequence[int] = DEFAULT_ROTATION_PERIODS_NS,
        ) -> MultiplexResult:
    """Compare multiplexed estimates against full counts per rotation."""
    truth = _ground_truth(n, period_ns, seed, EVENTS)
    estimates: Dict[int, Dict[str, float]] = {}
    errors: Dict[int, Dict[str, float]] = {}
    rotations: Dict[int, int] = {}
    for rotation_ns in rotation_periods_ns:
        result = run_monitored(
            TripleLoopMatmul(n),
            KLebTool(multiplex_period_ns=rotation_ns),
            events=EVENTS, period_ns=period_ns, seed=seed,
        )
        totals = result.report.totals
        estimates[rotation_ns] = {name: totals[name] for name in EVENTS}
        errors[rotation_ns] = {
            name: (abs(totals[name] - truth[name]) / truth[name] * 100.0
                   if truth[name] else 0.0)
            for name in EVENTS
        }
        rotations[rotation_ns] = int(
            result.report.metadata.get("multiplex_rotations", 0))
    return MultiplexResult(
        n=n,
        period_ns=period_ns,
        rotation_periods_ns=tuple(rotation_periods_ns),
        truth=truth,
        estimates=estimates,
        errors_percent=errors,
        rotations=rotations,
    )


def render(result: MultiplexResult) -> str:
    headers = ["event", "full count"] + [
        f"@{rotation_ns / 1e6:g}ms"
        for rotation_ns in result.rotation_periods_ns
    ]
    rows: List[List[str]] = []
    for name in EVENTS:
        rows.append(
            [name, report.format_count(result.truth[name])]
            + [f"{result.errors_percent[rotation_ns][name]:.3f}%"
               for rotation_ns in result.rotation_periods_ns]
        )
    rows.append(
        ["mean error", ""]
        + [f"{result.mean_error_percent(rotation_ns):.3f}%"
           for rotation_ns in result.rotation_periods_ns]
    )
    rows.append(
        ["rotations", ""]
        + [str(result.rotations[rotation_ns])
           for rotation_ns in result.rotation_periods_ns]
    )
    table = report.text_table(
        headers, rows,
        title=(f"Multiplexed scaled-estimate error vs rotation period "
               f"(matmul n={result.n}, {len(EVENTS)} events, "
               f"{result.period_ns / 1e3:g} us sampling)"),
    )
    best = min(result.rotation_periods_ns, key=result.mean_error_percent)
    worst = max(result.rotation_periods_ns, key=result.mean_error_percent)
    return (
        f"{table}\n\n"
        f"estimates scale raw counts by time_enabled/time_running "
        f"(perf semantics); fixed-counter events are exact by design.\n"
        f"mean error spans {result.mean_error_percent(worst):.3f}% at "
        f"{worst / 1e6:g} ms rotation down to "
        f"{result.mean_error_percent(best):.3f}% at {best / 1e6:g} ms."
    )
