"""Fig. 4 — LINPACK phase behaviour in K-LEB samples.

The paper plots ARITH MUL / LOAD / STORE per 10 ms sample, averaged
over 10 trials, and reads off: a quiet kernel-level init, a LOAD/STORE
surge during setup, then repeating load -> compute -> store cycles.
This experiment reproduces the series and verifies the phase structure
with the detector in :mod:`repro.analysis.phases`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.phases import PhaseSegment, detect_phases, merge_short_segments
from repro.analysis.timeseries import (
    EventSeries,
    average_series,
    deltas,
    samples_to_series,
)
from repro.experiments import report
from repro.experiments.runner import run_trials
from repro.faults import FaultPlan, RunLedger
from repro.hw.machine import MachineConfig
from repro.sim.clock import ms
from repro.tools.registry import create_tool
from repro.workloads.linpack import LinpackWorkload

EVENTS = ("ARITH_MUL", "LOADS", "STORES")


@dataclass
class Fig4Result:
    """Averaged K-LEB series over the LINPACK run, plus detected phases."""

    series: EventSeries          # per-interval deltas, trial-averaged
    segments: List[PhaseSegment]
    trials: int
    period_ns: int

    @property
    def phase_labels(self) -> List[str]:
        return [segment.label for segment in self.segments]


def run(trials: int = 10, problem_size: int = 5000,
        period_ns: int = ms(10), seed: int = 0,
        machine_config: Optional[MachineConfig] = None,
        jobs: Optional[int] = 1,
        faults: Optional[FaultPlan] = None,
        fault_ledger: Optional[RunLedger] = None) -> Fig4Result:
    """Reproduce Fig. 4."""
    program = LinpackWorkload(problem_size)
    results = run_trials(
        program, create_tool("k-leb"), runs=trials, events=EVENTS,
        period_ns=period_ns, base_seed=seed, machine_config=machine_config,
        jobs=jobs, faults=faults, fault_ledger=fault_ledger,
    )
    per_trial = [
        deltas(samples_to_series(result.report.samples))
        for result in results
    ]
    averaged = average_series(per_trial, bucket_ns=period_ns)
    segments = merge_short_segments(
        detect_phases(averaged, EVENTS, smooth_window=5), min_length=3
    )
    return Fig4Result(
        series=averaged,
        segments=segments,
        trials=trials,
        period_ns=period_ns,
    )


def render(result: Fig4Result) -> str:
    lines = [
        f"Fig. 4 — LINPACK hardware-counter series "
        f"({result.trials}-trial average, "
        f"{result.period_ns // 1_000_000} ms samples, "
        f"{len(result.series)} samples)",
        "",
    ]
    for name in EVENTS:
        lines.append(f"{name:10s} {report.sparkline(result.series.event(name))}")
    lines.append("")
    rows = [
        [segment.label, str(segment.start_index), str(segment.end_index),
         f"{(segment.end_ns - segment.start_ns) / 1e6:.0f} ms"]
        for segment in result.segments
    ]
    lines.append(report.text_table(
        ["phase (dominant event)", "start", "end", "duration"], rows
    ))
    return "\n".join(lines)
