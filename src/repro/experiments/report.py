"""Plain-text rendering helpers for experiment results.

Every experiment ships a ``render()`` that prints the same rows/series
the paper's table or figure reports, as terminal-friendly text: aligned
tables and unicode sparklines for time series.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def text_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
               title: Optional[str] = None) -> str:
    """Render an aligned monospace table."""
    columns = len(headers)
    widths = [len(header) for header in headers]
    for row in rows:
        for index in range(columns):
            cell = str(row[index]) if index < len(row) else ""
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        padded = [
            str(cells[index] if index < len(cells) else "").ljust(widths[index])
            for index in range(columns)
        ]
        return "  ".join(padded).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(headers))
    lines.append(format_row(["-" * width for width in widths]))
    for row in rows:
        lines.append(format_row([str(cell) for cell in row]))
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """Render a series as a unicode sparkline, downsampled to ``width``."""
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        return "(empty series)"
    if data.size > width:
        # Average into `width` buckets.
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array([
            data[edges[i]:edges[i + 1]].mean() if edges[i + 1] > edges[i] else 0.0
            for i in range(width)
        ])
    peak = data.max()
    if peak <= 0:
        return _SPARK_LEVELS[0] * len(data)
    indices = np.minimum(
        (data / peak * (len(_SPARK_LEVELS) - 1)).round().astype(int),
        len(_SPARK_LEVELS) - 1,
    )
    return "".join(_SPARK_LEVELS[index] for index in indices)


def format_count(value: float) -> str:
    """Human-readable count with thousands separators."""
    return f"{value:,.0f}"


def format_percent(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}%"
