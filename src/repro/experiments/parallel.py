"""Parallel trial execution: fan independent trials over a worker pool.

Every paper artifact (Tables I–III, Figs 4–9, the ablations) is a
population of **independent, seeded** trials of
:func:`repro.experiments.runner.run_monitored` — there is no shared
state between trials, so they parallelize perfectly.  This module fans
them out over a ``multiprocessing`` pool while preserving bit-for-bit
determinism with the serial path:

* trial ``t`` always gets seed ``base_seed + t``, exactly as the serial
  loop assigns it;
* summaries come back in trial order regardless of completion order;
* ``jobs=1`` (and any environment without ``fork``) falls back to the
  in-process loop, so seed tests stay byte-identical.

The pool uses the ``fork`` start method: workers inherit the trial
context (program, tool, configs) by copy-on-write instead of pickling
it, so any program/tool combination the serial path accepts — including
ones holding closures — works unchanged.  Only the returned
:class:`~repro.experiments.runner.TrialSummary` objects cross the
process boundary, and they are plain data by construction.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ExperimentError
from repro.faults import FaultPlan, RunLedger
from repro.hw.machine import MachineConfig
from repro.kernel.config import KernelConfig
from repro.obs import hooks as obs_hooks
from repro.tools.base import MonitoringTool
from repro.workloads.base import Program

logger = logging.getLogger(__name__)


def default_jobs() -> int:
    """Worker count used for ``jobs=None``: one per available core."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int], runs: int) -> int:
    """Effective worker count: ``None`` means every core; clamp to runs.

    Raises :class:`ExperimentError` for a non-positive explicit count.
    Pool workers are daemonic and cannot fork grandchildren, so a call
    from inside a worker resolves to 1 (nested populations run inline).
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1 (or None for all cores), got {jobs}")
    if multiprocessing.current_process().daemon:
        return 1
    if "fork" not in multiprocessing.get_all_start_methods():
        return 1
    return min(jobs, max(runs, 1))


@dataclass
class _TrialContext:
    """Everything a worker needs; inherited via fork, never pickled."""

    program: Program
    tool: MonitoringTool
    runs: int
    events: Sequence[str]
    period_ns: int
    base_seed: int
    machine_config: Optional[MachineConfig]
    kernel_config: Optional[KernelConfig]
    fault_plan: Optional[FaultPlan] = None


# Set in the parent immediately before the pool forks; workers read it.
_context: Optional[_TrialContext] = None


def _run_one(trial: int):
    """Worker body: one seeded trial, summarized for the trip home.

    Under an active fault plan the whole retry/quarantine loop runs
    inside the worker — every retry decision is a pure function of
    ``(plan.seed, trial)``, so the returned
    :class:`~repro.experiments.runner.TrialOutcome` is identical to
    what the serial path computes.
    """
    from repro.experiments.runner import (
        run_monitored,
        run_trial_faulted,
        summarize_trial,
    )

    ctx = _context
    assert ctx is not None, "worker forked without a trial context"
    if ctx.fault_plan is not None:
        return run_trial_faulted(
            ctx.program, ctx.tool, trial, plan=ctx.fault_plan,
            events=ctx.events, period_ns=ctx.period_ns,
            base_seed=ctx.base_seed, machine_config=ctx.machine_config,
            kernel_config=ctx.kernel_config,
        )
    started = time.perf_counter()
    # Workers inherit the parent's recorder via fork; each trial runs
    # under a fresh child recorder whose chunk rides home on the
    # summary for the parent's trial-ordered merge.
    with obs_hooks.trial_capture(trial) as obs_child:
        if obs_child is not None:
            obs_child.trial_started(trial)
        result = run_monitored(
            ctx.program, ctx.tool, events=ctx.events,
            period_ns=ctx.period_ns, seed=ctx.base_seed + trial,
            machine_config=ctx.machine_config,
            kernel_config=ctx.kernel_config,
        )
        summary = summarize_trial(
            result, trial=trial, seed=ctx.base_seed + trial,
            host_seconds=time.perf_counter() - started,
        )
        if obs_child is not None:
            obs_child.trial_span(
                trial, summary.seed, summary.program_name,
                result.report.tool, summary.wall_ns, summary.sample_count,
            )
            summary.obs = obs_child.chunk()
    return summary


def run_trials_parallel(program: Program, tool: MonitoringTool, runs: int,
                        *, jobs: Optional[int],
                        events: Sequence[str], period_ns: int,
                        base_seed: int = 0,
                        machine_config: Optional[MachineConfig] = None,
                        kernel_config: Optional[KernelConfig] = None,
                        faults: Optional[FaultPlan] = None,
                        fault_ledger: Optional[RunLedger] = None
                        ) -> List["TrialSummary"]:
    """Run ``runs`` seeded trials across ``jobs`` worker processes.

    Exceptions raised by a trial (e.g. ``ToolUnsupportedError``)
    propagate to the caller exactly as in the serial path.  An active
    ``faults`` plan makes workers return
    :class:`~repro.experiments.runner.TrialOutcome` objects, folded
    into ``fault_ledger`` in trial order on the way out.
    """
    from repro.experiments.runner import (
        TrialSummary,
        collect_outcomes,
        run_trials,
    )

    faulted = faults is not None and faults.active
    effective = resolve_jobs(jobs, runs)
    if effective <= 1 or runs <= 1:
        return run_trials(
            program, tool, runs, events=events, period_ns=period_ns,
            base_seed=base_seed, machine_config=machine_config,
            kernel_config=kernel_config, jobs=1,
            faults=faults if faulted else None, fault_ledger=fault_ledger,
        )

    global _context
    context = multiprocessing.get_context("fork")
    _context = _TrialContext(
        program=program, tool=tool, runs=runs, events=events,
        period_ns=period_ns, base_seed=base_seed,
        machine_config=machine_config, kernel_config=kernel_config,
        fault_plan=faults if faulted else None,
    )
    results: List[Optional[object]] = [None] * runs
    started = time.perf_counter()
    done = 0
    try:
        with context.Pool(processes=effective) as pool:
            # chunksize=1 for load balance; order is restored by index.
            for result in pool.imap_unordered(_run_one, range(runs),
                                              chunksize=1):
                results[result.trial] = result
                done += 1
                if faulted:
                    logger.info("trial %d/%d (#%d) done: %s", done, runs,
                                result.trial,
                                "quarantined" if result.quarantined
                                else f"{result.attempts} attempt(s)")
                    continue
                logger.info(
                    "trial %d/%d (#%d, %s under %s) done in %.2fs: "
                    "sim wall %.4fs, %d samples", done, runs, result.trial,
                    result.program_name, result.report.tool,
                    result.host_seconds, result.wall_ns / 1e9,
                    result.sample_count,
                )
    finally:
        _context = None
    logger.info("%d trials over %d workers in %.2fs", runs, effective,
                time.perf_counter() - started)
    if faulted:
        return collect_outcomes(
            [outcome for outcome in results if outcome is not None],
            fault_ledger,
        )
    for summary in results:
        if summary is not None:
            obs_hooks.merge_chunk(summary.obs)
            summary.obs = None
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Generic seeded fan-out (SMP populations and other custom trial bodies)
# ----------------------------------------------------------------------

# Set in the parent immediately before the pool forks; workers read it.
_map_fn = None


def _map_one(index: int):
    fn = _map_fn
    assert fn is not None, "worker forked without a map context"
    return (index, fn(index))


def map_trials(fn, runs: int, *, jobs: Optional[int] = None) -> List[object]:
    """Order-preserving fork-pool map of ``fn`` over ``range(runs)``.

    The same determinism contract as :func:`run_trials_parallel`, for
    trial bodies that don't fit the ``run_monitored`` shape (e.g. whole
    SMP cluster runs): as long as ``fn(i)`` is a pure function of ``i``
    — which every seeded trial already is — any worker count yields a
    bit-identical, index-ordered result list.  ``fn`` is inherited via
    fork (never pickled); returned values must be picklable.
    """
    effective = resolve_jobs(jobs, runs)
    if effective <= 1 or runs <= 1:
        return [fn(index) for index in range(runs)]
    global _map_fn
    context = multiprocessing.get_context("fork")
    _map_fn = fn
    results: List[object] = [None] * runs
    try:
        with context.Pool(processes=effective) as pool:
            # chunksize=1 for load balance; order is restored by index.
            for index, value in pool.imap_unordered(_map_one, range(runs),
                                                    chunksize=1):
                results[index] = value
    finally:
        _map_fn = None
    return results
