"""Fig. 6 — Meltdown vs clean program: mean LLC references/misses.

The paper averages hardware counts over 100 rounds of each program:
the attacked run shows dramatically higher LLC references and misses
(Flush+Reload traffic) and longer execution (more samples).  MPKI
jumps from 7.52 to 27.53 on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.metrics import report_mpki
from repro.experiments import report
from repro.experiments.runner import run_trials
from repro.faults import FaultPlan, RunLedger
from repro.hw.machine import MachineConfig
from repro.sim.clock import us
from repro.tools.registry import create_tool
from repro.workloads.meltdown import MeltdownAttack, SecretPrinter

EVENTS = ("LLC_REFERENCES", "LLC_MISSES", "LOADS", "STORES")


@dataclass
class Fig6Result:
    """Round-averaged counts for the clean and attacked programs."""

    clean_means: Dict[str, float]
    attack_means: Dict[str, float]
    clean_mpki: float
    attack_mpki: float
    clean_samples_mean: float
    attack_samples_mean: float
    rounds: int
    period_ns: int


def run(rounds: int = 20, period_ns: int = us(100), seed: int = 0,
        machine_config: Optional[MachineConfig] = None,
        jobs: Optional[int] = 1,
        faults: Optional[FaultPlan] = None,
        fault_ledger: Optional[RunLedger] = None) -> Fig6Result:
    """Reproduce Fig. 6.  The paper used 100 rounds; default is 20 for
    turnaround — pass ``rounds=100`` for the full population."""
    populations = {}
    for key, program in (("clean", SecretPrinter()),
                         ("attack", MeltdownAttack())):
        results = run_trials(
            program, create_tool("k-leb"), runs=rounds, events=EVENTS,
            period_ns=period_ns, base_seed=seed,
            machine_config=machine_config, jobs=jobs,
            faults=faults, fault_ledger=fault_ledger,
        )
        totals = [result.report.totals for result in results]
        means = {
            event: float(np.mean([t[event] for t in totals]))
            for event in list(EVENTS) + ["INST_RETIRED"]
        }
        populations[key] = {
            "means": means,
            "mpki": float(np.mean([report_mpki(t) for t in totals])),
            "samples": float(np.mean([
                result.report.sample_count for result in results
            ])),
        }
    return Fig6Result(
        clean_means=populations["clean"]["means"],
        attack_means=populations["attack"]["means"],
        clean_mpki=populations["clean"]["mpki"],
        attack_mpki=populations["attack"]["mpki"],
        clean_samples_mean=populations["clean"]["samples"],
        attack_samples_mean=populations["attack"]["samples"],
        rounds=rounds,
        period_ns=period_ns,
    )


def render(result: Fig6Result) -> str:
    rows = []
    for event in ("LLC_REFERENCES", "LLC_MISSES", "LOADS", "STORES"):
        clean = result.clean_means[event]
        attack = result.attack_means[event]
        factor = attack / clean if clean else float("inf")
        rows.append([
            event,
            report.format_count(clean),
            report.format_count(attack),
            f"{factor:.1f}x",
        ])
    rows.append([
        "MPKI", f"{result.clean_mpki:.2f}", f"{result.attack_mpki:.2f}",
        f"{result.attack_mpki / result.clean_mpki:.1f}x",
    ])
    rows.append([
        "samples @100us",
        f"{result.clean_samples_mean:.0f}",
        f"{result.attack_samples_mean:.0f}",
        "-",
    ])
    table = report.text_table(
        ["metric", "no Meltdown", "with Meltdown", "ratio"], rows,
        title=f"Fig. 6 — Meltdown comparison ({result.rounds} rounds)",
    )
    return (f"{table}\n\npaper: MPKI 7.52 -> 27.53; "
            "LLC references/misses significantly higher under attack")
