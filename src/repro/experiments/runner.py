"""Single-trial runner: one machine, one kernel, one victim, one tool.

Every experiment in the paper reduces to repetitions of this recipe:

1. boot a fresh machine/kernel (seeded — trials are reproducible);
2. let the tool rewrite the victim program if it needs source access;
3. spawn the victim **stopped**, attach the tool, let the tool release
   it (perf's enable-on-exec, K-LEB's start ioctl);
4. run until the victim exits; finalize the session (drain buffers).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.hw.machine import Machine, MachineConfig
from repro.hw.presets import i7_920
from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import Task
from repro.sim.clock import seconds
from repro.sim.rng import RngStreams
from repro.tools.base import MonitoringTool, ToolReport
from repro.workloads.base import Program

DEFAULT_EVENTS = ("LOADS", "STORES", "BRANCHES", "LLC_MISSES")


@dataclass
class RunResult:
    """Outcome of one monitored trial."""

    report: ToolReport
    victim: Task
    kernel: Kernel

    @property
    def wall_ns(self) -> int:
        """Victim wall-clock runtime (the overhead metric)."""
        return self.victim.wall_time_ns or 0

    @property
    def cpu_ns(self) -> int:
        return self.victim.cpu_time_ns


def run_monitored(program: Program, tool: MonitoringTool,
                  events: Sequence[str] = DEFAULT_EVENTS,
                  period_ns: int = 10_000_000,
                  seed: int = 0,
                  machine_config: Optional[MachineConfig] = None,
                  kernel_config: Optional[KernelConfig] = None,
                  deadline_s: float = 300.0) -> RunResult:
    """Run ``program`` under ``tool`` on a fresh system; see module doc."""
    machine = Machine(machine_config or i7_920())
    config = kernel_config or KernelConfig()
    if tool.kernel_version is not None:
        config = replace(config, kernel_version=tool.kernel_version)
    kernel = Kernel(
        machine,
        config=config,
        rng=RngStreams(seed),
        patches=list(tool.required_patches),
    )
    tool.check_compatible(kernel, program)
    prepared = tool.prepare_program(program, events, period_ns)
    victim = kernel.spawn(prepared, start=False)
    session = tool.attach(kernel, victim, events, period_ns)
    kernel.run_until_exit(victim, deadline=seconds(deadline_s))
    report = session.finalize()
    return RunResult(report=report, victim=victim, kernel=kernel)


def run_trials(program: Program, tool: MonitoringTool,
               runs: int,
               events: Sequence[str] = DEFAULT_EVENTS,
               period_ns: int = 10_000_000,
               base_seed: int = 0,
               machine_config: Optional[MachineConfig] = None,
               kernel_config: Optional[KernelConfig] = None) -> List[RunResult]:
    """Repeat :func:`run_monitored` with per-trial seeds."""
    return [
        run_monitored(
            program, tool, events=events, period_ns=period_ns,
            seed=base_seed + trial, machine_config=machine_config,
            kernel_config=kernel_config,
        )
        for trial in range(runs)
    ]
