"""Single-trial runner: one machine, one kernel, one victim, one tool.

Every experiment in the paper reduces to repetitions of this recipe:

1. boot a fresh machine/kernel (seeded — trials are reproducible);
2. let the tool rewrite the victim program if it needs source access;
3. spawn the victim **stopped**, attach the tool, let the tool release
   it (perf's enable-on-exec, K-LEB's start ioctl);
4. run until the victim exits; finalize the session (drain buffers).

:func:`run_monitored` returns a :class:`RunResult` holding the live
``Kernel``/``Task`` for white-box inspection.  :func:`run_trials`
returns plain-data :class:`TrialSummary` objects instead — picklable,
so independent trials can fan out over a worker pool (see
:mod:`repro.experiments.parallel`) and experiments never reach back
into a kernel that may have run in another process.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.errors import KernelError
from repro.hw.machine import Machine, MachineConfig
from repro.hw.presets import i7_920
from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import Task
from repro.sim.clock import seconds
from repro.sim.rng import RngStreams
from repro.tools.base import MonitoringTool, ToolReport
from repro.workloads.base import Program

DEFAULT_EVENTS = ("LOADS", "STORES", "BRANCHES", "LLC_MISSES")

logger = logging.getLogger(__name__)

# Scratch values carried into a TrialSummary: plain data only, so the
# summary stays picklable (tools may stash live objects in scratch).
_PICKLABLE_SCRATCH = (bool, int, float, str, bytes)


@dataclass
class RunResult:
    """Outcome of one monitored trial (live objects, in-process only)."""

    report: ToolReport
    victim: Task
    kernel: Kernel

    @property
    def wall_ns(self) -> int:
        """Victim wall-clock runtime (the overhead metric).

        Raises :class:`KernelError` if the victim never exited — a
        silent 0 here would contribute a zero to overhead means.
        """
        wall = self.victim.wall_time_ns
        if wall is None:
            raise KernelError(
                f"victim pid {self.victim.pid} ({self.victim.name!r}) "
                "has not exited; wall time is undefined"
            )
        return wall

    @property
    def cpu_ns(self) -> int:
        return self.victim.cpu_time_ns


@dataclass
class TrialSummary:
    """Plain-data outcome of one trial — everything experiments consume.

    Unlike :class:`RunResult` this carries no live ``Kernel``/``Task``,
    so it can cross a process boundary and be compared for bit-for-bit
    equality between the serial and parallel paths (``host_seconds``,
    which measures the host not the simulation, is excluded from
    comparisons).
    """

    trial: int
    seed: int
    wall_ns: int
    cpu_ns: int
    report: ToolReport
    program_name: str
    program_metadata: Dict[str, float] = field(default_factory=dict)
    scratch: Dict[str, object] = field(default_factory=dict)
    host_seconds: float = field(default=0.0, compare=False)

    @property
    def sample_count(self) -> int:
        return self.report.sample_count

    @property
    def samples_dropped(self) -> float:
        """Buffer drops reported by the tool (0 for tools without one)."""
        return self.report.metadata.get("samples_dropped", 0.0)


def summarize_trial(result: RunResult, *, trial: int = 0, seed: int = 0,
                    host_seconds: float = 0.0) -> TrialSummary:
    """Extract the picklable summary of a finished :class:`RunResult`."""
    victim = result.victim
    scratch = {
        key: value for key, value in victim.scratch.items()
        if isinstance(value, _PICKLABLE_SCRATCH)
    }
    return TrialSummary(
        trial=trial,
        seed=seed,
        wall_ns=result.wall_ns,
        cpu_ns=result.cpu_ns,
        report=result.report,
        program_name=victim.program.name,
        program_metadata=dict(victim.program.metadata),
        scratch=scratch,
        host_seconds=host_seconds,
    )


def run_monitored(program: Program, tool: MonitoringTool,
                  events: Sequence[str] = DEFAULT_EVENTS,
                  period_ns: int = 10_000_000,
                  seed: int = 0,
                  machine_config: Optional[MachineConfig] = None,
                  kernel_config: Optional[KernelConfig] = None,
                  deadline_s: float = 300.0) -> RunResult:
    """Run ``program`` under ``tool`` on a fresh system; see module doc."""
    machine = Machine(machine_config or i7_920())
    config = kernel_config or KernelConfig()
    if tool.kernel_version is not None:
        config = replace(config, kernel_version=tool.kernel_version)
    kernel = Kernel(
        machine,
        config=config,
        rng=RngStreams(seed),
        patches=list(tool.required_patches),
    )
    tool.check_compatible(kernel, program)
    prepared = tool.prepare_program(program, events, period_ns)
    victim = kernel.spawn(prepared, start=False)
    session = tool.attach(kernel, victim, events, period_ns)
    kernel.run_until_exit(victim, deadline=seconds(deadline_s))
    report = session.finalize()
    return RunResult(report=report, victim=victim, kernel=kernel)


def run_trials(program: Program, tool: MonitoringTool,
               runs: int,
               events: Sequence[str] = DEFAULT_EVENTS,
               period_ns: int = 10_000_000,
               base_seed: int = 0,
               machine_config: Optional[MachineConfig] = None,
               kernel_config: Optional[KernelConfig] = None,
               jobs: Optional[int] = 1) -> List[TrialSummary]:
    """Repeat :func:`run_monitored` with per-trial seeds.

    Trial ``t`` always runs with seed ``base_seed + t``.  With
    ``jobs=1`` the trials run in-process; ``jobs>1`` fans them out over
    a worker pool (``jobs=None`` uses every core).  Both paths assign
    seeds identically and return summaries in trial order, so the
    results are bit-for-bit identical regardless of ``jobs``.
    """
    from repro.experiments.parallel import resolve_jobs, run_trials_parallel

    if resolve_jobs(jobs, runs) > 1:
        return run_trials_parallel(
            program, tool, runs, jobs=jobs, events=events,
            period_ns=period_ns, base_seed=base_seed,
            machine_config=machine_config, kernel_config=kernel_config,
        )
    summaries: List[TrialSummary] = []
    for trial in range(runs):
        started = time.perf_counter()
        result = run_monitored(
            program, tool, events=events, period_ns=period_ns,
            seed=base_seed + trial, machine_config=machine_config,
            kernel_config=kernel_config,
        )
        summary = summarize_trial(
            result, trial=trial, seed=base_seed + trial,
            host_seconds=time.perf_counter() - started,
        )
        logger.info(
            "trial %d/%d (%s under %s) done in %.2fs: sim wall %.4fs, "
            "%d samples", trial + 1, runs, summary.program_name,
            result.report.tool, summary.host_seconds,
            summary.wall_ns / 1e9, summary.sample_count,
        )
        summaries.append(summary)
    return summaries
