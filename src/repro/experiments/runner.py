"""Single-trial runner: one machine, one kernel, one victim, one tool.

Every experiment in the paper reduces to repetitions of this recipe:

1. boot a fresh machine/kernel (seeded — trials are reproducible);
2. let the tool rewrite the victim program if it needs source access;
3. spawn the victim **stopped**, attach the tool, let the tool release
   it (perf's enable-on-exec, K-LEB's start ioctl);
4. run until the victim exits; finalize the session (drain buffers).

:func:`run_monitored` returns a :class:`RunResult` holding the live
``Kernel``/``Task`` for white-box inspection.  :func:`run_trials`
returns plain-data :class:`TrialSummary` objects instead — picklable,
so independent trials can fan out over a worker pool (see
:mod:`repro.experiments.parallel`) and experiments never reach back
into a kernel that may have run in another process.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.errors import KernelError, TransientModuleError, TrialCrashError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultRecord,
    RunLedger,
    TrialLedger,
)
from repro.hw.machine import Machine, MachineConfig
from repro.hw.presets import i7_920
from repro.kernel.config import KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import Task
from repro.obs import hooks as obs_hooks
from repro.sim.clock import seconds
from repro.sim.rng import RngStreams
from repro.tools.base import MonitoringTool, ToolReport
from repro.workloads.base import Program

DEFAULT_EVENTS = ("LOADS", "STORES", "BRANCHES", "LLC_MISSES")

logger = logging.getLogger(__name__)

# Scratch values carried into a TrialSummary: plain data only, so the
# summary stays picklable (tools may stash live objects in scratch).
_PICKLABLE_SCRATCH = (bool, int, float, str, bytes)

# Trial-level retry policy: injected crashes/timeouts are retried with
# capped exponential backoff; a trial still failing after the budget is
# quarantined (reported in the fault ledger, not aborting the run).
MAX_TRIAL_ATTEMPTS = 3
TRIAL_BACKOFF_BASE_S = 0.05
TRIAL_BACKOFF_CAP_S = 0.5
# The *planned* backoff goes in the ledger; the host sleep is capped
# much lower so fault-heavy test suites stay fast.
TRIAL_BACKOFF_REAL_CAP_S = 0.02
# Simulated-time deadline used to model an injected trial timeout: far
# below any workload's runtime (even process setup takes longer), so
# the watchdog always trips.
TRIAL_TIMEOUT_DEADLINE_S = 1e-6


@dataclass
class RunResult:
    """Outcome of one monitored trial (live objects, in-process only)."""

    report: ToolReport
    victim: Task
    kernel: Kernel

    @property
    def wall_ns(self) -> int:
        """Victim wall-clock runtime (the overhead metric).

        Raises :class:`KernelError` if the victim never exited — a
        silent 0 here would contribute a zero to overhead means.
        """
        wall = self.victim.wall_time_ns
        if wall is None:
            raise KernelError(
                f"victim pid {self.victim.pid} ({self.victim.name!r}) "
                "has not exited; wall time is undefined"
            )
        return wall

    @property
    def cpu_ns(self) -> int:
        return self.victim.cpu_time_ns


@dataclass
class TrialSummary:
    """Plain-data outcome of one trial — everything experiments consume.

    Unlike :class:`RunResult` this carries no live ``Kernel``/``Task``,
    so it can cross a process boundary and be compared for bit-for-bit
    equality between the serial and parallel paths (``host_seconds``,
    which measures the host not the simulation, is excluded from
    comparisons).
    """

    trial: int
    seed: int
    wall_ns: int
    cpu_ns: int
    report: ToolReport
    program_name: str
    program_metadata: Dict[str, float] = field(default_factory=dict)
    scratch: Dict[str, object] = field(default_factory=dict)
    host_seconds: float = field(default=0.0, compare=False)
    # Observability chunk (trace events + metrics) recorded during the
    # trial; picklable, merged into the parent recorder in trial order
    # and then dropped.  Excluded from comparisons like host_seconds.
    obs: Optional[Dict[str, object]] = field(default=None, compare=False,
                                             repr=False)

    @property
    def sample_count(self) -> int:
        return self.report.sample_count

    @property
    def samples_dropped(self) -> float:
        """Buffer drops reported by the tool (0 for tools without one)."""
        return self.report.metadata.get("samples_dropped", 0.0)


def summarize_trial(result: RunResult, *, trial: int = 0, seed: int = 0,
                    host_seconds: float = 0.0) -> TrialSummary:
    """Extract the picklable summary of a finished :class:`RunResult`."""
    victim = result.victim
    scratch = {
        key: value for key, value in victim.scratch.items()
        if isinstance(value, _PICKLABLE_SCRATCH)
    }
    return TrialSummary(
        trial=trial,
        seed=seed,
        wall_ns=result.wall_ns,
        cpu_ns=result.cpu_ns,
        report=result.report,
        program_name=victim.program.name,
        program_metadata=dict(victim.program.metadata),
        scratch=scratch,
        host_seconds=host_seconds,
    )


def _prepare_program_cached(tool: MonitoringTool, program: Program,
                            events: Sequence[str],
                            period_ns: int) -> Program:
    """Memoize ``tool.prepare_program`` across trials of one run.

    ``run_trials`` calls :func:`run_monitored` with the same
    ``(program, events, period)`` N times; tools whose preparation is
    trial-independent (``reusable_preparation``) keep a one-slot cache
    on the tool instance, so the compiled program is built once per
    run (and once per worker under ``jobs=N``).  The program is keyed
    by identity — block streams are factories, so a prepared program
    is not consumed by running it.
    """
    if not tool.reusable_preparation:
        return tool.prepare_program(program, events, period_ns)
    events_key = tuple(events)
    entry = getattr(tool, "_prepared_cache", None)
    if (entry is not None and entry[0] is program
            and entry[1] == events_key and entry[2] == period_ns):
        return entry[3]
    prepared = tool.prepare_program(program, events, period_ns)
    tool._prepared_cache = (program, events_key, period_ns, prepared)
    return prepared


def run_monitored(program: Program, tool: MonitoringTool,
                  events: Sequence[str] = DEFAULT_EVENTS,
                  period_ns: int = 10_000_000,
                  seed: int = 0,
                  machine_config: Optional[MachineConfig] = None,
                  kernel_config: Optional[KernelConfig] = None,
                  deadline_s: float = 300.0,
                  faults: Optional[FaultInjector] = None) -> RunResult:
    """Run ``program`` under ``tool`` on a fresh system; see module doc."""
    machine = Machine(machine_config or i7_920())
    config = kernel_config or KernelConfig()
    if tool.kernel_version is not None:
        config = replace(config, kernel_version=tool.kernel_version)
    kernel = Kernel(
        machine,
        config=config,
        rng=RngStreams(seed),
        patches=list(tool.required_patches),
        faults=faults,
    )
    tool.check_compatible(kernel, program)
    prepared = _prepare_program_cached(tool, program, events, period_ns)
    victim = kernel.spawn(prepared, start=False)
    session = tool.attach(kernel, victim, events, period_ns)
    kernel.run_until_exit(victim, deadline=seconds(deadline_s))
    report = session.finalize()
    return RunResult(report=report, victim=victim, kernel=kernel)


@dataclass
class TrialOutcome:
    """Plain-data result of one *fault-injected* trial.

    Wraps the :class:`TrialSummary` (``None`` when the trial was
    quarantined) with the retry/fault accounting the run ledger needs.
    Picklable, so the parallel path returns it unchanged.
    """

    trial: int
    seed: int
    summary: Optional[TrialSummary]
    attempts: int = 1
    quarantined: bool = False
    error: str = ""
    records: List[FaultRecord] = field(default_factory=list)
    obs: Optional[Dict[str, object]] = field(default=None, compare=False,
                                             repr=False)


def _trial_backoff_s(attempt: int) -> float:
    """Planned capped-exponential backoff before retry ``attempt``."""
    return min(TRIAL_BACKOFF_BASE_S * (2 ** (attempt - 1)),
               TRIAL_BACKOFF_CAP_S)


def run_trial_faulted(program: Program, tool: MonitoringTool, trial: int, *,
                      plan: FaultPlan,
                      events: Sequence[str] = DEFAULT_EVENTS,
                      period_ns: int = 10_000_000,
                      base_seed: int = 0,
                      machine_config: Optional[MachineConfig] = None,
                      kernel_config: Optional[KernelConfig] = None
                      ) -> TrialOutcome:
    """One trial under a fault plan, with retry and quarantine.

    The trial's fate (crash / timeout / persistent failure / benign) is
    a pure function of ``(plan.seed, trial)`` — see
    :meth:`~repro.faults.FaultPlan.trial_fate` — so serial and parallel
    execution reach identical decisions.  Each attempt rebuilds a fresh
    :class:`~repro.faults.FaultInjector` for the same ``(plan, trial)``
    pair, so a retry replays identical in-simulation faults and the
    final successful attempt is reproducible in isolation.

    Only *injected* failure modes are caught and retried; a genuine
    bug (any other exception) propagates exactly as in the plain path.
    """
    seed = base_seed + trial
    fate = plan.trial_fate(trial)
    records: List[FaultRecord] = []
    last_error = ""
    with obs_hooks.trial_capture(trial) as obs_child:
        if obs_child is not None:
            obs_child.trial_started(trial)
        for attempt in range(1, MAX_TRIAL_ATTEMPTS + 1):
            injector = FaultInjector(plan, trial=trial)
            inject_timeout = (fate.kind == "timeout"
                              and attempt <= fate.failing_attempts)
            started = time.perf_counter()
            try:
                if (fate.kind in ("crash", "persistent")
                        and attempt <= fate.failing_attempts):
                    flavour = ("persistent worker failure"
                               if fate.kind == "persistent"
                               else "transient worker crash")
                    raise TrialCrashError(
                        f"trial {trial}: injected {flavour} "
                        f"(attempt {attempt})"
                    )
                result = run_monitored(
                    program, tool, events=events, period_ns=period_ns,
                    seed=seed, machine_config=machine_config,
                    kernel_config=kernel_config,
                    deadline_s=(TRIAL_TIMEOUT_DEADLINE_S if inject_timeout
                                else 300.0),
                    faults=injector,
                )
            except TrialCrashError as error:
                kind = ("persistent-failure" if fate.kind == "persistent"
                        else "worker-crash")
                records.append(FaultRecord(time_ns=0, site="runner",
                                           kind=kind, detail=str(error)))
                last_error = str(error)
                if obs_child is not None:
                    obs_child.fault_landed(0, "runner", kind)
            except TransientModuleError as error:
                # Controller exhausted its own retry budget against an
                # injected device failure; the whole trial is retryable.
                records.append(FaultRecord(time_ns=0, site="runner",
                                           kind="device-failure",
                                           detail=str(error)))
                last_error = str(error)
                if obs_child is not None:
                    obs_child.fault_landed(0, "runner", "device-failure")
            except KernelError as error:
                if not inject_timeout:
                    raise  # a real bug, not our watchdog — propagate
                records.append(FaultRecord(time_ns=0, site="runner",
                                           kind="trial-timeout",
                                           detail=str(error)))
                last_error = str(error)
                if obs_child is not None:
                    obs_child.fault_landed(0, "runner", "trial-timeout")
            else:
                records.extend(injector.ledger.records)
                summary = summarize_trial(
                    result, trial=trial, seed=seed,
                    host_seconds=time.perf_counter() - started,
                )
                outcome = TrialOutcome(trial=trial, seed=seed,
                                       summary=summary, attempts=attempt,
                                       records=records)
                if obs_child is not None:
                    obs_child.trial_span(
                        trial, seed, summary.program_name,
                        result.report.tool, summary.wall_ns,
                        summary.sample_count,
                    )
                    outcome.obs = obs_child.chunk()
                return outcome
            if attempt < MAX_TRIAL_ATTEMPTS:
                backoff_s = _trial_backoff_s(attempt)
                records.append(FaultRecord(
                    time_ns=0, site="runner", kind="retry-backoff",
                    detail=f"attempt {attempt} failed; "
                           f"backing off {backoff_s:.2f}s",
                ))
                if obs_child is not None:
                    obs_child.trial_retry(trial, attempt, records[-2].kind)
                time.sleep(min(backoff_s, TRIAL_BACKOFF_REAL_CAP_S))
        logger.warning("trial %d quarantined after %d attempts: %s",
                       trial, MAX_TRIAL_ATTEMPTS, last_error)
        outcome = TrialOutcome(trial=trial, seed=seed, summary=None,
                               attempts=MAX_TRIAL_ATTEMPTS,
                               quarantined=True, error=last_error,
                               records=records)
        if obs_child is not None:
            obs_child.trial_quarantined(trial, MAX_TRIAL_ATTEMPTS)
            outcome.obs = obs_child.chunk()
    return outcome


def collect_outcomes(outcomes: Sequence[TrialOutcome],
                     fault_ledger: Optional[RunLedger] = None
                     ) -> List[TrialSummary]:
    """Fold trial outcomes into the ledger; return surviving summaries.

    Quarantined trials contribute a ledger entry (and a warning) but no
    summary — downstream statistics run on the survivors, exactly as a
    robust harness would treat a persistently broken host.
    """
    summaries: List[TrialSummary] = []
    for outcome in sorted(outcomes, key=lambda o: o.trial):
        # Trial-ordered merge keeps obs output identical across jobs=N.
        obs_hooks.merge_chunk(outcome.obs)
        outcome.obs = None
        if fault_ledger is not None:
            fault_ledger.add(TrialLedger(
                trial=outcome.trial, seed=outcome.seed,
                attempts=outcome.attempts,
                quarantined=outcome.quarantined,
                error=outcome.error,
                records=list(outcome.records),
            ))
        if outcome.summary is not None:
            summaries.append(outcome.summary)
    return summaries


def run_trials(program: Program, tool: MonitoringTool,
               runs: int,
               events: Sequence[str] = DEFAULT_EVENTS,
               period_ns: int = 10_000_000,
               base_seed: int = 0,
               machine_config: Optional[MachineConfig] = None,
               kernel_config: Optional[KernelConfig] = None,
               jobs: Optional[int] = 1,
               faults: Optional[FaultPlan] = None,
               fault_ledger: Optional[RunLedger] = None
               ) -> List[TrialSummary]:
    """Repeat :func:`run_monitored` with per-trial seeds.

    Trial ``t`` always runs with seed ``base_seed + t``.  With
    ``jobs=1`` the trials run in-process; ``jobs>1`` fans them out over
    a worker pool (``jobs=None`` uses every core).  Both paths assign
    seeds identically and return summaries in trial order, so the
    results are bit-for-bit identical regardless of ``jobs``.

    An active ``faults`` plan routes every trial through
    :func:`run_trial_faulted` (retry + quarantine); ``fault_ledger``
    collects per-trial fault records.  An inert plan (or ``None``)
    keeps this path byte-identical to the unfaulted one.
    """
    from repro.experiments.parallel import resolve_jobs, run_trials_parallel

    faulted = faults is not None and faults.active
    if resolve_jobs(jobs, runs) > 1:
        return run_trials_parallel(
            program, tool, runs, jobs=jobs, events=events,
            period_ns=period_ns, base_seed=base_seed,
            machine_config=machine_config, kernel_config=kernel_config,
            faults=faults if faulted else None, fault_ledger=fault_ledger,
        )
    if faulted:
        assert faults is not None
        outcomes = [
            run_trial_faulted(
                program, tool, trial, plan=faults, events=events,
                period_ns=period_ns, base_seed=base_seed,
                machine_config=machine_config, kernel_config=kernel_config,
            )
            for trial in range(runs)
        ]
        return collect_outcomes(outcomes, fault_ledger)
    summaries: List[TrialSummary] = []
    for trial in range(runs):
        started = time.perf_counter()
        with obs_hooks.trial_capture(trial) as obs_child:
            if obs_child is not None:
                obs_child.trial_started(trial)
            result = run_monitored(
                program, tool, events=events, period_ns=period_ns,
                seed=base_seed + trial, machine_config=machine_config,
                kernel_config=kernel_config,
            )
            summary = summarize_trial(
                result, trial=trial, seed=base_seed + trial,
                host_seconds=time.perf_counter() - started,
            )
            if obs_child is not None:
                obs_child.trial_span(
                    trial, summary.seed, summary.program_name,
                    result.report.tool, summary.wall_ns,
                    summary.sample_count,
                )
                summary.obs = obs_child.chunk()
        obs_hooks.merge_chunk(summary.obs)
        summary.obs = None
        logger.info(
            "trial %d/%d (%s under %s) done in %.2fs: sim wall %.4fs, "
            "%d samples", trial + 1, runs, summary.program_name,
            result.report.tool, summary.host_seconds,
            summary.wall_ns / 1e9, summary.sample_count,
        )
        summaries.append(summary)
    return summaries
