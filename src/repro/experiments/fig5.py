"""Fig. 5 — LLC MPKI of workloads running in Docker containers.

The paper attaches K-LEB to running containers (no instrumentation,
binary-only) and classifies images by the Muralidhara MPKI>10 rule:
interpreters land below 1, MySQL/Traefik/Ghost below 10, web servers
above 10.  A second round on the AWS Xeon platform shifts the absolute
values but preserves the low-to-high ordering — reproduced here by
running the same images on both machine presets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.classify import WorkloadClass, classify_mpki
from repro.analysis.metrics import report_mpki
from repro.experiments import report
from repro.hw.machine import Machine, MachineConfig
from repro.hw.presets import i7_920, xeon_8259cl
from repro.kernel.kernel import Kernel
from repro.sim.clock import ms, seconds
from repro.sim.rng import RngStreams
from repro.tools.kleb import KLebTool
from repro.workloads.docker import DockerEngine
from repro.workloads.docker_images import DOCKER_IMAGES

EVENTS = ("LLC_REFERENCES", "LLC_MISSES", "LOADS", "STORES")
DEFAULT_IMAGES = tuple(sorted(DOCKER_IMAGES))


@dataclass
class Fig5Result:
    """Per-image MPKI on one or more platforms."""

    mpki: Dict[str, Dict[str, float]]        # platform -> image -> MPKI
    classes: Dict[str, WorkloadClass]        # image -> class (primary platform)
    images: List[str]
    iterations: int
    period_ns: int

    @property
    def primary_platform(self) -> str:
        return next(iter(self.mpki))

    def ranking(self, platform: str) -> List[str]:
        """Images ordered by MPKI on ``platform`` (low to high)."""
        values = self.mpki[platform]
        return sorted(values, key=values.__getitem__)


def _measure_platform(machine_config: MachineConfig, images: Sequence[str],
                      iterations: int, period_ns: int,
                      seed: int) -> Dict[str, float]:
    values: Dict[str, float] = {}
    for image in images:
        machine = Machine(machine_config)
        kernel = Kernel(machine, rng=RngStreams(seed))
        engine = DockerEngine(kernel)
        container = engine.run_container(image, iterations=iterations,
                                         seed=seed)
        session = KLebTool().attach(kernel, container.shim_task, EVENTS,
                                    period_ns)
        kernel.run_until_exit(container.shim_task, deadline=seconds(60))
        values[image] = report_mpki(session.finalize().totals)
    return values


def run(images: Sequence[str] = DEFAULT_IMAGES, iterations: int = 15,
        period_ns: int = ms(1), seed: int = 0,
        cross_platform: bool = True,
        machine_config: Optional[MachineConfig] = None) -> Fig5Result:
    """Reproduce Fig. 5 (plus the paper's AWS cross-check)."""
    primary = machine_config or i7_920()
    mpki: Dict[str, Dict[str, float]] = {
        primary.name: _measure_platform(primary, images, iterations,
                                        period_ns, seed),
    }
    if cross_platform:
        secondary = xeon_8259cl()
        mpki[secondary.name] = _measure_platform(
            secondary, images, iterations, period_ns, seed,
        )
    classes = {
        image: classify_mpki(value)
        for image, value in mpki[primary.name].items()
    }
    return Fig5Result(
        mpki=mpki,
        classes=classes,
        images=list(images),
        iterations=iterations,
        period_ns=period_ns,
    )


def render(result: Fig5Result) -> str:
    platforms = list(result.mpki)
    headers = ["image"] + [f"MPKI ({platform})" for platform in platforms] + [
        "class", "paper class",
    ]
    primary = result.primary_platform
    ordered = result.ranking(primary)
    rows: List[List[str]] = []
    for image in ordered:
        profile = DOCKER_IMAGES[image]
        paper_class = ("memory-intensive" if profile.target_mpki > 10
                       else "computation-intensive")
        rows.append(
            [image]
            + [f"{result.mpki[platform][image]:.2f}" for platform in platforms]
            + [result.classes[image].value, paper_class]
        )
    table = report.text_table(
        headers, rows,
        title=(f"Fig. 5 — Docker LLC MPKI ({result.iterations} iterations, "
               f"K-LEB @ {result.period_ns / 1e6:g} ms)"),
    )
    if len(platforms) > 1:
        consistent = result.ranking(platforms[0]) == result.ranking(platforms[1])
        table += ("\n\nCross-platform ranking consistent: "
                  f"{consistent} (paper: same low-to-high trend on AWS)")
    return table
