"""§IV preamble — cross-platform count verification.

"The results were verified on Amazon Web Services using Intel Xeon
Platinum 8259CL ... There was less than 1 % difference in the counts,
therefore we only present the local results."

Architectural events are deterministic properties of the instruction
stream, so the same program monitored by K-LEB on the two machine
presets must agree to well under 1 % — while *time-domain* quantities
(runtime, sample counts) legitimately shift with the clock frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.accuracy import count_difference_percent
from repro.experiments import report
from repro.experiments.runner import run_monitored
from repro.hw.presets import i7_920, xeon_8259cl
from repro.sim.clock import ms
from repro.tools.registry import create_tool
from repro.workloads.matmul import TripleLoopMatmul

EVENTS = ("LOADS", "STORES", "BRANCHES", "ARITH_MUL")
COMPARED = ("LOADS", "STORES", "BRANCHES", "INST_RETIRED")


@dataclass
class CrosscheckResult:
    """Per-event count differences between the two platforms."""

    differences_percent: Dict[str, float]
    local_totals: Dict[str, float]
    aws_totals: Dict[str, float]
    local_wall_ns: int
    aws_wall_ns: int
    n: int

    @property
    def worst_percent(self) -> float:
        return max(self.differences_percent.values())


def run(n: int = 1024, period_ns: int = ms(10),
        seed: int = 0) -> CrosscheckResult:
    """Monitor the same program with K-LEB on both machine presets."""
    program = TripleLoopMatmul(n)
    local = run_monitored(program, create_tool("k-leb"), events=EVENTS,
                          period_ns=period_ns, seed=seed,
                          machine_config=i7_920())
    aws = run_monitored(program, create_tool("k-leb"), events=EVENTS,
                        period_ns=period_ns, seed=seed,
                        machine_config=xeon_8259cl())
    differences = {
        event: count_difference_percent(
            local.report.totals[event], aws.report.totals[event]
        )
        for event in COMPARED
    }
    return CrosscheckResult(
        differences_percent=differences,
        local_totals=dict(local.report.totals),
        aws_totals=dict(aws.report.totals),
        local_wall_ns=local.wall_ns,
        aws_wall_ns=aws.wall_ns,
        n=n,
    )


def render(result: CrosscheckResult) -> str:
    rows: List[List[str]] = [
        [event,
         report.format_count(result.local_totals[event]),
         report.format_count(result.aws_totals[event]),
         f"{result.differences_percent[event]:.4f}%"]
        for event in COMPARED
    ]
    table = report.text_table(
        ["event", "i7-920 (local)", "xeon-8259cl (AWS)", "difference"],
        rows,
        title=f"Cross-platform count verification (matmul n={result.n})",
    )
    return (
        f"{table}\n\n"
        f"runtime: local {result.local_wall_ns / 1e9:.4f}s vs "
        f"AWS {result.aws_wall_ns / 1e9:.4f}s (clock-dependent)\n"
        f"worst count difference: {result.worst_percent:.4f}% "
        "(paper: < 1%)"
    )
