"""Fig. 9 — hardware event count differences across collection tools.

The paper compares each tool's reported counts on *architectural*
(deterministic) events — Branch, Load, Store, Instructions retired —
and finds:

* K-LEB vs perf stat: < 0.0008 % on deterministic events;
* perf record vs K-LEB: < 0.15 % (sampling reconstruction loses the
  tail after the last sample);
* every tool pair, every compared event: < 0.3 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.accuracy import accuracy_matrix, worst_difference
from repro.errors import ToolUnsupportedError
from repro.experiments import report
from repro.experiments.runner import run_monitored
from repro.hw.machine import MachineConfig
from repro.sim.clock import ms
from repro.tools.base import ToolReport
from repro.tools.registry import create_tool
from repro.workloads.matmul import TripleLoopMatmul

TOOLS = ("k-leb", "perf-stat", "perf-record", "papi", "limit")
# Architectural events (plus the fixed-counter instruction count).
COMPARED_EVENTS = ("BRANCHES", "LOADS", "STORES", "INST_RETIRED")
MONITORED_EVENTS = ("BRANCHES", "LOADS", "STORES", "ARITH_MUL")


@dataclass
class Fig9Result:
    """Count-deviation matrix vs the K-LEB reference."""

    matrix: Dict[str, Dict[str, float]]     # tool -> event -> |diff| %
    reports: Dict[str, ToolReport]
    skipped: Dict[str, str]                 # tool -> unsupported reason
    worst_percent: float
    n: int
    period_ns: int


def run(n: int = 1024, period_ns: int = ms(10), seed: int = 0,
        machine_config: Optional[MachineConfig] = None) -> Fig9Result:
    """Reproduce Fig. 9 on the triple-loop matmul."""
    program = TripleLoopMatmul(n)
    reports: Dict[str, ToolReport] = {}
    skipped: Dict[str, str] = {}
    for name in TOOLS:
        try:
            result = run_monitored(
                program, create_tool(name), events=MONITORED_EVENTS,
                period_ns=period_ns, seed=seed,
                machine_config=machine_config,
            )
        except ToolUnsupportedError as error:
            skipped[name] = str(error)
            continue
        reports[name] = result.report
    matrix = accuracy_matrix(reports, COMPARED_EVENTS,
                             reference_tool="k-leb")
    return Fig9Result(
        matrix=matrix,
        reports=reports,
        skipped=skipped,
        worst_percent=worst_difference(matrix),
        n=n,
        period_ns=period_ns,
    )


def render(result: Fig9Result) -> str:
    rows: List[List[str]] = []
    for tool, row in result.matrix.items():
        rows.append([tool] + [f"{row[event]:.5f}" for event in COMPARED_EVENTS])
    for tool, reason in result.skipped.items():
        rows.append([tool] + ["n/a"] * len(COMPARED_EVENTS))
    table = report.text_table(
        ["tool vs k-leb"] + [f"{event} (%)" for event in COMPARED_EVENTS],
        rows,
        title=f"Fig. 9 — count difference vs K-LEB (matmul n={result.n})",
    )
    return (f"{table}\n\nworst deviation: {result.worst_percent:.5f}% "
            "(paper: < 0.3% across all tools and events)")
