"""Fig. 8 — box-and-whisker of normalized execution time per tool.

The paper normalizes the matmul run times under each tool and compares
their spreads: K-LEB has the smallest box/whiskers — the least and the
most *consistent* interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import BoxStats, box_stats, normalize
from repro.experiments import report
from repro.experiments.overhead_common import OVERHEAD_EVENTS, collect_tool_runs
from repro.faults import FaultPlan, RunLedger
from repro.hw.machine import MachineConfig
from repro.sim.clock import ms
from repro.workloads.matmul import TripleLoopMatmul

TOOLS = ("none", "k-leb", "perf-stat", "perf-record", "papi", "limit")


@dataclass
class Fig8Result:
    """Box statistics of normalized runtimes per tool."""

    boxes: Dict[str, BoxStats]
    runs: int
    period_ns: int

    def spread_ranking(self) -> Dict[str, float]:
        """Tools ordered by whisker-to-whisker spread (ascending)."""
        spreads = {name: stats.spread for name, stats in self.boxes.items()}
        return dict(sorted(spreads.items(), key=lambda item: item[1]))


def run(runs: int = 30, n: int = 1024, period_ns: int = ms(10),
        seed: int = 0,
        machine_config: Optional[MachineConfig] = None,
        jobs: Optional[int] = 1,
        faults: Optional[FaultPlan] = None,
        fault_ledger: Optional[RunLedger] = None) -> Fig8Result:
    """Reproduce Fig. 8 (same populations as Table II)."""
    program = TripleLoopMatmul(n)
    runs_data = collect_tool_runs(
        program, TOOLS, runs=runs, period_ns=period_ns,
        events=OVERHEAD_EVENTS, base_seed=seed,
        machine_config=machine_config, jobs=jobs,
        faults=faults, fault_ledger=fault_ledger,
    )
    baseline_mean = float(np.mean(runs_data["none"].wall_ns))
    boxes = {
        name: box_stats(normalize(record.wall_ns, baseline_mean))
        for name, record in runs_data.items()
        if record.supported
    }
    return Fig8Result(boxes=boxes, runs=runs, period_ns=period_ns)


def render(result: Fig8Result) -> str:
    rows = []
    for name, stats in result.boxes.items():
        rows.append([
            name,
            f"{stats.median:.4f}",
            f"{stats.q1:.4f}",
            f"{stats.q3:.4f}",
            f"{stats.whisker_low:.4f}",
            f"{stats.whisker_high:.4f}",
            f"{stats.spread:.4f}",
        ])
    table = report.text_table(
        ["tool", "median", "q1", "q3", "wlow", "whigh", "spread"],
        rows,
        title=(f"Fig. 8 — normalized runtime distributions "
               f"({result.runs} runs)"),
    )
    monitored = {
        name: spread
        for name, spread in result.spread_ranking().items()
        if name != "none"
    }
    tightest = next(iter(monitored))
    return (f"{table}\n\ntightest monitored spread: {tightest} "
            "(paper: K-LEB has the smallest spread)")
