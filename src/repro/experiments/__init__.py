"""Experiment reproductions — one module per paper table/figure.

Each module exposes ``run(...)`` returning a typed result object and
``render(result)`` producing the paper-style text output.  The
:data:`EXPERIMENTS` registry maps experiment ids to those entry points
for the CLI and the benchmark harness.
"""

from dataclasses import dataclass
from typing import Callable, Dict

from repro.experiments import (
    adaptive,
    crosscheck,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    multiplex,
    smp,
    table1,
    table2,
    table3,
)
from repro.experiments.parallel import default_jobs, resolve_jobs
from repro.experiments.runner import (
    RunResult,
    TrialSummary,
    run_monitored,
    run_trials,
    summarize_trial,
)


@dataclass(frozen=True)
class ExperimentEntry:
    """Registry record for one reproducible table/figure."""

    experiment_id: str
    description: str
    run: Callable
    render: Callable


EXPERIMENTS: Dict[str, ExperimentEntry] = {
    entry.experiment_id: entry
    for entry in [
        ExperimentEntry(
            "table1", "LINPACK GFLOPS across profiling tools",
            table1.run, table1.render,
        ),
        ExperimentEntry(
            "table2", "Overhead on triple-loop matmul (~2 s)",
            table2.run, table2.render,
        ),
        ExperimentEntry(
            "table3", "Overhead on MKL dgemm (<100 ms); LiMiT n/a",
            table3.run, table3.render,
        ),
        ExperimentEntry(
            "fig4", "LINPACK phase behaviour time series",
            fig4.run, fig4.render,
        ),
        ExperimentEntry(
            "fig5", "Docker image LLC MPKI classification",
            fig5.run, fig5.render,
        ),
        ExperimentEntry(
            "fig6", "Meltdown vs clean: mean LLC counts",
            fig6.run, fig6.render,
        ),
        ExperimentEntry(
            "fig7", "Meltdown time series at 100 us + detection",
            fig7.run, fig7.render,
        ),
        ExperimentEntry(
            "fig8", "Normalized runtime spread (box plots)",
            fig8.run, fig8.render,
        ),
        ExperimentEntry(
            "fig9", "Cross-tool count accuracy",
            fig9.run, fig9.render,
        ),
        ExperimentEntry(
            "crosscheck", "Local vs AWS platform count verification (<1%)",
            crosscheck.run, crosscheck.render,
        ),
        ExperimentEntry(
            "multiplex", "Multiplexed scaled-count error vs rotation period",
            multiplex.run, multiplex.render,
        ),
        ExperimentEntry(
            "adaptive", "Adaptive vs fixed sampling accuracy/overhead frontier",
            adaptive.run, adaptive.render,
        ),
        ExperimentEntry(
            "smp", "SMP contention crosscheck (streamers vs monitored service)",
            smp.run, smp.render,
        ),
    ]
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentEntry",
    "RunResult",
    "TrialSummary",
    "default_jobs",
    "resolve_jobs",
    "run_monitored",
    "run_trials",
    "summarize_trial",
]
