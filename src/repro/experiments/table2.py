"""Table II — overhead on the triple-nested-loop matrix multiply (~2 s).

Paper values (100 runs, 10 ms sample rate):

===========  =========
tool         overhead
===========  =========
K-LEB        0.68 %
perf stat    6.01 %
perf record  ≈1.65 % (K-LEB is a 58.8 % relative reduction)
PAPI         6.43 %
LiMiT        4.08 %
===========  =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.overhead import (
    OverheadStats,
    relative_reduction_percent,
    summarize_overhead,
)
from repro.experiments import report
from repro.experiments.overhead_common import (
    OVERHEAD_EVENTS,
    ToolRuns,
    collect_tool_runs,
)
from repro.faults import FaultPlan, RunLedger
from repro.hw.machine import MachineConfig
from repro.sim.clock import ms
from repro.workloads.matmul import TripleLoopMatmul

TOOLS = ("none", "k-leb", "perf-stat", "perf-record", "papi", "limit")


@dataclass
class OverheadTableResult:
    """Overhead summary per tool (shared by Tables II and III)."""

    title: str
    stats: Dict[str, OverheadStats]
    runs_data: Dict[str, ToolRuns]
    runs: int
    period_ns: int

    @property
    def kleb_vs_next_best_percent(self) -> float:
        """K-LEB's relative overhead reduction vs the next-best tool."""
        others = [
            stat.overhead_mean_percent
            for name, stat in self.stats.items()
            if name not in ("none", "k-leb")
        ]
        return relative_reduction_percent(
            self.stats["k-leb"].overhead_mean_percent, min(others)
        )


def run(runs: int = 30, n: int = 1024, period_ns: int = ms(10),
        seed: int = 0,
        machine_config: Optional[MachineConfig] = None,
        jobs: Optional[int] = 1,
        faults: Optional[FaultPlan] = None,
        fault_ledger: Optional[RunLedger] = None) -> OverheadTableResult:
    """Reproduce Table II.  The paper used 100 runs; the default here is
    30 for turnaround — pass ``runs=100`` for the full population."""
    program = TripleLoopMatmul(n)
    runs_data = collect_tool_runs(
        program, TOOLS, runs=runs, period_ns=period_ns,
        events=OVERHEAD_EVENTS, base_seed=seed,
        machine_config=machine_config, jobs=jobs,
        faults=faults, fault_ledger=fault_ledger,
    )
    baseline = runs_data["none"].wall_ns
    stats: Dict[str, OverheadStats] = {}
    for name, record in runs_data.items():
        if record.supported and name != "none":
            stats[name] = summarize_overhead(name, record.wall_ns, baseline)
    return OverheadTableResult(
        title=f"Table II — triple-loop matmul n={n}",
        stats=stats,
        runs_data=runs_data,
        runs=runs,
        period_ns=period_ns,
    )


def render(result: OverheadTableResult) -> str:
    rows = []
    baseline_mean = float(np.mean(result.runs_data["none"].wall_ns))
    rows.append(["no profiling", f"{baseline_mean / 1e9:.4f}", "-", "-"])
    for name, record in result.runs_data.items():
        if name == "none":
            continue
        if not record.supported:
            rows.append([name, "n/a", "n/a", record.unsupported_reason or ""])
            continue
        stat = result.stats[name]
        rows.append([
            name,
            f"{stat.monitored_mean_ns / 1e9:.4f}",
            report.format_percent(stat.overhead_mean_percent),
            f"±{stat.overhead_std_percent:.2f}",
        ])
    table = report.text_table(
        ["tool", "mean runtime (s)", "overhead", "spread"],
        rows,
        title=f"{result.title} ({result.runs} runs, "
              f"{result.period_ns // 1_000_000} ms rate)",
    )
    reduction = result.kleb_vs_next_best_percent
    return (f"{table}\n\nK-LEB vs next-best tool: "
            f"{reduction:.1f}% relative overhead reduction "
            f"(paper: 58.8%)")
