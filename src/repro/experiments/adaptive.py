"""Adaptive sampling frontier — accuracy vs overhead on phase shifts.

The paper's Tables II/III make the cost of fixed-period sampling
concrete: 100 µs sees everything and costs the most, 10 ms is nearly
free and blurs fast behaviour.  This experiment maps where closed-loop
adaptive sampling (:mod:`repro.control`) lands on that frontier: a
phase-shift workload (alternating compute/memory phases, some shorter
than a 10 ms sample period) is monitored by fixed 100 µs / 1 ms / 10 ms
K-LEB runs and by an adaptive run that idles at 1 ms and boosts toward
100 µs when its signal tracker sees a phase change.

Accuracy is phase-boundary coverage: the fixed-100 µs run (the highest
fidelity monitor) defines the reference boundaries; each config is
scored by the fraction of reference boundaries it detects within a
half-phase tolerance, plus the mean timing error of the matches.
Overhead is the victim's wall-clock stretch against an unmonitored
baseline (the Table II/III definition).

The headline (recorded in EXPERIMENTS.md): the adaptive run holds the
same boundary coverage as fixed 100 µs at a fraction of its overhead —
it pays the fast-sampling price only across transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.phases import detect_phases, merge_short_segments
from repro.analysis.timeseries import EventSeries, samples_to_series
from repro.control import ControlConfig
from repro.experiments import report
from repro.experiments.runner import run_monitored
from repro.sim.clock import ms, us
from repro.tools.base import ToolReport
from repro.tools.kleb.tool import KLebTool
from repro.tools.null import NullTool
from repro.workloads.synthetic import PhaseShiftWorkload

EVENTS = ("LOADS", "STORES", "ARITH_MUL", "LLC_MISSES")
#: Events the phase detector keys on (largest contrast between the
#: compute and memory profiles).
DETECT_EVENTS = ("ARITH_MUL", "LOADS")
#: Alternating compute/memory phase lengths in instructions — mostly
#: long phases (tens of ms, several controller observations each, so
#: the signal tracker settles between transitions) with two short
#: (~5 ms) phases that a 10 ms sampler cannot resolve.
DEFAULT_PHASE_INSTRUCTIONS = (147e6, 107e6, 160e6, 40e6, 134e6, 32e6,
                              174e6, 120e6)


@dataclass
class ConfigScore:
    """One monitoring configuration's point on the frontier."""

    label: str
    period_ns: int            # nominal sampling period
    adaptive: bool
    wall_ns: int
    overhead_percent: float
    samples: int
    # Detected phase-boundary positions as fractions of the victim's
    # *progress* (cumulative sampled-event count).  Each config dilates
    # the victim's wall clock differently — and the adaptive run
    # non-uniformly, since the boost concentrates overhead around
    # transitions — so neither absolute times nor wall fractions are
    # comparable across configs.  Cumulative event counts are: the same
    # victim instruction has the same cumulative count everywhere.
    boundaries: List[float]
    coverage: float           # fraction of reference boundaries matched
    mean_error: float         # mean |detected - reference| over matches
    # Adaptive-only accounting (empty otherwise).
    control_metadata: Dict[str, float]


@dataclass
class AdaptiveResult:
    """Accuracy-vs-overhead frontier of adaptive vs fixed sampling."""

    phase_instructions: Tuple[float, ...]
    seed: int
    baseline_wall_ns: int
    reference_label: str
    reference_boundaries: List[float]  # victim-progress fractions
    tolerance: float                   # victim-progress fraction
    scores: List[ConfigScore]

    def score(self, label: str) -> ConfigScore:
        for entry in self.scores:
            if entry.label == label:
                return entry
        raise KeyError(label)

    def dominated_labels(self) -> List[str]:
        """Fixed configs the adaptive run dominates: equal-or-better
        coverage at strictly lower overhead."""
        adaptive = next(s for s in self.scores if s.adaptive)
        return [
            s.label for s in self.scores
            if not s.adaptive
            and adaptive.coverage >= s.coverage
            and adaptive.overhead_percent < s.overhead_percent
        ]


def _rate_series(series: EventSeries) -> EventSeries:
    """Per-nanosecond event rates between consecutive samples.

    Adaptive runs space their samples unevenly (period retuning, skip
    gaps), so raw per-interval deltas are not comparable across the
    series — normalizing by each interval's span makes the phase
    detector spacing-independent for every config.
    """
    timestamps = series.timestamps
    spans = np.diff(timestamps).astype(np.float64)
    spans[spans == 0] = 1.0
    values = {
        name: np.diff(data.astype(np.float64)) / spans
        for name, data in series.values.items()
    }
    return EventSeries(timestamps=timestamps[1:], values=values)


def _boundaries(tool_report: ToolReport,
                min_segment: int = 3) -> List[float]:
    """Detected phase boundaries as fractions of victim progress."""
    if len(tool_report.samples) < max(3, min_segment + 1):
        return []
    series = samples_to_series(tool_report.samples)
    rates = _rate_series(series)
    segments = merge_short_segments(
        detect_phases(rates, DETECT_EVENTS), min_segment)
    # Progress coordinate: total sampled-event count accumulated by the
    # boundary's timestamp, as a fraction of the run's final count.
    timestamps = series.timestamps.astype(np.float64)
    progress = np.zeros(len(timestamps))
    for data in series.values.values():
        progress += data.astype(np.float64)
    total = float(progress[-1])
    if total <= 0:
        return []
    return [
        float(np.interp(segment.start_ns, timestamps, progress) / total)
        for segment in segments[1:]
    ]


def _match(reference: Sequence[float], detected: Sequence[float],
           tolerance: float) -> Tuple[float, float]:
    """Greedy nearest-match coverage and mean timing error."""
    if not reference:
        return 1.0, 0.0
    remaining = list(detected)
    errors: List[float] = []
    for boundary in reference:
        if not remaining:
            break
        nearest = min(remaining, key=lambda t: abs(t - boundary))
        if abs(nearest - boundary) <= tolerance:
            errors.append(abs(nearest - boundary))
            remaining.remove(nearest)
    coverage = len(errors) / len(reference)
    mean_error = float(np.mean(errors)) if errors else 0.0
    return coverage, mean_error


def run(phase_instructions: Sequence[float] = DEFAULT_PHASE_INSTRUCTIONS,
        seed: int = 0,
        period_ns: int = ms(1),
        budget_percent: float = 2.0) -> AdaptiveResult:
    """Map the accuracy-vs-overhead frontier; see module doc.

    ``period_ns`` is the adaptive run's *nominal* period (the level it
    idles at and converges back to); the fixed configs are unaffected.
    """
    nominal_period_ns = int(period_ns)
    def workload() -> PhaseShiftWorkload:
        return PhaseShiftWorkload.alternating(phase_instructions)

    baseline = run_monitored(workload(), NullTool(), events=EVENTS,
                             period_ns=ms(10), seed=seed)
    baseline_wall = baseline.wall_ns

    configs: List[Tuple[str, int, Optional[KLebTool]]] = [
        ("fixed-100us", us(100), KLebTool()),
        ("fixed-1ms", ms(1), KLebTool()),
        ("fixed-10ms", ms(10), KLebTool()),
        ("adaptive", nominal_period_ns, KLebTool(control=ControlConfig(
            overhead_budget_percent=budget_percent,
            min_period_ns=us(100),
            max_period_ns=ms(10),
        ))),
    ]

    reports: Dict[str, ToolReport] = {}
    for label, period_ns, tool in configs:
        result = run_monitored(workload(), tool, events=EVENTS,
                               period_ns=period_ns, seed=seed)
        reports[label] = result.report

    reference_label = "fixed-100us"
    reference_boundaries = _boundaries(reports[reference_label])
    # Tolerance: half the shortest reference phase, so a match must
    # land in the right phase, not merely the right neighbourhood.
    if len(reference_boundaries) >= 2:
        spans = np.diff([0.0] + reference_boundaries)
        tolerance = float(min(spans) / 2)
    else:
        tolerance = 0.02

    scores: List[ConfigScore] = []
    for label, period_ns, tool in configs:
        tool_report = reports[label]
        boundaries = _boundaries(tool_report)
        coverage, mean_error = _match(reference_boundaries, boundaries,
                                      tolerance)
        metadata = {
            key: value for key, value in tool_report.metadata.items()
            if key.startswith("adaptive_")
        }
        scores.append(ConfigScore(
            label=label,
            period_ns=period_ns,
            adaptive=bool(metadata),
            wall_ns=tool_report.victim_wall_ns,
            overhead_percent=(
                100.0 * (tool_report.victim_wall_ns - baseline_wall)
                / baseline_wall),
            samples=len(tool_report.samples),
            boundaries=boundaries,
            coverage=coverage,
            mean_error=mean_error,
            control_metadata=metadata,
        ))

    return AdaptiveResult(
        phase_instructions=tuple(phase_instructions),
        seed=seed,
        baseline_wall_ns=baseline_wall,
        reference_label=reference_label,
        reference_boundaries=reference_boundaries,
        tolerance=tolerance,
        scores=scores,
    )


def render(result: AdaptiveResult) -> str:
    headers = ["config", "overhead", "samples", "boundaries",
               "coverage", "mean error"]
    rows: List[List[str]] = []
    for score in result.scores:
        rows.append([
            score.label,
            f"{score.overhead_percent:.2f}%",
            str(score.samples),
            f"{len(score.boundaries)}/{len(result.reference_boundaries)}",
            f"{score.coverage * 100:.0f}%",
            f"{score.mean_error * 100:.2f}% of run",
        ])
    table = report.text_table(
        headers, rows,
        title=(f"Adaptive vs fixed sampling on a "
               f"{len(result.phase_instructions)}-phase workload "
               f"(reference: {result.reference_label}, tolerance "
               f"{result.tolerance * 100:.1f}% of victim progress)"),
    )
    adaptive = next(s for s in result.scores if s.adaptive)
    lines = [table, ""]
    if adaptive.control_metadata:
        meta = adaptive.control_metadata
        lines.append(
            f"adaptive controller: {meta.get('adaptive_observations', 0):.0f} "
            f"observations, {meta.get('adaptive_boosts', 0):.0f} boosts / "
            f"{meta.get('adaptive_boost_releases', 0):.0f} releases "
            f"(min period {meta.get('adaptive_min_period_ns', 0) / 1e3:g} us), "
            f"{meta.get('adaptive_degradations', 0):.0f} degradations / "
            f"{meta.get('adaptive_recoveries', 0):.0f} recoveries, "
            f"final period "
            f"{meta.get('adaptive_final_period_ns', 0) / 1e3:g} us"
        )
    dominated = result.dominated_labels()
    if dominated:
        lines.append(
            f"adaptive dominates {', '.join(dominated)}: equal-or-better "
            f"boundary coverage at strictly lower overhead."
        )
    else:  # pragma: no cover - defensive reporting path
        lines.append("adaptive dominates no fixed configuration on this run.")
    return "\n".join(lines)
