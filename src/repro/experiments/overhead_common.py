"""Shared machinery for the overhead studies (Tables I-III, Fig. 8)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ToolUnsupportedError
from repro.experiments.runner import run_trials
from repro.faults import FaultPlan, RunLedger
from repro.hw.machine import MachineConfig
from repro.tools.registry import create_tool
from repro.workloads.base import Program

OVERHEAD_EVENTS = ("LOADS", "STORES", "BRANCHES", "ARITH_MUL")


@dataclass
class ToolRuns:
    """Wall times (and sample counts) of one tool's run population."""

    tool: str
    wall_ns: List[float] = field(default_factory=list)
    sample_counts: List[int] = field(default_factory=list)
    unsupported_reason: Optional[str] = None

    @property
    def supported(self) -> bool:
        return self.unsupported_reason is None


def collect_tool_runs(program: Program, tool_names: Sequence[str],
                      runs: int, period_ns: int,
                      events: Sequence[str] = OVERHEAD_EVENTS,
                      base_seed: int = 0,
                      machine_config: Optional[MachineConfig] = None,
                      jobs: Optional[int] = 1,
                      faults: Optional[FaultPlan] = None,
                      fault_ledger: Optional[RunLedger] = None
                      ) -> Dict[str, ToolRuns]:
    """Run every tool ``runs`` times over ``program``.

    Unsupported pairings (LiMiT on a program needing a modern kernel)
    are recorded with their reason rather than raised — the paper's
    Table III reports "no data" for exactly that case.  ``jobs`` fans
    each tool's trial population out over worker processes; results are
    identical to the serial path (see :mod:`repro.experiments.parallel`).
    """
    results: Dict[str, ToolRuns] = {}
    for name in tool_names:
        record = ToolRuns(tool=name)
        try:
            trials = run_trials(
                program, create_tool(name), runs=runs, events=events,
                period_ns=period_ns, base_seed=base_seed,
                machine_config=machine_config, jobs=jobs,
                faults=faults, fault_ledger=fault_ledger,
            )
        except ToolUnsupportedError as error:
            record.unsupported_reason = str(error)
        else:
            record.wall_ns = [float(trial.wall_ns) for trial in trials]
            record.sample_counts = [
                trial.report.sample_count for trial in trials
            ]
        results[name] = record
    return results
