"""Fig. 7 — Meltdown vs non-Meltdown time series via K-LEB at 100 µs.

The capability demonstration: the clean program finishes in <10 ms, so
perf (10 ms floor) gets a single sample — it can say *whether* an
attack happened, not *when*.  K-LEB's 100 µs series localizes the
point of attack (the sustained high miss/reference intervals), which
the anomaly detector in :mod:`repro.analysis.detection` flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.detection import AnomalyVerdict, detect_cache_anomaly
from repro.analysis.metrics import report_mpki
from repro.analysis.timeseries import EventSeries, deltas, samples_to_series
from repro.experiments import report
from repro.experiments.runner import run_monitored
from repro.hw.machine import MachineConfig
from repro.sim.clock import us
from repro.tools.registry import create_tool
from repro.workloads.meltdown import MeltdownAttack, SecretPrinter

EVENTS = ("LLC_REFERENCES", "LLC_MISSES", "LOADS", "STORES")


@dataclass
class Fig7Result:
    """100 µs series for both programs plus detector verdicts."""

    clean_series: EventSeries
    attack_series: EventSeries
    clean_verdict: AnomalyVerdict
    attack_verdict: AnomalyVerdict
    clean_mpki: float
    attack_mpki: float
    clean_wall_ns: int
    attack_wall_ns: int
    perf_samples_clean: int
    period_ns: int


def run(period_ns: int = us(100), seed: int = 0,
        machine_config: Optional[MachineConfig] = None) -> Fig7Result:
    """Reproduce Fig. 7 (one run of each program)."""
    clean = run_monitored(
        SecretPrinter(), create_tool("k-leb"), events=EVENTS,
        period_ns=period_ns, seed=seed, machine_config=machine_config,
    )
    attack = run_monitored(
        MeltdownAttack(), create_tool("k-leb"), events=EVENTS,
        period_ns=period_ns, seed=seed, machine_config=machine_config,
    )
    # The perf comparison: same request, clamped to the 10 ms floor.
    perf = run_monitored(
        SecretPrinter(), create_tool("perf-stat"), events=EVENTS,
        period_ns=period_ns, seed=seed, machine_config=machine_config,
    )
    clean_series = deltas(samples_to_series(clean.report.samples))
    attack_series = deltas(samples_to_series(attack.report.samples))
    return Fig7Result(
        clean_series=clean_series,
        attack_series=attack_series,
        clean_verdict=detect_cache_anomaly(clean_series),
        attack_verdict=detect_cache_anomaly(attack_series),
        clean_mpki=report_mpki(clean.report.totals),
        attack_mpki=report_mpki(attack.report.totals),
        clean_wall_ns=clean.wall_ns,
        attack_wall_ns=attack.wall_ns,
        perf_samples_clean=perf.report.sample_count,
        period_ns=period_ns,
    )


def render(result: Fig7Result) -> str:
    lines = [
        f"Fig. 7 — Meltdown vs non-Meltdown via K-LEB "
        f"({result.period_ns / 1000:g} us samples)",
        "",
        f"clean  ({result.clean_wall_ns / 1e6:.1f} ms, "
        f"{len(result.clean_series)} intervals, MPKI {result.clean_mpki:.2f})",
        f"  LLC_MISSES {report.sparkline(result.clean_series.event('LLC_MISSES'))}",
        f"attack ({result.attack_wall_ns / 1e6:.1f} ms, "
        f"{len(result.attack_series)} intervals, MPKI {result.attack_mpki:.2f})",
        f"  LLC_MISSES {report.sparkline(result.attack_series.event('LLC_MISSES'))}",
        "",
        f"anomaly detector: clean={result.clean_verdict.anomalous}, "
        f"attack={result.attack_verdict.anomalous}",
    ]
    if result.attack_verdict.anomalous:
        lines.append(
            "point of attack first flagged at "
            f"{result.attack_verdict.first_flag_ns / 1e6:.2f} ms "
            f"(interval {result.attack_verdict.first_flag_index})"
        )
    lines.append(
        f"perf at the same request: {result.perf_samples_clean} sample(s) "
        "for the whole clean run (10 ms floor) — K-LEB got "
        f"{len(result.clean_series) + 1}"
    )
    return "\n".join(lines)
