"""LiMiT analogue: user-space counter reads on a patched kernel.

LiMiT (Demme & Sethumadhavan, ISCA'11) removes PAPI's syscall cost by
patching the kernel so user code can read (``rdpmc``) and manage the
counters directly.  The paper's characterization (§II-B, §V):

* needs a **kernel patch** — cannot be used on a stock or already
  running system (K-LEB's module-based deployment advantage);
* the patch exists for an old kernel only (their LiMiT box ran Ubuntu
  12.04 / 2.6.32), which is why Table III has no LiMiT entry for
  Intel MKL;
* per read point the counter access itself is nearly free, but the
  sample still has to be logged — so LiMiT lands *between* K-LEB and
  PAPI in Table II (4.08 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import ToolError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Task, TaskState
from repro.tools import costs
from repro.tools.base import (
    CounterGate,
    MonitoringTool,
    Sample,
    Session,
    ToolReport,
)
from repro.tools.papi import instrumentation_interval
from repro.workloads.base import (
    Block,
    BlockInserter,
    Program,
    RateBlock,
    SyscallBlock,
    user_probe,
)

_DEFAULT_FREQUENCY_HZ = 2.67e9

LIMIT_PATCH = "limit"


@dataclass
class _LimitRuntime:
    """State shared between instrumented blocks and the session."""

    events: List[str]
    gate: Optional[CounterGate] = None
    samples: List[Sample] = field(default_factory=list)
    totals: Dict[str, float] = field(default_factory=dict)
    cost_factor: float = 1.0
    read_points: int = 0

    def require_gate(self) -> CounterGate:
        if self.gate is None:
            raise ToolError("LiMiT instrumentation ran before attach()")
        return self.gate


class LimitInstrumentedProgram(Program):
    """A victim program rebuilt against the LiMiT user-space library."""

    def __init__(self, base: Program, events: Sequence[str],
                 interval_instructions: float) -> None:
        self.name = f"{base.name}+limit"
        self._base = base
        self.runtime = _LimitRuntime(events=list(events))
        inserter = BlockInserter(
            factory=self._read_point,
            every_instructions=interval_instructions,
            prologue=self._prologue,
            epilogue=self._epilogue,
        )
        self._instrumented = base.instrumented(inserter)

    @property
    def metadata(self) -> Dict[str, float]:
        return self._base.metadata

    def blocks(self) -> Iterator[Block]:
        return self._instrumented.blocks()

    # -- instrumentation pieces -----------------------------------------
    def _prologue(self) -> List[Block]:
        runtime = self.runtime

        def do_enable(kernel: Kernel, task: Task):
            # With the LiMiT patch, enabling counters from user land is
            # a lightweight operation (no context switch into a driver).
            runtime.require_gate().arm()
            return True

        return [
            RateBlock(
                instructions=(costs.LIMIT_SETUP_NS / 1e9)
                * _DEFAULT_FREQUENCY_HZ,
                rates={"LOADS": 0.3, "STORES": 0.2, "BRANCHES": 0.12},
                label="limit-setup",
            ),
            user_probe(do_enable, label="limit-enable"),
        ]

    def _read_point(self) -> List[Block]:
        runtime = self.runtime

        def do_rdpmc(kernel: Kernel, task: Task):
            # Pure user-space rdpmc loop — no syscall, no kernel time.
            snapshot = runtime.require_gate().snapshot()
            runtime.samples.append(
                Sample(timestamp=kernel.now, values=snapshot)
            )
            runtime.read_points += 1
            return snapshot

        def do_log(kernel: Kernel, task: Task):
            kernel.charge_kernel_time(int(
                costs.LIMIT_LOG_KERNEL_NS * runtime.cost_factor
            ))
            return True

        return [
            # The rdpmc + overflow-check sequence per event.
            RateBlock(
                instructions=costs.LIMIT_USER_INSTRUCTIONS_PER_READ
                * len(runtime.events),
                rates={"LOADS": 0.35, "STORES": 0.25, "BRANCHES": 0.1},
                label="limit-rdpmc",
            ),
            user_probe(do_rdpmc, label="limit-read"),
            SyscallBlock("write", handler=do_log, label="limit-log"),
        ]

    def _epilogue(self) -> List[Block]:
        runtime = self.runtime

        def do_stop(kernel: Kernel, task: Task):
            gate = runtime.require_gate()
            gate.disarm()
            runtime.totals = {
                name: float(value)
                for name, value in (gate.final_snapshot or {}).items()
            }
            return runtime.totals

        return [user_probe(do_stop, label="limit-stop")]


class LimitSession(Session):
    def __init__(self, kernel: Kernel, victim: Task,
                 runtime: _LimitRuntime, period_ns: int) -> None:
        self.kernel = kernel
        self.victim = victim
        self.runtime = runtime
        self.period_ns = period_ns

    def finalize(self) -> ToolReport:
        self.runtime.require_gate().detach()
        return ToolReport(
            tool="limit",
            events=list(self.runtime.events),
            period_ns=self.period_ns,
            samples=list(self.runtime.samples),
            totals=dict(self.runtime.totals),
            victim_wall_ns=self.victim.wall_time_ns or 0,
            victim_pid=self.victim.pid,
            metadata={"read_points": float(self.runtime.read_points)},
        )


class LimitTool(MonitoringTool):
    """LiMiT: precise event counting via a kernel patch."""

    name = "limit"
    requires_source = True
    required_patches = (LIMIT_PATCH,)
    # The instrumented program carries a mutable runtime (gate, cost
    # factor, samples) that attach() rebinds per trial.
    reusable_preparation = False
    # The patch only exists for this kernel line (paper §IV preamble:
    # "The LiMiT patch is running on Ubuntu 12.04 with 2.6.32").
    kernel_version = "2.6.32"

    def __init__(self, frequency_hint_hz: float = _DEFAULT_FREQUENCY_HZ) -> None:
        self.frequency_hint_hz = frequency_hint_hz

    def prepare_program(self, program: Program, events: Sequence[str],
                        period_ns: int) -> LimitInstrumentedProgram:
        interval = instrumentation_interval(
            program, period_ns, self.frequency_hint_hz
        )
        return LimitInstrumentedProgram(program, events, interval)

    def attach(self, kernel: Kernel, task: Task, events: Sequence[str],
               period_ns: int) -> LimitSession:
        program = task.program
        if not isinstance(program, LimitInstrumentedProgram):
            raise ToolError(
                "LiMiT requires the source: spawn the program returned by "
                "prepare_program()"
            )
        self.check_compatible(kernel, program)
        runtime = program.runtime
        runtime.gate = CounterGate(kernel, task, runtime.events,
                                   count_kernel=False, armed=False)
        cost_rng = kernel.rng.stream("tool-cost:limit")
        runtime.cost_factor = float(
            cost_rng.lognormal(0.0, costs.COST_SIGMA["limit"])
        )
        if task.state is TaskState.SLEEPING:
            kernel.start_task(task)
        return LimitSession(kernel, task, runtime, period_ns)
