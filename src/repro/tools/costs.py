"""Calibrated cost constants for the monitoring tools.

Every monitoring action in the simulation is *charged on the machine*
(kernel time, user instructions, syscalls), so tool overhead emerges
from mechanism.  The handful of constants below set the magnitude of
those mechanisms.  They were calibrated ONCE against the paper's
Tables II/III (triple-loop matmul ≈ 2 s and MKL dgemm ≈ 60 ms at a
10 ms sample rate):

==========  =========================  ==============================
tool        paper overhead (Tab. II)   paper overhead (Tab. III)
==========  =========================  ==============================
K-LEB       0.68 %                     1.13 %
perf stat   6.01 %                     7.64 %
perf record ≈1.65 % (58.8 % rel.)      2.00 %
PAPI        6.43 %                     21.40 %
LiMiT       4.08 %                     n/a (unsupported OS)
==========  =========================  ==============================

Fitting a fixed-startup + per-sample model ``F + n·c`` to each tool
pair of points gives the per-sample and startup costs used here.  The
*decomposition* of each per-sample cost into mechanism (user-side
logging vs kernel-side syscall service) follows each tool's design:

* K-LEB: tiny in-kernel timer handler; bulk of per-sample cost is the
  controller's batched user-space CSV logging — which runs in a
  *separate process* and therefore only competes for CPU.
* perf stat (interval mode): per-interval counter-read syscalls plus an
  expensive formatted interval print.
* perf record: per-sample record append plus amortized buffer flushes.
* PAPI: per-point read **syscalls** (its famous cost) plus per-point
  logging, all inside the victim; plus a large one-time
  ``PAPI_library_init`` — the reason Table III explodes to 21.4 %.
* LiMiT: counter reads are free-ish (user-space ``rdpmc``), so only
  the per-point logging remains — which is exactly why it beats PAPI
  by the syscall margin and no more.

Everything else in the reproduction (Table I, Figs. 4-9, crossover
behaviour, rate sweeps) is *not* calibrated — it must emerge.
"""

from __future__ import annotations

from repro.sim.clock import ms, us

# ---------------------------------------------------------------------------
# K-LEB
# ---------------------------------------------------------------------------
# In-kernel HRTimer handler: read 7 counters, write one buffer row.
KLEB_HANDLER_NS = us(3)
# Kernel-side copy per sample when the controller drains the buffer.
KLEB_DRAIN_COPY_NS_PER_SAMPLE = 500
# User-space CSV formatting/log work in the controller, per sample
# (buffered writes, so the file-system cost is amortized).
KLEB_LOG_USER_INSTRUCTIONS_PER_SAMPLE = 155_000.0
# Module init + ioctl configuration path (one-time, before the victim
# starts — does not count against its runtime).
KLEB_SETUP_NS = us(400)
# Lazy first-fire work inside the victim's lifetime: buffer page
# faults, module-path icache/dcache warmup (one-time per start).
KLEB_FIRST_FIRE_NS = us(400)
# Controller drains every this-many sample periods (at least one jiffy).
KLEB_DRAIN_EVERY_PERIODS = 8
# Multiplexing rotation from the HRTimer handler: reprogram up to four
# event-select registers, zero the counters, clear overflow status.
KLEB_ROTATE_NS = us(2)
# A skipped fire on the sample-dropping ladder rung: the handler still
# enters, checks the skip counter, and returns without touching the
# PMU or the buffer.
KLEB_SKIP_FIRE_NS = 500
# Adapt ioctl service: validate the request, retune the HRTimer, and
# update the module's skip/rotation knobs.
KLEB_ADAPT_NS = us(1)

# ---------------------------------------------------------------------------
# perf
# ---------------------------------------------------------------------------
# perf stat -I interval mode: per-interval formatted print (stderr,
# unbuffered, localized number formatting) plus per-event read syscalls.
PERF_STAT_INTERVAL_PRINT_NS = us(600)
PERF_STAT_READ_NS_PER_EVENT = us(30)
PERF_STAT_SETUP_NS = ms(1.5)
# Lazy work on the first interval (event-group finalization, page
# faults on the mmap'd rings) — lands inside the victim's lifetime.
PERF_STAT_FIRST_INTERVAL_NS = ms(1.6)
# perf record: per-sample record construction + amortized mmap flush.
PERF_RECORD_SAMPLE_NS = us(150)
PERF_RECORD_SETUP_NS = us(700)
# perf's user-space timer cannot beat the jiffy (10 ms) — enforced by
# the kernel's sleep path, but perf also refuses shorter requests.
PERF_MIN_PERIOD_NS = ms(10)

# ---------------------------------------------------------------------------
# PAPI
# ---------------------------------------------------------------------------
# PAPI_library_init + component discovery + event set construction.
PAPI_INIT_NS = ms(15.8)
# Per read point: one read syscall per event (kernel side)...
PAPI_READ_SYSCALL_NS_PER_EVENT = us(35)
# ...plus per-point sample logging (fprintf + write) in kernel time...
PAPI_LOG_KERNEL_NS = us(400)
# ...plus a little user-side bookkeeping (counted by user-mode counters
# — the source of PAPI's small positive count deviation in Fig. 9).
PAPI_USER_INSTRUCTIONS_PER_POINT = 2_000.0

# ---------------------------------------------------------------------------
# LiMiT
# ---------------------------------------------------------------------------
# Counter read via rdpmc with the overflow-check loop: pure user space,
# a few dozen instructions — LiMiT's whole point.
LIMIT_USER_INSTRUCTIONS_PER_READ = 200.0
# Per-point sample logging, same file path as PAPI's.
LIMIT_LOG_KERNEL_NS = us(320)
LIMIT_SETUP_NS = ms(1.0)

# ---------------------------------------------------------------------------
# Run-to-run variability of monitoring costs (Fig. 8 spread): each
# run draws a lognormal factor around 1 for its per-sample costs.
# Syscall-heavy paths traverse far more code and have more variance.
# ---------------------------------------------------------------------------
COST_SIGMA = {
    "k-leb": 0.04,
    "perf-stat": 0.22,
    "perf-record": 0.15,
    "papi": 0.20,
    "limit": 0.17,
}
