"""Performance-counter monitoring tools.

K-LEB (the paper's contribution) plus the baselines it is evaluated
against: perf stat, perf record, PAPI, and LiMiT.  Every tool runs on
the same simulated machine/kernel substrate and is charged for every
action it takes, so overhead comparisons are mechanism-driven.
"""

from repro.tools.base import (
    CounterGate,
    MonitoringTool,
    Sample,
    Session,
    ToolReport,
)
from repro.tools.dbi import DbiTool
from repro.tools.kleb import KLebTool, KLebModule, KLebModuleConfig
from repro.tools.limit import LimitTool, LIMIT_PATCH
from repro.tools.null import NullTool
from repro.tools.papi import PapiTool
from repro.tools.perf import PerfRecordTool, PerfStatTool
from repro.tools.registry import available_tools, create_tool

__all__ = [
    "CounterGate",
    "MonitoringTool",
    "Sample",
    "Session",
    "ToolReport",
    "DbiTool",
    "KLebTool",
    "KLebModule",
    "KLebModuleConfig",
    "LimitTool",
    "LIMIT_PATCH",
    "NullTool",
    "PapiTool",
    "PerfRecordTool",
    "PerfStatTool",
    "available_tools",
    "create_tool",
]
