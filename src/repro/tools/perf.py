"""perf analogues: ``perf stat`` (interval counting) and ``perf record``
(sampling).

Mechanisms modelled (paper §II-B/C, §V):

* **perf stat -I** wakes on a *user-space* timer — floored at the jiffy
  (10 ms) — and on every interval issues one read syscall per event
  plus an expensive formatted interval print.  With more events than
  programmable counters it time-multiplexes groups and scales the
  counts (``count × time_total / time_running``), trading accuracy for
  coverage.
* **perf record** samples in kernel interrupt context (cheap per
  sample, no interval print), but reports *estimated* counts
  reconstructed from its sample file — it loses the tail between the
  last sample and process exit, the source of its small count
  deviation in Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import ToolError
from repro.hw.pmu import NUM_PROGRAMMABLE
from repro.kernel.hrtimer import HrTimer
from repro.kernel.kernel import Kernel
from repro.kernel.kprobes import ProbePoint
from repro.kernel.process import Task, TaskState
from repro.sim.clock import seconds
from repro.tools import costs
from repro.tools.base import (
    CounterGate,
    MonitoringTool,
    Sample,
    Session,
    ToolReport,
)
from repro.workloads.base import Block, Program, RateBlock, SyscallBlock


def _ns_to_instructions(kernel: Kernel, duration_ns: float) -> float:
    """User-space work equivalent of ``duration_ns`` at CPI 1."""
    return kernel.machine.core.ns_to_cycles(duration_ns)


# ---------------------------------------------------------------------------
# perf stat
# ---------------------------------------------------------------------------
@dataclass
class _PerfStatState:
    samples: List[Sample] = field(default_factory=list)
    totals: Dict[str, float] = field(default_factory=dict)
    intervals: int = 0
    done: bool = False


class _PerfStatProgram(Program):
    """The perf process: launch child, tick every interval, read, print.

    With ``interval_mode=False`` this is plain ``perf stat`` counting
    mode: sleep until the child exits, read once — overall statistics
    only, no time series, minimal overhead (paper §II-B).
    """

    def __init__(self, kernel: Kernel, gate: CounterGate, victim: Task,
                 events: Sequence[str], period_ns: int,
                 state: _PerfStatState, cost_factor: float,
                 multiplexer: Optional["_Multiplexer"],
                 interval_mode: bool = True) -> None:
        self.name = "perf-stat"
        self._kernel = kernel
        self._gate = gate
        self._victim = victim
        self._events = list(events)
        self._period_ns = period_ns
        self._state = state
        self._cost_factor = cost_factor
        self._multiplexer = multiplexer
        self._interval_mode = interval_mode

    def blocks(self) -> Iterator[Block]:
        kernel = self._kernel
        state = self._state
        # fork/exec of the monitored command + event parsing + mmap setup.
        yield RateBlock(
            instructions=_ns_to_instructions(kernel, costs.PERF_STAT_SETUP_NS),
            rates={"LOADS": 0.3, "STORES": 0.2, "BRANCHES": 0.15},
            label="perf-setup",
        )

        def do_enable(kernel_, task):
            if self._victim.state is TaskState.SLEEPING:
                kernel_.start_task(self._victim)
            return True

        yield SyscallBlock("ioctl", handler=do_enable, label="enable-on-exec")

        if not self._interval_mode:
            # Counting mode: wait for the child, then one final read.
            while self._gate.final_snapshot is None:
                yield SyscallBlock(
                    "nanosleep",
                    handler=lambda kernel_, task: kernel_.sleep_current(
                        self._period_ns
                    ),
                    label="waitpid-sleep",
                )

        read_holder: Dict[str, Dict[str, int]] = {}
        while self._interval_mode:
            yield SyscallBlock(
                "nanosleep",
                handler=lambda kernel_, task: kernel_.sleep_current(
                    self._period_ns
                ),
                label="interval-sleep",
            )

            def do_reads(kernel_, task):
                if state.intervals == 0:
                    kernel_.charge_kernel_time(
                        costs.PERF_STAT_FIRST_INTERVAL_NS
                    )
                kernel_.charge_kernel_time(int(
                    len(self._events)
                    * costs.PERF_STAT_READ_NS_PER_EVENT
                    * self._cost_factor
                ))
                if self._multiplexer is not None:
                    snapshot = self._multiplexer.tick()
                else:
                    snapshot = self._gate.snapshot()
                read_holder["snap"] = snapshot
                return snapshot

            yield SyscallBlock("read", handler=do_reads, label="interval-read")
            snapshot = read_holder.pop("snap", {})
            state.samples.append(
                Sample(timestamp=kernel.now, values=dict(snapshot))
            )
            state.intervals += 1
            # Formatted interval print (stderr).
            yield RateBlock(
                instructions=_ns_to_instructions(
                    kernel,
                    costs.PERF_STAT_INTERVAL_PRINT_NS * self._cost_factor,
                ),
                rates={"LOADS": 0.35, "STORES": 0.25, "BRANCHES": 0.14},
                label="interval-print",
            )
            yield SyscallBlock("write", label="interval-write")
            if self._gate.final_snapshot is not None:
                break

        def do_final(kernel_, task):
            if self._multiplexer is not None:
                state.totals = self._multiplexer.finalize()
            else:
                state.totals = {
                    name: float(value)
                    for name, value in self._gate.totals().items()
                }
            state.done = True
            return state.totals

        yield SyscallBlock("read", handler=do_final, label="final-read")


class _Multiplexer:
    """Time-multiplexing of event groups over the programmable counters.

    Rotates one group per interval tick; reported counts are scaled by
    ``time_total / time_running`` exactly as perf does, which is where
    the estimation error comes from.
    """

    def __init__(self, kernel: Kernel, gate: CounterGate, victim: Task,
                 events: Sequence[str]) -> None:
        self.kernel = kernel
        self.gate = gate
        self.victim = victim
        self.groups: List[List[str]] = [
            list(events[start:start + NUM_PROGRAMMABLE])
            for start in range(0, len(events), NUM_PROGRAMMABLE)
        ]
        self.active = 0
        self.raw: Dict[str, float] = {name: 0.0 for name in events}
        self.enabled_cpu: Dict[int, float] = {
            index: 0.0 for index in range(len(self.groups))
        }
        self._group_start_cpu = float(victim.cpu_time_ns)
        self._fixed_events = ("INST_RETIRED", "CORE_CYCLES", "REF_CYCLES")
        self._program_group(self.active)

    def _program_group(self, index: int) -> None:
        pmu = self.kernel.pmu
        was_counting = self.gate.counting
        if was_counting:
            pmu.global_disable()
        for slot in range(NUM_PROGRAMMABLE):
            group = self.groups[index]
            if slot < len(group):
                pmu.program_counter(slot, group[slot], user=True,
                                    kernel=self.gate.count_kernel)
            else:
                pmu.wrmsr(0x186 + slot, 0)  # disable unused slot
        if was_counting:
            pmu.global_enable()

    def tick(self) -> Dict[str, int]:
        """Harvest the active group's deltas and rotate."""
        snapshot = self.kernel.pmu.snapshot(self.kernel.now).by_event
        for name in self.groups[self.active]:
            self.raw[name] += snapshot.get(name, 0)
        cpu_now = float(self.victim.cpu_time_ns)
        self.enabled_cpu[self.active] += cpu_now - self._group_start_cpu
        self._group_start_cpu = cpu_now
        # Zero the programmable counters for the next group's window.
        for slot in range(NUM_PROGRAMMABLE):
            self.kernel.pmu.wrmsr(0x0C1 + slot, 0)
        self.active = (self.active + 1) % len(self.groups)
        self._program_group(self.active)
        visible = {name: snapshot.get(name, 0)
                   for name in self.groups[self.active - 1]}
        for name in self._fixed_events:
            visible[name] = snapshot.get(name, 0)
        return visible

    def finalize(self) -> Dict[str, float]:
        """Scaled estimates: ``raw × time_total / time_running``."""
        self.tick()  # harvest the final window
        total_cpu = float(self.victim.cpu_time_ns)
        totals: Dict[str, float] = {}
        snapshot = self.kernel.pmu.snapshot(self.kernel.now).by_event
        for name in self._fixed_events:
            totals[name] = float(snapshot.get(name, 0))
        for index, group in enumerate(self.groups):
            running = self.enabled_cpu[index]
            scale = (total_cpu / running) if running > 0 else 0.0
            for name in group:
                totals[name] = self.raw[name] * scale
        return totals


class PerfStatSession(Session):
    def __init__(self, kernel: Kernel, victim: Task, controller: Task,
                 gate: CounterGate, state: _PerfStatState,
                 events: Sequence[str], period_ns: int,
                 multiplexed: bool) -> None:
        self.kernel = kernel
        self.victim = victim
        self.controller = controller
        self.gate = gate
        self.state = state
        self.events = list(events)
        self.period_ns = period_ns
        self.multiplexed = multiplexed

    def finalize(self) -> ToolReport:
        if self.controller.state is not TaskState.EXITED:
            self.kernel.run_until_exit(
                self.controller, deadline=self.kernel.now + seconds(10)
            )
        self.gate.detach()
        return ToolReport(
            tool="perf-stat",
            events=self.events,
            period_ns=self.period_ns,
            samples=list(self.state.samples),
            totals=dict(self.state.totals),
            victim_wall_ns=self.victim.wall_time_ns or 0,
            victim_pid=self.victim.pid,
            metadata={
                "intervals": float(self.state.intervals),
                "multiplexed": 1.0 if self.multiplexed else 0.0,
            },
        )


class PerfStatTool(MonitoringTool):
    """``perf stat`` — counting on a user-space timer.

    ``interval_mode=True`` (the default, ``perf stat -I``) produces the
    periodic series the paper compares against; ``interval_mode=False``
    is plain counting mode: overall statistics at exit only.
    """

    name = "perf-stat"
    min_period_ns = costs.PERF_MIN_PERIOD_NS

    def __init__(self, interval_mode: bool = True) -> None:
        self.interval_mode = interval_mode

    def attach(self, kernel: Kernel, task: Task, events: Sequence[str],
               period_ns: int) -> PerfStatSession:
        period_ns = self.effective_period(period_ns)
        multiplexed = len(events) > NUM_PROGRAMMABLE
        gate = CounterGate(kernel, task,
                           list(events)[:NUM_PROGRAMMABLE],
                           count_kernel=False)
        state = _PerfStatState()
        cost_rng = kernel.rng.stream("tool-cost:perf-stat")
        cost_factor = float(cost_rng.lognormal(0.0,
                                               costs.COST_SIGMA["perf-stat"]))
        multiplexer = (
            _Multiplexer(kernel, gate, task, events) if multiplexed else None
        )
        controller = kernel.spawn(_PerfStatProgram(
            kernel=kernel, gate=gate, victim=task, events=events,
            period_ns=period_ns, state=state, cost_factor=cost_factor,
            multiplexer=multiplexer, interval_mode=self.interval_mode,
        ))
        return PerfStatSession(
            kernel=kernel, victim=task, controller=controller, gate=gate,
            state=state, events=events, period_ns=period_ns,
            multiplexed=multiplexed,
        )


# ---------------------------------------------------------------------------
# perf record
# ---------------------------------------------------------------------------
class PerfRecordSession(Session):
    """Kernel-interrupt sampling attached to the victim's run state.

    Two sampling triggers, both real perf modes:

    * ``timer`` — a kernel timer fires every ``period_ns`` while the
      victim runs (the mode the paper's 10 ms comparison uses);
    * ``event`` — counter-overflow PMIs: the sampled event's counter is
      preset to wrap after ``event_period`` occurrences, so sampling
      density follows program *activity* rather than wall time.  Totals
      for the sampled event are reconstructed as
      ``samples x event_period`` — the classic perf estimate.
    """

    _WRAP = 1 << 48

    def __init__(self, kernel: Kernel, victim: Task, events: Sequence[str],
                 period_ns: int, cost_factor: float,
                 mode: str = "timer", event_period: int = 0) -> None:
        self.kernel = kernel
        self.victim = victim
        self.events = list(events)
        self.period_ns = period_ns
        self.cost_factor = cost_factor
        self.mode = mode
        self.event_period = event_period
        self.samples: List[Sample] = []
        self.pmi_count = 0
        self.gate = CounterGate(kernel, victim, self.events,
                                count_kernel=False)
        self.timer = HrTimer(kernel, self._sample_fire, label="perf-record")
        if mode == "event":
            # Re-program the sampled event's counter with overflow
            # interrupts and preset it one period below the wrap.
            kernel.pmu.program_counter(0, self.events[0], user=True,
                                       kernel=False,
                                       interrupt_on_overflow=True)
            self._preset_counter()
            kernel.pmu.set_overflow_handler(self._pmi)
        probes = kernel.kprobes
        self._handles = [
            probes.register(ProbePoint.SCHED_SWITCH_IN, self._switch_in),
            probes.register(ProbePoint.SCHED_SWITCH_OUT, self._switch_out),
            probes.register(ProbePoint.PROCESS_EXIT, self._exit),
        ]

    def _preset_counter(self) -> None:
        from repro.hw.msr import MSR

        self.kernel.pmu.wrmsr(MSR.IA32_PMC0, self._WRAP - self.event_period)

    # -- probe handlers ------------------------------------------------
    def _switch_in(self, task: Task) -> None:
        if self.mode == "timer" and task.pid in self.gate.traced_pids:
            self.timer.start(self.period_ns)

    def _switch_out(self, task: Task) -> None:
        if self.mode == "timer" and task.pid in self.gate.traced_pids:
            self.timer.cancel()

    def _exit(self, task: Task) -> None:
        if task.pid == self.victim.pid:
            self.timer.cancel()

    def _record_sample(self) -> None:
        self.kernel.charge_kernel_time(int(
            costs.PERF_RECORD_SAMPLE_NS * self.cost_factor
        ))
        snapshot = self.kernel.pmu.snapshot(self.kernel.now)
        self.samples.append(
            Sample(timestamp=self.kernel.now, values=dict(snapshot.by_event))
        )

    def _sample_fire(self, when: int) -> None:
        self._record_sample()

    def _pmi(self, indices: List[int]) -> None:
        """Overflow interrupt.  As real perf does, the handler re-arms
        the counter to ``-period``.  Delivery happens at execution-slice
        granularity (interrupt skid): when one slice crosses several
        periods, the handler reads how far past the wrap the counter
        ran and emits one sample per elapsed period, so period-based
        count reconstruction stays accurate."""
        from repro.hw.msr import MSR

        if 0 not in indices:
            return
        leftover = self.kernel.pmu.rdmsr(MSR.IA32_PMC0)
        elapsed_periods = 1 + int(leftover // self.event_period)
        for _ in range(elapsed_periods):
            self.pmi_count += 1
            self._record_sample()
        self.kernel.pmu.wrmsr(
            MSR.IA32_PMC0,
            self._WRAP - self.event_period
            + int(leftover % self.event_period),
        )

    def finalize(self) -> ToolReport:
        for handle in self._handles:
            self.kernel.kprobes.unregister(handle)
        self.timer.cancel()
        if self.mode == "event":
            self.kernel.pmu.set_overflow_handler(None)
        # perf record reconstructs totals from its sample file: the
        # counts after the final sample are lost (Fig. 9's deviation).
        totals: Dict[str, float] = {}
        if self.samples:
            totals = {
                name: float(value)
                for name, value in self.samples[-1].values.items()
            }
        if self.mode == "event":
            # The sampled event's raw counter cycles through presets;
            # its total is the period-based estimate.
            totals[self.events[0]] = float(self.pmi_count * self.event_period)
        self.gate.detach()
        return ToolReport(
            tool="perf-record",
            events=self.events,
            period_ns=self.period_ns,
            samples=list(self.samples),
            totals=totals,
            victim_wall_ns=self.victim.wall_time_ns or 0,
            victim_pid=self.victim.pid,
            metadata={
                "timer_fires": float(self.timer.fires),
                "pmi_count": float(self.pmi_count),
                "event_mode": 1.0 if self.mode == "event" else 0.0,
            },
        )


class PerfRecordTool(MonitoringTool):
    """``perf record`` — sampling mode (timer- or event-period driven)."""

    name = "perf-record"
    min_period_ns = costs.PERF_MIN_PERIOD_NS

    def __init__(self, mode: str = "timer",
                 event_period: int = 2_000_000) -> None:
        if mode not in ("timer", "event"):
            raise ToolError(f"unknown perf record mode {mode!r}")
        if mode == "event" and event_period <= 0:
            raise ToolError("event period must be positive")
        self.mode = mode
        self.event_period = event_period

    def attach(self, kernel: Kernel, task: Task, events: Sequence[str],
               period_ns: int) -> PerfRecordSession:
        if len(events) > NUM_PROGRAMMABLE:
            raise ToolError("perf record model does not multiplex")
        if not events:
            raise ToolError("perf record needs at least one event")
        period_ns = self.effective_period(period_ns)
        cost_rng = kernel.rng.stream("tool-cost:perf-record")
        cost_factor = float(
            cost_rng.lognormal(0.0, costs.COST_SIGMA["perf-record"])
        )
        kernel.charge_kernel_time(costs.PERF_RECORD_SETUP_NS)
        session = PerfRecordSession(kernel, task, events, period_ns,
                                    cost_factor, mode=self.mode,
                                    event_period=self.event_period)
        if task.state is TaskState.SLEEPING:
            kernel.start_task(task)
        return session
