"""Monitoring tool interfaces and shared machinery.

A tool participates in a monitored run through two hooks:

* :meth:`MonitoringTool.prepare_program` — rewrite the victim program
  before it is spawned.  Only source-instrumentation tools (PAPI,
  LiMiT) use this; it is the "requires the source code" property the
  paper contrasts K-LEB against.
* :meth:`MonitoringTool.attach` — set up kernel-side machinery (load a
  module, spawn a controller task, register probes) around an
  already-spawned task.  Returns a :class:`Session`.

After the victim exits, the runner calls :meth:`Session.finalize`,
which may continue running the kernel (draining controller buffers)
and then produces a :class:`ToolReport`.

:class:`CounterGate` is the shared context-switch isolation machinery:
program the PMU for the requested events, enable counting only while a
traced task runs, and follow forks/exits.  K-LEB implements this with
its own kprobes inside the module; perf gets it from the kernel
perf-events subsystem — mechanically the same hooks, so they share the
implementation here.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence as _SequenceABC
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ToolError, ToolUnsupportedError
from repro.hw.pmu import NUM_PROGRAMMABLE
from repro.kernel.kernel import Kernel
from repro.kernel.kprobes import ProbePoint
from repro.kernel.process import Task
from repro.workloads.base import Program


@dataclass(frozen=True)
class Sample:
    """One periodic reading: cumulative counter values at a timestamp."""

    timestamp: int
    values: Dict[str, int]


class SampleColumns(_SequenceABC):
    """A sample series kept in struct-of-arrays form.

    Duck-types ``Sequence[Sample]`` — indexing materializes a
    :class:`Sample` on demand — while exposing the typed columns
    (``timestamps`` plus one ``array('q')`` per event in ``names``)
    directly, so columnar-aware consumers (CSV/JSON writers, the
    time-series resampler) never build a per-sample dict.  Built by the
    K-LEB session from the module's drained
    :class:`~repro.kernel.ringbuffer.ColumnBatch` objects.
    """

    __slots__ = ("names", "timestamps", "columns")

    def __init__(self, names: Sequence[str], timestamps: array,
                 columns: Sequence[array]) -> None:
        self.names: Tuple[str, ...] = tuple(names)
        self.timestamps = timestamps
        self.columns = list(columns)

    @classmethod
    def from_batches(cls, batches: Iterable) -> "SampleColumns":
        """Concatenate drained :class:`ColumnBatch` objects (one schema)."""
        batches = list(batches)
        names = batches[0].names
        timestamps = array("q")
        columns = [array("q") for _ in names]
        for batch in batches:
            if batch.names != names:
                raise ToolError(
                    "cannot concatenate column batches with different "
                    f"schemas: {names} vs {batch.names}"
                )
            timestamps.extend(batch.timestamps)
            for column, part in zip(columns, batch.columns):
                column.extend(part)
        return cls(names, timestamps, columns)

    def __len__(self) -> int:
        return len(self.timestamps)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        timestamp = self.timestamps[index]  # raises IndexError as a list would
        return Sample(
            timestamp=timestamp,
            values={name: column[index]
                    for name, column in zip(self.names, self.columns)},
        )

    def column(self, name: str) -> array:
        """The values of one event column (KeyError for unknown names)."""
        try:
            return self.columns[self.names.index(name)]
        except ValueError:
            raise KeyError(name) from None

    def __eq__(self, other):
        # Value equality, so reports survive dataclass comparison (the
        # parallel-vs-serial determinism gate) and pickling round-trips.
        if isinstance(other, SampleColumns):
            return (self.names == other.names
                    and self.timestamps == other.timestamps
                    and self.columns == other.columns)
        if isinstance(other, _SequenceABC) and not isinstance(
                other, (str, bytes)):
            return (len(self) == len(other)
                    and all(mine == theirs
                            for mine, theirs in zip(self, other)))
        return NotImplemented

    __hash__ = None


@dataclass
class ToolReport:
    """Everything a monitoring session produced."""

    tool: str
    events: List[str]
    period_ns: int
    # Either a plain list of Sample or a SampleColumns series — both
    # satisfy Sequence[Sample]; columnar-aware consumers fast-path on
    # isinstance(samples, SampleColumns).
    samples: Sequence[Sample]
    totals: Dict[str, float]
    victim_wall_ns: int
    victim_pid: int
    metadata: Dict[str, float] = field(default_factory=dict)
    # Closed-loop control ledger rows (adaptive K-LEB runs only);
    # ``None`` keeps non-adaptive reports byte-identical to the
    # pre-control format.
    control: Optional[List[Dict[str, object]]] = None

    @property
    def sample_count(self) -> int:
        return len(self.samples)


class Session:
    """A live monitoring session; produced by :meth:`MonitoringTool.attach`."""

    def finalize(self) -> ToolReport:
        """Stop monitoring, drain buffers, and build the report."""
        raise NotImplementedError


class MonitoringTool:
    """Base class for performance-counter collection tools."""

    name = "tool"
    requires_source = False           # PAPI/LiMiT: must rewrite the program
    required_patches: Sequence[str] = ()   # LiMiT: kernel patch
    kernel_version: Optional[str] = None   # pin to a specific kernel release
    min_period_ns: int = 0            # sampling-rate floor (perf: 10 ms)
    # Whether prepare_program's result may be reused across trials of
    # the same (program, events, period).  Instrumentation tools whose
    # prepared program embeds a mutable per-trial runtime set this
    # False; the runner then re-prepares every trial.
    reusable_preparation = True

    def check_compatible(self, kernel: Kernel, program: Program) -> None:
        """Raise :class:`ToolUnsupportedError` if this pairing cannot run."""
        for patch in self.required_patches:
            if patch not in kernel.patches:
                raise ToolUnsupportedError(
                    f"{self.name} requires kernel patch {patch!r}; "
                    "this kernel is unpatched"
                )
        min_major = program.metadata.get("min_kernel_major")
        if min_major is not None:
            running = kernel.config.kernel_version
            major = int(running.split(".", 1)[0])
            if major < int(min_major):
                raise ToolUnsupportedError(
                    f"{program.name} requires kernel >= {min_major:.0f}.x "
                    f"but {self.name} runs on {running}"
                )

    def effective_period(self, period_ns: int) -> int:
        """Clamp a requested period to the tool's floor."""
        return max(period_ns, self.min_period_ns)

    def prepare_program(self, program: Program, events: Sequence[str],
                        period_ns: int) -> Program:
        """Rewrite the victim before spawn (default: untouched)."""
        return program

    def attach(self, kernel: Kernel, task: Task, events: Sequence[str],
               period_ns: int) -> Session:
        """Set up monitoring around ``task``; return the session."""
        raise NotImplementedError


class CounterGate:
    """Per-task counter isolation via context-switch hooks.

    Programs the PMU for ``events`` and enables counting only while one
    of the traced tasks is on the CPU.  Forked children of traced tasks
    are traced too; the gate snapshots final totals when the root task
    exits.
    """

    def __init__(self, kernel: Kernel, root: Task, events: Sequence[str],
                 *, count_kernel: bool = False, armed: bool = True) -> None:
        if len(events) > NUM_PROGRAMMABLE:
            raise ToolError(
                f"{len(events)} events exceed the {NUM_PROGRAMMABLE} "
                "programmable counters; use multiplexing"
            )
        self.kernel = kernel
        self.root = root
        self.events = list(events)
        self.count_kernel = count_kernel
        self.traced_pids: Set[int] = {root.pid}
        self.counting = False
        # Disarmed gates track the task but do not count — used by
        # instrumentation tools whose start/stop calls live inside the
        # program (PAPI_start / PAPI_stop), so library initialization
        # is not counted.
        self.armed = armed
        self.final_snapshot: Optional[Dict[str, int]] = None
        self._handles = []
        pmu = kernel.pmu
        pmu.reset_counters()
        for index, event in enumerate(self.events):
            pmu.program_counter(index, event, user=True, kernel=count_kernel)
        pmu.enable_fixed(user=True, kernel=count_kernel)
        pmu.global_disable()
        probes = kernel.kprobes
        self._handles = [
            probes.register(ProbePoint.SCHED_SWITCH_IN, self._switch_in),
            probes.register(ProbePoint.SCHED_SWITCH_OUT, self._switch_out),
            probes.register(ProbePoint.PROCESS_FORK, self._fork),
            probes.register(ProbePoint.PROCESS_EXIT, self._exit),
        ]

    # -- probe handlers --------------------------------------------------
    def _switch_in(self, task: Task) -> None:
        if self.armed and task.pid in self.traced_pids:
            self.kernel.pmu.global_enable()
            self.counting = True

    def _switch_out(self, task: Task) -> None:
        if task.pid in self.traced_pids and self.counting:
            self.kernel.pmu.global_disable()
            self.counting = False

    def _fork(self, parent: Task, child: Task) -> None:
        if parent.pid in self.traced_pids:
            self.traced_pids.add(child.pid)

    def _exit(self, task: Task) -> None:
        if task.pid not in self.traced_pids:
            return
        if task.pid == self.root.pid:
            self.final_snapshot = dict(
                self.kernel.pmu.snapshot(self.kernel.now).by_event
            )
        self.traced_pids.discard(task.pid)

    # -- API ---------------------------------------------------------------
    def arm(self) -> None:
        """Start counting (PAPI_start): enables now if a traced task runs."""
        self.armed = True
        current = self.kernel.scheduler.current
        if current is not None and current.pid in self.traced_pids:
            self.kernel.pmu.global_enable()
            self.counting = True

    def disarm(self) -> None:
        """Stop counting (PAPI_stop) and record the final snapshot."""
        self.final_snapshot = self.snapshot()
        self.armed = False
        if self.counting:
            self.kernel.pmu.global_disable()
            self.counting = False

    def snapshot(self) -> Dict[str, int]:
        """Current cumulative counts for the traced task set."""
        return dict(self.kernel.pmu.snapshot(self.kernel.now).by_event)

    def totals(self) -> Dict[str, int]:
        """Final counts (at root exit if it exited, else live)."""
        if self.final_snapshot is not None:
            return dict(self.final_snapshot)
        return self.snapshot()

    def detach(self) -> None:
        """Unregister every probe and stop counting."""
        for handle in self._handles:
            self.kernel.kprobes.unregister(handle)
        self._handles = []
        self.kernel.pmu.global_disable()
