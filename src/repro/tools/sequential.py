"""Sequential-runs profiling: many events without multiplexing.

Paper §VI: the counter registers limit how many events one run can
monitor precisely.  "Normally this is solved by using sequential runs
for profiling (e.g., one run measures events A, B, C and D while the
next measures events W, X, Y and Z); however, this methodology proves
difficult when trying to perform online or runtime analysis."

This module implements that offline methodology as a first-class
helper: split the event list into counter-sized groups, run the program
once per group under any monitoring tool, and merge the totals.  The
result is *precise* for deterministic (architectural) events — unlike
perf's multiplexed estimates — at the cost of N complete executions,
which is exactly the trade-off the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ToolError
from repro.hw.machine import MachineConfig
from repro.hw.pmu import NUM_PROGRAMMABLE
from repro.experiments.runner import TrialSummary, run_monitored, summarize_trial
from repro.tools.base import MonitoringTool, ToolReport
from repro.workloads.base import Program

ToolFactory = Callable[[], MonitoringTool]


@dataclass
class SequentialProfile:
    """Merged result of one sequential profiling campaign."""

    tool: str
    events: List[str]
    totals: Dict[str, float]
    runs: List[TrialSummary] = field(default_factory=list)
    groups: List[List[str]] = field(default_factory=list)

    @property
    def total_wall_ns(self) -> int:
        """Aggregate machine time spent — the cost of precision."""
        return sum(run.wall_ns for run in self.runs)

    @property
    def run_count(self) -> int:
        return len(self.runs)


def profile_sequentially(program: Program, tool_factory: ToolFactory,
                         events: Sequence[str],
                         period_ns: int = 10_000_000,
                         seed: int = 0,
                         machine_config: Optional[MachineConfig] = None,
                         group_size: int = NUM_PROGRAMMABLE
                         ) -> SequentialProfile:
    """Monitor ``events`` over as many runs as the counters require.

    Each run uses a fresh tool from ``tool_factory`` and a fresh seeded
    system; fixed-counter events (INST_RETIRED, cycles) come from the
    first run.  Raises :class:`ToolError` for an empty event list or a
    non-positive group size.
    """
    if not events:
        raise ToolError("sequential profiling needs at least one event")
    if group_size <= 0 or group_size > NUM_PROGRAMMABLE:
        raise ToolError(
            f"group size must be in 1..{NUM_PROGRAMMABLE}, got {group_size}"
        )
    unique: List[str] = []
    for event in events:
        if event not in unique:
            unique.append(event)
    groups = [
        unique[start:start + group_size]
        for start in range(0, len(unique), group_size)
    ]
    totals: Dict[str, float] = {}
    runs: List[TrialSummary] = []
    for index, group in enumerate(groups):
        result = run_monitored(
            program, tool_factory(), events=group, period_ns=period_ns,
            seed=seed + index, machine_config=machine_config,
        )
        runs.append(summarize_trial(result, trial=index, seed=seed + index))
        for name, value in result.report.totals.items():
            if name in group or (index == 0 and name not in totals):
                totals[name] = value
    return SequentialProfile(
        tool=runs[0].report.tool,
        events=unique,
        totals=totals,
        runs=runs,
        groups=groups,
    )


def merged_report(profile: SequentialProfile,
                  period_ns: int) -> ToolReport:
    """Package a sequential campaign as a single ToolReport.

    Samples come from the first run (they cover the first event group
    only — the methodology's inherent gap for time series).
    """
    first = profile.runs[0].report
    return ToolReport(
        tool=f"{profile.tool}+sequential",
        events=list(profile.events),
        period_ns=period_ns,
        samples=list(first.samples),
        totals=dict(profile.totals),
        victim_wall_ns=first.victim_wall_ns,
        victim_pid=first.victim_pid,
        metadata={"sequential_runs": float(profile.run_count)},
    )
