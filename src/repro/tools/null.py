"""The no-profiling baseline ("No profiling" column of Table I)."""

from __future__ import annotations

from typing import Sequence

from repro.kernel.kernel import Kernel
from repro.kernel.process import Task, TaskState
from repro.tools.base import MonitoringTool, Session, ToolReport


class NullSession(Session):
    def __init__(self, victim: Task, events: Sequence[str],
                 period_ns: int) -> None:
        self.victim = victim
        self.events = list(events)
        self.period_ns = period_ns

    def finalize(self) -> ToolReport:
        return ToolReport(
            tool="none",
            events=self.events,
            period_ns=self.period_ns,
            samples=[],
            totals={},
            victim_wall_ns=self.victim.wall_time_ns or 0,
            victim_pid=self.victim.pid,
        )


class NullTool(MonitoringTool):
    """Runs the victim with no monitoring at all."""

    name = "none"

    def attach(self, kernel: Kernel, task: Task, events: Sequence[str],
               period_ns: int) -> NullSession:
        if task.state is TaskState.SLEEPING:
            kernel.start_task(task)
        return NullSession(task, events, period_ns)
