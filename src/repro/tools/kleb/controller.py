"""The K-LEB user-space controller process.

Responsibilities (paper Fig. 1, right half):

* configure the kernel module and select the monitored PID (``ioctl``);
* start/stop collection;
* periodically wake up, drain pooled samples from kernel memory with a
  batched ``read``, and log them to the file system from user space
  (kernel developers recommend against file I/O in kernel space — §III).

The controller's logging work is ordinary user-space execution on the
same machine, so its cost competes with the monitored program for CPU
time — this is where most of K-LEB's (small) overhead comes from.

Degradation/recovery behaviour (exercised by :mod:`repro.faults`):

* transient ``ioctl``/``read`` failures are retried with capped
  exponential backoff (``_BACKOFF_BASE_NS`` doubling up to
  ``_BACKOFF_CAP_NS``) before giving up;
* when a drain observes the module's safety stop (paused buffer) or
  fresh drops, the controller immediately issues recovery reads to
  free the pool, then *shortens* its drain interval — halving down to
  the jiffy floor — and only restores the nominal interval after a
  run of healthy cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.control import AdaptiveController, SensorReading
from repro.errors import TransientModuleError
from repro.kernel.ringbuffer import ColumnBatch
from repro.obs import hooks as _obs_hooks
from repro.sim.clock import ms
from repro.tools import costs
from repro.tools.base import Sample
from repro.tools.kleb.module import (KLebAdaptRequest, KLebModule,
                                     KLebModuleConfig)
from repro.workloads.base import Block, Program, RateBlock, SyscallBlock

_LOG_RATES = {"LOADS": 0.38, "STORES": 0.27, "BRANCHES": 0.12}

# Retry/backoff tunables for transient device failures.
_IOCTL_MAX_ATTEMPTS = 8
_READ_MAX_ATTEMPTS = 8
_BACKOFF_BASE_NS = ms(1)
_BACKOFF_CAP_NS = ms(64)

# Adaptive drain: healthy cycles required before stretching the
# shortened interval back toward nominal, and the cap on back-to-back
# recovery reads issued when a pause is observed.
_HEALTHY_CYCLES_TO_RESTORE = 4
_RECOVERY_READS_MAX = 8


def _backoff_ns(attempt: int) -> int:
    """Capped exponential backoff delay for retry ``attempt`` (0-based)."""
    return min(_BACKOFF_BASE_NS << attempt, _BACKOFF_CAP_NS)


@dataclass
class ControllerState:
    """Shared state between the controller program and the tool session."""

    samples: List[Sample] = field(default_factory=list)
    # Columnar sessions (non-multiplexed module) accumulate drained
    # ColumnBatch objects here instead of exploding them into Samples;
    # the session concatenates them into one SampleColumns at finalize.
    sample_batches: List[ColumnBatch] = field(default_factory=list)
    totals: Optional[Dict[str, int]] = None
    stop_requested: bool = False
    started: bool = False
    log_bytes: int = 0
    # Multiplexing accounting captured from the stop ioctl (None when
    # the run was not multiplexed): group count, rotations, and the
    # time_enabled / per-group time_running (CORE_CYCLES units) behind
    # the scaled totals.
    mux_accounting: Optional[Dict[str, object]] = None
    # Degradation/recovery accounting (all zero on a healthy run).
    ioctl_retries: int = 0
    read_retries: int = 0
    recovery_reads: int = 0
    drain_shrinks: int = 0
    drain_restores: int = 0
    starved_cycles: int = 0
    # Closed-loop adaptive control (None when --adapt is off).
    control: Optional[AdaptiveController] = None
    adapt_ioctls: int = 0
    sensor_glitches: int = 0
    frozen_observations: int = 0


class KLebControllerProgram(Program):
    """Block stream of the controller process.

    The program is a *generator*: each decision (how much to drain,
    when to stop) is made when the previous block finishes executing,
    interleaved with the rest of the simulated system — just like a
    real process.
    """

    def __init__(self, module: KLebModule, target_pid: int,
                 module_config: KLebModuleConfig, state: ControllerState,
                 cost_factor: float = 1.0,
                 start_target: bool = True,
                 adaptive: Optional[AdaptiveController] = None) -> None:
        self.name = "k-leb-controller"
        self.module = module
        self.target_pid = target_pid
        self.module_config = module_config
        self.state = state
        self.cost_factor = cost_factor
        self.start_target = start_target
        drain_every = costs.KLEB_DRAIN_EVERY_PERIODS * module_config.period_ns
        self.drain_interval_ns = max(drain_every, ms(10))
        self._adaptive = adaptive
        state.control = adaptive
        # Drain-batch cap while on the batch-shrunk ladder rung.
        self._drain_max_items: Optional[int] = None
        # The phase-change signal tracks the first requested event.
        self._signal_event = (module_config.resolved_events()[0]
                              if adaptive is not None else None)
        self._obs = _obs_hooks.active()

    # ------------------------------------------------------------------
    # Retryable syscall helpers
    # ------------------------------------------------------------------
    def _retrying_ioctl(self, call, label: str) -> Iterator[Block]:
        """Yield ``ioctl`` blocks for ``call`` until it sticks.

        Transient (injected) failures back off exponentially, capped;
        after ``_IOCTL_MAX_ATTEMPTS`` the last error propagates — at
        that point the device is persistently broken and the trial
        fails upward to the runner's quarantine logic.
        """
        state = self.state
        obs = self._obs
        outcome: Dict[str, object] = {}
        for attempt in range(_IOCTL_MAX_ATTEMPTS):
            def handler(kernel, task):
                try:
                    outcome["value"] = call(kernel, task)
                    outcome["ok"] = True
                except TransientModuleError as error:
                    outcome["ok"] = False
                    outcome["error"] = error
                return outcome["ok"]

            yield SyscallBlock("ioctl", handler=handler, label=label)
            if outcome.pop("ok", False):
                if attempt and obs is not None:
                    obs.fault_recovered(self.module.kernel.now, "ioctl")
                return
            state.ioctl_retries += 1
            if obs is not None:
                obs.controller_retry(self.module.kernel.now, "ioctl")
            if attempt == _IOCTL_MAX_ATTEMPTS - 1:
                raise outcome["error"]  # type: ignore[misc]
            delay = _backoff_ns(attempt)
            yield SyscallBlock(
                "nanosleep",
                handler=lambda kernel, task, d=delay: kernel.sleep_current(
                    d, high_resolution=True
                ),
                label=f"{label}-backoff",
            )

    def _read_and_log(self, holder: Dict[str, object]) -> Iterator[Block]:
        """One batched read (with retry/backoff) plus user-space logging.

        Fills ``holder`` with the drained batch size and the
        back-pressure observations the read syscall returns alongside
        the samples (paused flag, cumulative drop count).
        """
        module = self.module
        state = self.state
        obs = self._obs
        outcome: Dict[str, object] = {}
        for attempt in range(_READ_MAX_ATTEMPTS):
            def do_read(kernel, task):
                try:
                    buffer = module.buffer
                    # Observed *before* the drain: a full drain always
                    # lifts the safety stop, so the post-drain flag
                    # would hide every pause episode from user space.
                    paused = buffer.paused if buffer is not None else False
                    batch = module.read(self._drain_max_items)
                    outcome["batch"] = batch
                    outcome["paused"] = paused
                    outcome["dropped"] = (buffer.dropped
                                          if buffer is not None else 0)
                    if self._adaptive is not None:
                        self._capture_sensor(kernel, buffer, batch, outcome)
                    outcome["ok"] = True
                    return len(batch)
                except TransientModuleError as error:
                    outcome["ok"] = False
                    outcome["error"] = error
                    return -1

            yield SyscallBlock("read", handler=do_read, label="read-samples")
            if outcome.pop("ok", False):
                if attempt and obs is not None:
                    obs.fault_recovered(module.kernel.now, "read")
                break
            state.read_retries += 1
            if obs is not None:
                obs.controller_retry(module.kernel.now, "read")
            if attempt == _READ_MAX_ATTEMPTS - 1:
                raise outcome["error"]  # type: ignore[misc]
            delay = _backoff_ns(attempt)
            yield SyscallBlock(
                "nanosleep",
                handler=lambda kernel, task, d=delay: kernel.sleep_current(
                    d, high_resolution=True
                ),
                label="read-backoff",
            )
        batch = outcome.pop("batch", [])
        holder["batch_len"] = len(batch)
        holder["paused"] = outcome.pop("paused", False)
        holder["dropped"] = outcome.pop("dropped", 0)
        if self._adaptive is not None:
            holder["now"] = outcome.pop("now", module.kernel.now)
            holder["monitor_ns"] = outcome.pop("monitor_ns", 0)
            holder["pressure"] = outcome.pop("pressure", 0.0)
            holder["signal"] = outcome.pop("signal", None)
        if isinstance(batch, ColumnBatch):
            # Zero-copy hand-off: the drained columns are kept whole;
            # no per-sample dicts are ever built on this path.
            if len(batch):
                state.sample_batches.append(batch)
        else:
            state.samples.extend(batch)
        if batch:
            # CSV formatting in user space, then one buffered write.
            instructions = (
                len(batch)
                * costs.KLEB_LOG_USER_INSTRUCTIONS_PER_SAMPLE
                * self.cost_factor
            )
            state.log_bytes += len(batch) * 64
            yield RateBlock(instructions=instructions,
                            rates=dict(_LOG_RATES), cpi=1.0,
                            label="format-log")
            yield SyscallBlock("write", label="write-log")

    # ------------------------------------------------------------------
    # Adaptive control (closed loop over the drain cycle)
    # ------------------------------------------------------------------
    def _capture_sensor(self, kernel, buffer, batch, outcome) -> None:
        """Everything the closed loop observes, captured inside the
        read syscall so the observation is one consistent snapshot."""
        stats = self.module.stats
        outcome["now"] = kernel.now
        # The Table II/III monitoring-cost decomposition: handler time
        # plus drain copy_to_user plus multiplex rotation, cumulative.
        outcome["monitor_ns"] = (stats.handler_time_ns
                                 + stats.drain_copy_ns + stats.rotate_ns)
        if buffer is not None and buffer.capacity > 0:
            outcome["pressure"] = (buffer.take_high_watermark()
                                   / buffer.capacity)
        else:
            outcome["pressure"] = 0.0
        signal = None
        if len(batch) >= 2:
            if isinstance(batch, ColumnBatch):
                timestamps = batch.timestamps
                span = timestamps[-1] - timestamps[0]
                if span > 0:
                    try:
                        column = batch.column(self._signal_event)
                        first, last = column[0], column[-1]
                    except KeyError:
                        first = last = 0
                    signal = (last - first) / span * 1000.0
            else:
                span = batch[-1].timestamp - batch[0].timestamp
                if span > 0:
                    first = batch[0].values.get(self._signal_event, 0)
                    last = batch[-1].values.get(self._signal_event, 0)
                    # Per-microsecond rate: spacing-independent, so the
                    # tracker survives its own period changes.
                    signal = (last - first) / span * 1000.0
        outcome["signal"] = signal

    def _adaptive_step(self, holder: Dict[str, object],
                       interval_ns: int) -> Iterator[Block]:
        """Run one closed-loop decision; returns the new drain interval.

        Control faults land here: a frozen decision window skips the
        observation entirely, a sensor glitch discards the reading —
        either way the loop's EWMAs never see garbage.  When a decision
        changes the module's knobs, the adapt ioctl carries *absolute*
        targets computed exactly once, so the transient-failure retry
        path re-applies the same request instead of compounding a
        relative step (the double-shrink bug this design exists for).
        """
        ctrl = self._adaptive
        assert ctrl is not None
        module = self.module
        state = self.state
        obs = self._obs
        now = int(holder.get("now", module.kernel.now))
        faults = module.kernel.faults
        if faults.control_frozen(now):
            state.frozen_observations += 1
            if obs is not None:
                obs.control_frozen(now)
            return interval_ns
        if faults.control_sensor_glitch(now):
            state.sensor_glitches += 1
            return interval_ns
        reading = SensorReading(
            now_ns=now,
            monitor_ns=int(holder.get("monitor_ns", 0)),
            signal=holder.get("signal"),  # type: ignore[arg-type]
            pressure=float(holder.get("pressure", 0.0)),
            dropped=int(holder.get("dropped", 0)),
            paused=bool(holder.get("paused", False)),
        )
        decision = ctrl.observe(reading)
        if obs is not None:
            obs.control_observation(
                now, decision.overhead_percent, decision.level,
                budget_percent=ctrl.config.overhead_budget_percent)
            if decision.action is not None:
                obs.control_step(now, decision.action, decision.level,
                                 decision.period_ns)
        self._drain_max_items = decision.drain_max_items
        if decision.changed:
            request = KLebAdaptRequest(
                period_ns=decision.period_ns,
                skip_factor=decision.skip_factor,
                rotate_slowdown=decision.rotate_slowdown,
            )
            yield from self._retrying_ioctl(
                lambda kernel, task: module.ioctl("adapt", request),
                label="ioctl-adapt",
            )
            state.adapt_ioctls += 1
        # Retarget the nominal drain interval to track the active
        # period (same drain-every-N-periods policy as construction).
        # A pressure-shortened interval is preserved — only capped, so
        # the shrink/restore machinery keeps working against the new
        # nominal.
        was_nominal = interval_ns >= self.drain_interval_ns
        target = max(ms(10),
                     costs.KLEB_DRAIN_EVERY_PERIODS * decision.period_ns)
        self.drain_interval_ns = target
        return target if was_nominal else min(interval_ns, target)

    # ------------------------------------------------------------------
    # The program
    # ------------------------------------------------------------------
    def blocks(self) -> Iterator[Block]:
        module = self.module
        state = self.state
        obs = self._obs

        yield from self._retrying_ioctl(
            lambda kernel, task: module.ioctl("config", self.module_config),
            label="ioctl-config",
        )

        def do_start(kernel, task):
            module.ioctl("start", self.target_pid)
            if self.start_target:
                kernel.start_task(kernel.task(self.target_pid))
            state.started = True
            return True

        yield from self._retrying_ioctl(do_start, label="ioctl-start")

        interval_ns = self.drain_interval_ns
        floor_ns = max(ms(10), 2 * self.module_config.period_ns)
        healthy_cycles = 0
        last_dropped = 0
        holder: Dict[str, object] = {}
        while True:
            starve = module.kernel.faults.starve_factor(module.kernel.now)
            if starve > 1.0:
                state.starved_cycles += 1
            sleep_ns = int(interval_ns * starve)
            yield SyscallBlock(
                "nanosleep",
                handler=lambda kernel, task, d=sleep_ns: kernel.sleep_current(
                    d
                ),
                label="sleep-drain",
            )

            cycle_start = module.kernel.now
            yield from self._read_and_log(holder)
            paused = bool(holder.get("paused", False))
            dropped = int(holder.get("dropped", 0))
            if obs is not None:
                # The drain-cycle span covers read + format + log write
                # (generator resumption times are simulated block
                # completion times).
                obs.drain_cycle(cycle_start, module.kernel.now,
                                int(holder.get("batch_len", 0)),
                                paused, interval_ns)

            if paused or dropped > last_dropped:
                # The safety stop engaged (or fresh drops) since the
                # last look: instead of sleeping through another full
                # (possibly starved) window, drain again on a short
                # high-resolution nap until the pressure clears...
                recovery = 0
                while recovery < _RECOVERY_READS_MAX:
                    recovery += 1
                    state.recovery_reads += 1
                    if obs is not None:
                        obs.controller_retry(module.kernel.now,
                                             "recovery-read")
                    nap_ns = floor_ns // 2
                    yield SyscallBlock(
                        "nanosleep",
                        handler=lambda kernel, task, d=nap_ns:
                            kernel.sleep_current(d, high_resolution=True),
                        label="recovery-nap",
                    )
                    yield from self._read_and_log(holder)
                    grown = int(holder.get("dropped", 0)) > dropped
                    dropped = int(holder.get("dropped", 0))
                    if not (bool(holder.get("paused", False)) or grown):
                        break
                # ...and drain more often until the pressure clears.
                shortened = max(floor_ns, interval_ns // 2)
                if shortened < interval_ns:
                    interval_ns = shortened
                    state.drain_shrinks += 1
                    if obs is not None:
                        obs.drain_shrunk(module.kernel.now, interval_ns)
                healthy_cycles = 0
                last_dropped = dropped
            else:
                healthy_cycles += 1
                if (healthy_cycles >= _HEALTHY_CYCLES_TO_RESTORE
                        and interval_ns < self.drain_interval_ns):
                    interval_ns = min(self.drain_interval_ns,
                                      interval_ns * 2)
                    state.drain_restores += 1
                    if obs is not None:
                        obs.drain_restored(module.kernel.now, interval_ns)
                    healthy_cycles = 0

            if self._adaptive is not None:
                interval_ns = yield from self._adaptive_step(holder,
                                                             interval_ns)

            if state.stop_requested and not module.collecting \
                    and module.pending_samples == 0:
                break

        def do_stop(kernel, task):
            if module.collecting:
                module.ioctl("stop")
            state.totals = dict(module.final_totals or {})
            mux = module.mux
            if mux is not None:
                state.mux_accounting = {
                    "groups": len(mux.plan.groups),
                    "rotations": mux.rotations,
                    "time_enabled_cycles": mux.enabled_cycles,
                    "time_running_cycles": list(mux.running_cycles),
                }
            return state.totals

        yield from self._retrying_ioctl(do_stop, label="ioctl-stop")
