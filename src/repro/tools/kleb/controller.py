"""The K-LEB user-space controller process.

Responsibilities (paper Fig. 1, right half):

* configure the kernel module and select the monitored PID (``ioctl``);
* start/stop collection;
* periodically wake up, drain pooled samples from kernel memory with a
  batched ``read``, and log them to the file system from user space
  (kernel developers recommend against file I/O in kernel space — §III).

The controller's logging work is ordinary user-space execution on the
same machine, so its cost competes with the monitored program for CPU
time — this is where most of K-LEB's (small) overhead comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.sim.clock import ms
from repro.tools import costs
from repro.tools.base import Sample
from repro.tools.kleb.module import KLebModule, KLebModuleConfig
from repro.workloads.base import Block, Program, RateBlock, SyscallBlock

_LOG_RATES = {"LOADS": 0.38, "STORES": 0.27, "BRANCHES": 0.12}


@dataclass
class ControllerState:
    """Shared state between the controller program and the tool session."""

    samples: List[Sample] = field(default_factory=list)
    totals: Optional[Dict[str, int]] = None
    stop_requested: bool = False
    started: bool = False
    log_bytes: int = 0


class KLebControllerProgram(Program):
    """Block stream of the controller process.

    The program is a *generator*: each decision (how much to drain,
    when to stop) is made when the previous block finishes executing,
    interleaved with the rest of the simulated system — just like a
    real process.
    """

    def __init__(self, module: KLebModule, target_pid: int,
                 module_config: KLebModuleConfig, state: ControllerState,
                 cost_factor: float = 1.0,
                 start_target: bool = True) -> None:
        self.name = "k-leb-controller"
        self.module = module
        self.target_pid = target_pid
        self.module_config = module_config
        self.state = state
        self.cost_factor = cost_factor
        self.start_target = start_target
        drain_every = costs.KLEB_DRAIN_EVERY_PERIODS * module_config.period_ns
        self.drain_interval_ns = max(drain_every, ms(10))

    def blocks(self) -> Iterator[Block]:
        module = self.module
        state = self.state

        yield SyscallBlock(
            "ioctl",
            handler=lambda kernel, task: module.ioctl("config",
                                                      self.module_config),
            label="ioctl-config",
        )

        def do_start(kernel, task):
            module.ioctl("start", self.target_pid)
            if self.start_target:
                kernel.start_task(kernel.task(self.target_pid))
            state.started = True
            return True

        yield SyscallBlock("ioctl", handler=do_start, label="ioctl-start")

        batch_holder: Dict[str, List[Sample]] = {}
        while True:
            yield SyscallBlock(
                "nanosleep",
                handler=lambda kernel, task: kernel.sleep_current(
                    self.drain_interval_ns
                ),
                label="sleep-drain",
            )

            def do_read(kernel, task):
                batch = module.read()
                batch_holder["batch"] = batch
                return len(batch)

            yield SyscallBlock("read", handler=do_read, label="read-samples")
            batch = batch_holder.pop("batch", [])
            state.samples.extend(batch)
            if batch:
                # CSV formatting in user space, then one buffered write.
                instructions = (
                    len(batch)
                    * costs.KLEB_LOG_USER_INSTRUCTIONS_PER_SAMPLE
                    * self.cost_factor
                )
                state.log_bytes += len(batch) * 64
                yield RateBlock(instructions=instructions,
                                rates=dict(_LOG_RATES), cpi=1.0,
                                label="format-log")
                yield SyscallBlock("write", label="write-log")
            if state.stop_requested and not module.collecting \
                    and module.pending_samples == 0:
                break

        def do_stop(kernel, task):
            if module.collecting:
                module.ioctl("stop")
            state.totals = dict(module.final_totals or {})
            return state.totals

        yield SyscallBlock("ioctl", handler=do_stop, label="ioctl-stop")
