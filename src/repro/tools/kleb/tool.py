"""K-LEB as a :class:`~repro.tools.base.MonitoringTool`.

Non-intrusive (no source, no kernel patch — just a module), periodic,
and able to run at HRTimer rates (100 µs) rather than user-timer rates
(10 ms).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.control import AdaptiveController, ControlConfig
from repro.errors import ToolError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Task, TaskState
from repro.sim.clock import seconds
from repro.tools import costs
from repro.tools.base import (MonitoringTool, Sample, SampleColumns, Session,
                              ToolReport)
from repro.tools.kleb.controller import ControllerState, KLebControllerProgram
from repro.tools.kleb.module import (KLebModule, KLebModuleConfig,
                                     SmpContext)


class KLebSession(Session):
    """Live K-LEB monitoring session."""

    def __init__(self, kernel: Kernel, module: KLebModule, victim: Task,
                 controller: Task, state: ControllerState,
                 events: Sequence[str], period_ns: int) -> None:
        self.kernel = kernel
        self.module = module
        self.victim = victim
        self.controller = controller
        self.state = state
        self.events = list(events)
        self.period_ns = period_ns

    def finalize(self) -> ToolReport:
        # Ask the controller to stop; let it drain the remaining
        # samples and issue the stop ioctl.
        self.state.stop_requested = True
        if self.controller.state is not TaskState.EXITED:
            self.kernel.run_until_exit(
                self.controller, deadline=self.kernel.now + seconds(10)
            )
        totals = dict(self.state.totals or {})
        stats = self.module.stats
        metadata_extra = {}
        control_rows = None
        ctrl = self.state.control
        if ctrl is not None:
            # Adaptive runs only: non-adaptive reports must stay
            # byte-identical to the committed golden digests.
            control_rows = ctrl.ledger.to_rows()
            metadata_extra.update({
                "adaptive_budget_percent": float(
                    ctrl.config.overhead_budget_percent),
                "adaptive_nominal_period_ns": float(ctrl.nominal_period_ns),
                "adaptive_final_period_ns": float(ctrl.period_ns),
                "adaptive_min_period_ns": float(ctrl.min_period_seen),
                "adaptive_max_period_ns": float(ctrl.max_period_seen),
                "adaptive_observations": float(ctrl.observations),
                "adaptive_degradations": float(ctrl.ledger.count("degrade")),
                "adaptive_recoveries": float(ctrl.ledger.count("recover")),
                "adaptive_boosts": float(ctrl.ledger.count("boost")),
                "adaptive_boost_releases": float(
                    ctrl.ledger.count("boost-release")),
                "adaptive_open_depth": float(ctrl.depth),
                "adaptive_final_level": float(ctrl.level),
                "adaptive_overhead_percent": float(
                    ctrl.overhead_percent_last
                    if ctrl.overhead_percent_last is not None else 0.0),
                "adaptive_samples_skipped": float(stats.samples_skipped),
                "adaptive_ioctls": float(self.state.adapt_ioctls),
                "adaptive_sensor_glitches": float(
                    self.state.sensor_glitches),
                "adaptive_frozen_observations": float(
                    self.state.frozen_observations),
            })
        if self.module.smp is not None:
            # SMP sessions only: single-core reports must stay
            # byte-identical to the committed golden digests.
            metadata_extra.update({
                "smp_cores": float(len(self.module.smp.kernels)),
                "smp_home_cpu": float(self.module.smp.home),
                "smp_migrations": float(stats.migrations),
            })
            for cpu, cpu_totals in enumerate(
                    self.module.final_totals_by_cpu or []):
                for name in sorted(cpu_totals):
                    metadata_extra[f"smp_cpu{cpu}:{name}"] = float(
                        cpu_totals[name])
        mux = self.state.mux_accounting
        if mux is not None:
            # Multiplexed runs only: non-multiplexed reports must stay
            # byte-identical to the pre-multiplexing golden digests.
            running = mux["time_running_cycles"]
            metadata_extra.update({
                "multiplex_groups": float(mux["groups"]),
                "multiplex_rotations": float(mux["rotations"]),
                "multiplex_enabled_cycles": float(mux["time_enabled_cycles"]),
                "multiplex_min_running_cycles": float(min(running) if running
                                                      else 0),
            })
        if self.state.sample_batches:
            # Columnar session: one concatenation of the drained column
            # batches; Sample objects only ever materialize if a
            # consumer indexes into the series.
            samples = SampleColumns.from_batches(self.state.sample_batches)
        else:
            samples = list(self.state.samples)
        return ToolReport(
            tool="k-leb",
            events=self.events,
            period_ns=self.period_ns,
            samples=samples,
            totals={name: float(value) for name, value in totals.items()},
            victim_wall_ns=self.victim.wall_time_ns or 0,
            victim_pid=self.victim.pid,
            metadata={
                "timer_fires": float(stats.timer_fires),
                "samples_dropped": float(stats.samples_dropped),
                "pause_episodes": float(stats.pause_episodes),
                "log_bytes": float(self.state.log_bytes),
                # Degradation/recovery accounting — all zero on a
                # healthy run, populated under fault injection.
                "timer_misses": float(self.module.timer_misses_total),
                "ioctl_retries": float(self.state.ioctl_retries),
                "read_retries": float(self.state.read_retries),
                "recovery_reads": float(self.state.recovery_reads),
                "drain_shrinks": float(self.state.drain_shrinks),
                "drain_restores": float(self.state.drain_restores),
                "starved_cycles": float(self.state.starved_cycles),
                "injected_faults": float(
                    len(self.kernel.faults.ledger.records)
                ),
                **metadata_extra,
            },
            control=control_rows,
        )


class KLebTool(MonitoringTool):
    """The paper's tool: kernel-module HRTimer sampling."""

    name = "k-leb"
    requires_source = False
    # HRTimer floor, not a jiffy floor: 100x faster than perf (paper §III).
    min_period_ns = 100_000

    def __init__(self, buffer_capacity: int = 4096,
                 count_kernel: bool = False,
                 drop_module_after: bool = False,
                 controller_nice: int = 0,
                 multiplex_period_ns: Optional[int] = None,
                 control: Optional[ControlConfig] = None) -> None:
        self.buffer_capacity = buffer_capacity
        self.count_kernel = count_kernel
        self.drop_module_after = drop_module_after
        # De-prioritizing the controller demonstrates the paper's §III
        # starvation scenario: the module's back-pressure stop engages.
        self.controller_nice = controller_nice
        # perf-style group rotation: lets the event list exceed the
        # programmable counters at the cost of scaled (estimated) totals.
        self.multiplex_period_ns = multiplex_period_ns
        # When set, the controller closes the loop: adaptive period /
        # batch / rotation / skip control under this config's budget.
        self.control = control
        if control is not None:
            control.validate()

    def attach(self, kernel: Kernel, task: Task, events: Sequence[str],
               period_ns: int) -> KLebSession:
        period_ns = self.effective_period(period_ns)
        if "k_leb" in kernel.modules:
            module = kernel.get_module("k_leb")
            if not isinstance(module, KLebModule):  # pragma: no cover
                raise ToolError("module name collision on k_leb")
        else:
            module = kernel.load_module(KLebModule())
        config = KLebModuleConfig(
            events=list(events),
            period_ns=period_ns,
            buffer_capacity=self.buffer_capacity,
            count_kernel=self.count_kernel,
            multiplex_period_ns=self.multiplex_period_ns,
        )
        state = ControllerState()
        cost_rng = kernel.rng.stream("tool-cost:k-leb")
        cost_factor = float(
            cost_rng.lognormal(0.0, costs.COST_SIGMA["k-leb"])
        )
        adaptive = None
        if self.control is not None:
            adaptive = AdaptiveController(
                self.control,
                nominal_period_ns=period_ns,
                multiplexed=self.multiplex_period_ns is not None,
                # The boost fast path may not outrun what the tool (or
                # the simulated hardware) can physically deliver.
                min_period_floor_ns=max(
                    self.min_period_ns,
                    kernel.config.hrtimer_min_period_ns,
                ),
            )
        controller_program = KLebControllerProgram(
            module=module,
            target_pid=task.pid,
            module_config=config,
            state=state,
            cost_factor=cost_factor,
            start_target=task.state is TaskState.SLEEPING,
            adaptive=adaptive,
        )
        controller = kernel.spawn(controller_program,
                                  nice=self.controller_nice)
        return KLebSession(
            kernel=kernel,
            module=module,
            victim=task,
            controller=controller,
            state=state,
            events=events,
            period_ns=period_ns,
        )

    def attach_cluster(self, cluster, task: Task, events: Sequence[str],
                       period_ns: int, home: int = 0) -> KLebSession:
        """Attach one tool instance to a whole SMP cluster.

        The module loads into the ``home`` core's kernel (where the
        victim was spawned and the controller runs, pinned there), but
        programs every core's PMU, registers kprobes on every core —
        including ``sched:migrate`` — and pools samples in a per-CPU
        ring, so a single session follows the victim across cores.
        """
        if self.multiplex_period_ns is not None:
            raise ToolError(
                "K-LEB: multiplexing is not supported on an SMP session")
        if self.control is not None:
            raise ToolError(
                "K-LEB: adaptive control is not supported on an SMP session")
        period_ns = self.effective_period(period_ns)
        kernel = cluster.kernel(home)
        if "k_leb" in kernel.modules:
            module = kernel.get_module("k_leb")
            if not isinstance(module, KLebModule) or module.smp is None:
                raise ToolError(
                    "k_leb already loaded on the home kernel without "
                    "SMP wiring")
        else:
            module = kernel.load_module(KLebModule(
                smp=SmpContext(kernels=tuple(cluster.kernels), home=home)))
        config = KLebModuleConfig(
            events=list(events),
            period_ns=period_ns,
            buffer_capacity=self.buffer_capacity,
            count_kernel=self.count_kernel,
        )
        state = ControllerState()
        cost_rng = kernel.rng.stream("tool-cost:k-leb")
        cost_factor = float(
            cost_rng.lognormal(0.0, costs.COST_SIGMA["k-leb"])
        )
        controller_program = KLebControllerProgram(
            module=module,
            target_pid=task.pid,
            module_config=config,
            state=state,
            cost_factor=cost_factor,
            start_target=task.state is TaskState.SLEEPING,
        )
        controller = kernel.spawn(controller_program,
                                  nice=self.controller_nice)
        # The controller never migrates: its ioctl/read loop drains the
        # merged ring from the home core (taskset semantics).
        controller.pinned = True
        return KLebSession(
            kernel=kernel,
            module=module,
            victim=task,
            controller=controller,
            state=state,
            events=events,
            period_ns=period_ns,
        )
