"""The K-LEB kernel module.

Implements the paper's process flow (Fig. 2):

1. ``ioctl`` passes in the initial PID, hardware events, and timer
   period; the module allocates its sample buffer.
2. While the monitored process runs, the HRTimer periodically fires a
   hardware interrupt whose handler reads the PMU and appends a sample
   row to the kernel buffer.
3. When the monitored process is scheduled out, kprobes on the context
   switch path stop the HRTimer and disable the counters (isolation);
   scheduling back in restarts both.
4. A stop ``ioctl`` (or the process exiting) ends collection.
5. The controller drains pooled samples via batched ``read`` calls.

The safety mechanism (§III): if the controller is starved and the
buffer fills, collection pauses until a drain frees space.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.errors import ModuleError, ToolError, TransientModuleError
from repro.kernel.kprobes import ProbePoint
from repro.kernel.module import KernelModule
from repro.kernel.process import Task
from repro.kernel.ringbuffer import ColumnarRing, PerCpuRing, RingBuffer
from repro.kernel.hrtimer import HrTimer
from repro.hw import events as ev
from repro.hw import schedule
from repro.hw.pmu import (COUNTER_WIDTH_BITS, NUM_PROGRAMMABLE,
                          RDPMC_FIXED_FLAG)
from repro.sim.clock import us
from repro.tools import costs
from repro.tools.base import Sample

_COUNTER_WRAP = 1 << COUNTER_WIDTH_BITS


@dataclass
class KLebModuleConfig:
    """Configuration passed by the controller's first ioctl.

    ``events`` entries may be catalogue names (``"LLC_MISSES"``) or raw
    packed select/umask codes (``0x412E``) — the real K-LEB takes hex
    event codes on its command line, so both spellings are accepted and
    raw codes are resolved against the event catalogue.
    """

    events: Sequence[object] = ()
    period_ns: int = us(100)
    buffer_capacity: int = 4096
    count_kernel: bool = False
    # When set, event groups rotate round-robin every ``multiplex_period_ns``
    # of scheduled time (quantized to HRTimer fires) and totals become
    # perf-style scaled estimates; when ``None`` the event set must fit
    # the counters and behaviour is byte-identical to the classic module.
    multiplex_period_ns: Optional[int] = None

    def resolved_events(self) -> List[str]:
        """Event names with raw select/umask codes resolved."""
        names: List[str] = []
        for entry in self.events:
            if isinstance(entry, str):
                ev.lookup(entry)  # validates the name
                names.append(entry)
            else:
                names.append(ev.lookup_code(int(entry)).name)
        return names

    def validate(self) -> None:
        if not self.events:
            raise ToolError("K-LEB needs at least one hardware event")
        if self.multiplex_period_ns is None:
            if len(self.events) > NUM_PROGRAMMABLE:
                raise ToolError(
                    f"K-LEB supports at most {NUM_PROGRAMMABLE} programmable "
                    f"events, got {len(self.events)}; pass a multiplex "
                    f"period to rotate them"
                )
        else:
            if self.multiplex_period_ns < self.period_ns:
                raise ToolError(
                    f"K-LEB multiplex period ({self.multiplex_period_ns} ns) "
                    f"must be at least one timer period "
                    f"({self.period_ns} ns)"
                )
        if self.period_ns <= 0:
            raise ToolError("K-LEB period must be positive")
        if self.buffer_capacity <= 0:
            # Caught here at the tool layer, not as a KernelError from
            # RingBuffer halfway through the config ioctl.
            raise ToolError(
                f"K-LEB buffer capacity must be positive, "
                f"got {self.buffer_capacity}"
            )
        names = self.resolved_events()  # raises on unknown names or codes
        # Surface an impossible counter constraint at validation time
        # (ScheduleError names the violating subset).
        if self.multiplex_period_ns is not None:
            schedule.plan_groups(names)
        else:
            schedule.assign_counters(names)


@dataclass
class KLebStats:
    """Collection statistics exposed by the module."""

    timer_fires: int = 0
    samples_recorded: int = 0
    samples_dropped: int = 0
    pause_episodes: int = 0
    handler_time_ns: int = 0
    rotations: int = 0
    # SMP accounting: CPU migrations of traced tasks observed via the
    # sched:migrate kprobe (the re-arm on the destination core rides
    # the ordinary switch-in probe).
    migrations: int = 0
    # Adaptive-control accounting: fires skipped on the sample-dropping
    # rung (gap accounting), and the drain-copy / rotation kernel time
    # the overhead sensor folds into its monitoring-cost fraction.
    samples_skipped: int = 0
    drain_copy_ns: int = 0
    rotate_ns: int = 0


@dataclass(frozen=True)
class KLebAdaptRequest:
    """Argument of the ``adapt`` ioctl: absolute target knob values.

    Absolute, not deltas, on purpose — a transient ioctl failure makes
    the controller retry the same request, and re-applying absolute
    targets is idempotent (a relative "shrink by 2" would double-apply).
    """

    period_ns: int
    skip_factor: int = 1
    rotate_slowdown: int = 1


@dataclass
class _MuxState:
    """Book-keeping for perf-style event-group rotation.

    ``raw`` accumulates each rotated event's observed count across its
    scheduled windows; ``enabled_cycles``/``running_cycles`` carry the
    time_enabled / time_running accounting that turns raw counts into
    scaled estimates at stop.  Time is measured on the fixed
    CORE_CYCLES counter rather than the wall clock: the fixed counter
    freezes exactly when the programmable counters freeze (victim
    descheduled, kernel-mode slices with ``count_kernel`` off), so the
    extrapolation base matches what the group could actually observe —
    wall-clock accounting (what perf's task-clock uses) charges
    interrupt-handler time to whichever group is active and skews the
    scaled estimates.  ``start`` maps programmable slot -> counter
    value at the last harvest so each window contributes a delta, with
    48-bit wraps folded in exactly once via the PMU's read-and-clear
    overflow status.
    """

    plan: schedule.GroupPlan
    rotate_fires: int
    raw: Dict[str, float]
    running_cycles: List[int]
    start: Dict[int, int] = field(default_factory=dict)
    active: int = 0
    fires_in_window: int = 0
    rotations: int = 0
    enabled_cycles: int = 0
    # CORE_CYCLES fixed-counter reading at the last harvest.
    cycles_mark: int = 0


@dataclass(frozen=True)
class SmpContext:
    """Cluster wiring for an SMP K-LEB session.

    ``kernels`` are the cluster's per-core kernels in cpu order;
    ``home`` is the cpu hosting the controller (the module itself is
    loaded into the home kernel).  When present, the module programs
    every core's PMU identically, arms one HRTimer per core, registers
    its kprobes on every core (including ``sched:migrate``), and pools
    samples in a :class:`~repro.kernel.ringbuffer.PerCpuRing` — one
    tool instance following a migrating task across cores.
    """

    kernels: Sequence[object]
    home: int = 0


def _live_descendants(kernel, root_pid: int) -> set:
    """The root plus every live descendant, by ppid walk."""
    traced = {root_pid}
    frontier = [root_pid]
    while frontier:
        parent_pid = frontier.pop()
        parent = kernel.task(parent_pid)
        for child_pid in parent.children:
            child = kernel.tasks.get(child_pid)
            if child is not None and child.alive and child_pid not in traced:
                traced.add(child_pid)
                frontier.append(child_pid)
    return traced


class KLebModule(KernelModule):
    """Kernel-space collection engine (paper Fig. 1, left half)."""

    name = "k_leb"

    def __init__(self, smp: Optional[SmpContext] = None) -> None:
        super().__init__()
        self.smp = smp
        self.config: Optional[KLebModuleConfig] = None
        self.buffer: Optional[RingBuffer] = None
        self.timer: Optional[HrTimer] = None
        # One timer per cpu on an SMP session; None on the classic path.
        self.timers: Optional[List[HrTimer]] = None
        self.final_totals_by_cpu: Optional[List[Dict[str, int]]] = None
        self.traced_pids: set = set()
        self.root_pid: Optional[int] = None
        self.collecting = False
        self.stats = KLebStats()
        self.final_totals: Optional[Dict[str, int]] = None
        self.mux: Optional[_MuxState] = None
        self._probe_handles: List = []
        # Adaptive-control knobs (the adapt ioctl retunes these; the
        # defaults make non-adaptive runs bit-identical to the classic
        # module).
        self.active_period_ns = 0
        self.skip_factor = 1
        self.rotate_slowdown = 1

    # ------------------------------------------------------------------
    # Module lifecycle
    # ------------------------------------------------------------------
    def on_load(self, kernel) -> None:
        if self.smp is None:
            self.timer = HrTimer(kernel, self._timer_fire, label="k-leb")
            return
        # One HRTimer per core, each bound to its own kernel so fires
        # charge interrupt time (and draw jitter) on the right cpu.
        # The home timer keeps the classic label.
        self.timers = []
        for cpu, cpu_kernel in enumerate(self.smp.kernels):
            label = "k-leb" if cpu == self.smp.home else f"k-leb:cpu{cpu}"

            def fire(when: int, _cpu: int = cpu) -> None:
                self._timer_fire_smp(when, _cpu)

            self.timers.append(HrTimer(cpu_kernel, fire, label=label))
        self.timer = self.timers[self.smp.home]

    def on_unload(self) -> None:
        if self.collecting:
            self._stop_collection()
        self.timer = None
        self.timers = None

    @property
    def timer_misses_total(self) -> int:
        """Missed-deadline count across every armed timer (all cpus)."""
        if self.timers is not None:
            return sum(timer.missed for timer in self.timers)
        return self.timer.missed if self.timer is not None else 0

    # ------------------------------------------------------------------
    # ioctl interface (what the controller calls)
    # ------------------------------------------------------------------
    def ioctl(self, command: str, argument: object = None) -> object:
        if self.kernel.faults.ioctl_fails(command, self.kernel.now):
            # Injected transient device failure: the call fails before
            # touching module state, so a retry is always safe.
            raise TransientModuleError(
                f"K-LEB: transient ioctl({command!r}) failure (injected)"
            )
        if command == "config":
            return self._ioctl_config(argument)
        if command == "start":
            return self._ioctl_start(argument)
        if command == "stop":
            return self._ioctl_stop()
        if command == "adapt":
            return self._ioctl_adapt(argument)
        if command == "stats":
            # A copy: handing out the live mutable stats object would
            # let user space race the interrupt handler's updates.
            return replace(self.stats)
        raise ModuleError(f"K-LEB: unknown ioctl {command!r}")

    def _ioctl_config(self, argument: object) -> bool:
        if not isinstance(argument, KLebModuleConfig):
            raise ModuleError("K-LEB config ioctl needs a KLebModuleConfig")
        argument.validate()
        if self.collecting:
            raise ModuleError("K-LEB: cannot reconfigure while collecting")
        if self.smp is not None and argument.multiplex_period_ns is not None:
            # Rotation state is per-PMU; rotating N PMUs in lockstep is
            # out of scope for the SMP session.
            raise ToolError(
                "K-LEB: multiplexing is not supported on an SMP session")
        # Resource setup: buffer allocation, PMU programming.
        self.kernel.charge_kernel_time(costs.KLEB_SETUP_NS)
        self.config = argument
        # Reset the adaptive knobs to their pass-through defaults: a
        # fresh config starts at the nominal period with no skipping.
        self.active_period_ns = argument.period_ns
        self.skip_factor = 1
        self.rotate_slowdown = 1
        pmu = self.kernel.pmu
        pmu.reset_counters()
        if argument.multiplex_period_ns is not None:
            plan = schedule.plan_groups(argument.resolved_events())
            self.mux = _MuxState(
                plan=plan,
                rotate_fires=max(1, round(argument.multiplex_period_ns
                                          / argument.period_ns)),
                raw={name: 0.0 for name in plan.rotated_names},
                running_cycles=[0] * len(plan.groups),
            )
            self._mux_program_active(preload_faults=True)
        else:
            # The constraint scheduler degenerates to the historical
            # positional layout when every event allows every counter,
            # so this path stays bit-identical for the legacy catalogue.
            self.mux = None
            assignment = schedule.assign_counters(argument.resolved_events())
            for event, index in assignment.programmable:
                pmu.program_counter(index, event, user=True,
                                    kernel=argument.count_kernel)
                preload = self.kernel.faults.counter_preload(index,
                                                             self.kernel.now)
                if preload is not None:
                    # Fault injection: start near the 48-bit ceiling so
                    # the counter wraps mid-run and downstream analysis
                    # must cope with the discontinuity.
                    pmu.write_counter(index, preload)
        pmu.enable_fixed(user=True, kernel=argument.count_kernel)
        pmu.global_disable()
        if self.smp is not None:
            # Mirror the programmed layout onto every other core's PMU
            # (identical slots, so counter rows share one schema); fault
            # preloads stay on the home core only.
            assignment = schedule.assign_counters(argument.resolved_events())
            for cpu_kernel in self.smp.kernels:
                other = cpu_kernel.pmu
                if other is pmu:
                    continue
                other.reset_counters()
                for event, index in assignment.programmable:
                    other.program_counter(index, event, user=True,
                                          kernel=argument.count_kernel)
                other.enable_fixed(user=True, kernel=argument.count_kernel)
                other.global_disable()
        if self.mux is not None:
            # Rotation changes the per-sample event schema between
            # windows, so multiplexed sessions keep the generic ring.
            self.buffer = RingBuffer(argument.buffer_capacity)
        else:
            # Fixed schema for the whole session: the columnar ring is
            # allocated against the programmed counter-row layout and
            # the interrupt handler pushes typed rows, never dicts.
            row_names, _ = pmu.counter_row()
            if self.smp is not None:
                # One private ring per core (capacity each), merged in
                # timestamp order at drain time.
                self.buffer = PerCpuRing(argument.buffer_capacity, row_names,
                                         cpus=len(self.smp.kernels))
            else:
                self.buffer = ColumnarRing(argument.buffer_capacity,
                                           row_names)
        return True

    def _ioctl_start(self, argument: object) -> bool:
        if self.config is None or self.buffer is None:
            raise ModuleError("K-LEB: start before config")
        if self.collecting:
            raise ModuleError("K-LEB: already collecting")
        pid = int(argument)  # raises on garbage, as the real ioctl would
        target = self.kernel.task(pid)  # validate the PID exists
        if not target.alive:
            raise ModuleError(f"K-LEB: pid {pid} is not alive")
        self.root_pid = pid
        # Trace the whole existing process tree (the paper's pid/ppid/
        # name bookkeeping): children forked before the start ioctl —
        # e.g. a container already spawned by its shim — are included.
        self.traced_pids = _live_descendants(self.kernel, pid)
        self.final_totals = None
        self.final_totals_by_cpu = None
        self.stats = KLebStats()
        if self.smp is None:
            probes = self.kernel.kprobes
            self._probe_handles = [
                (probes,
                 probes.register(ProbePoint.SCHED_SWITCH_IN,
                                 self._switch_in)),
                (probes,
                 probes.register(ProbePoint.SCHED_SWITCH_OUT,
                                 self._switch_out)),
                (probes, probes.register(ProbePoint.PROCESS_FORK,
                                         self._fork)),
                (probes, probes.register(ProbePoint.PROCESS_EXIT,
                                         self._exit)),
            ]
        else:
            # Probes on *every* core: the traced task may run (and
            # exit) anywhere, and sched:migrate fires on the
            # destination core so counting follows the task.
            self._probe_handles = []
            for cpu, cpu_kernel in enumerate(self.smp.kernels):
                probes = cpu_kernel.kprobes
                for point, handler in (
                    (ProbePoint.SCHED_SWITCH_IN,
                     self._smp_switch_in(cpu)),
                    (ProbePoint.SCHED_SWITCH_OUT,
                     self._smp_switch_out(cpu)),
                    (ProbePoint.SCHED_MIGRATE, self._migrated),
                    (ProbePoint.PROCESS_FORK, self._fork),
                    (ProbePoint.PROCESS_EXIT, self._exit),
                ):
                    self._probe_handles.append(
                        (probes, probes.register(point, handler)))
        self.collecting = True
        # If the monitored task is already on a CPU, begin right away.
        if self.smp is None:
            current = self.kernel.scheduler.current
            if current is not None and current.pid in self.traced_pids:
                self._begin_counting()
        else:
            for cpu, cpu_kernel in enumerate(self.smp.kernels):
                current = cpu_kernel.scheduler.current
                if current is not None and current.pid in self.traced_pids:
                    self._begin_counting(cpu)
        return True

    def _ioctl_stop(self) -> Dict[str, int]:
        if not self.collecting:
            raise ModuleError("K-LEB: not collecting")
        self._stop_collection()
        return dict(self.final_totals or {})

    def _ioctl_adapt(self, argument: object) -> bool:
        """Retune the sampling knobs mid-collection (adaptive control).

        Applies the request's absolute targets; safe to retry after a
        transient failure (the fault hook fires before any state is
        touched, and absolute targets re-apply idempotently).
        """
        if not isinstance(argument, KLebAdaptRequest):
            raise ModuleError("K-LEB adapt ioctl needs a KLebAdaptRequest")
        if self.config is None:
            raise ModuleError("K-LEB: adapt before config")
        if argument.period_ns < self.kernel.config.hrtimer_min_period_ns:
            raise ModuleError(
                f"K-LEB: adapt period {argument.period_ns}ns below "
                f"hardware floor {self.kernel.config.hrtimer_min_period_ns}ns"
            )
        if argument.skip_factor < 1 or argument.rotate_slowdown < 1:
            raise ModuleError(
                "K-LEB: adapt skip_factor and rotate_slowdown must be >= 1"
            )
        self.kernel.charge_kernel_time(costs.KLEB_ADAPT_NS)
        self.active_period_ns = int(argument.period_ns)
        self.skip_factor = int(argument.skip_factor)
        self.rotate_slowdown = int(argument.rotate_slowdown)
        if self.timers is not None:
            for timer in self.timers:
                if timer.period_ns != self.active_period_ns:
                    timer.reprogram(self.active_period_ns)
        elif self.timer is not None \
                and self.timer.period_ns != self.active_period_ns:
            # In place if running; an inactive timer (victim switched
            # out, or paused on back-pressure) just stores the new
            # period and picks it up on the next switch-in.
            self.timer.reprogram(self.active_period_ns)
        return True

    # ------------------------------------------------------------------
    # Device read (controller drains samples)
    # ------------------------------------------------------------------
    def read(self, max_items: Optional[int] = None):
        """Drain pooled samples: a :class:`ColumnBatch` from a columnar
        session (non-multiplexed), a ``List[Sample]`` otherwise."""
        if self.buffer is None:
            raise ModuleError("K-LEB: read before config")
        if max_items is not None and max_items < 0:
            # An empty batch here would read as "no samples pending"
            # and silently mask the caller's bug.
            raise ModuleError(
                f"K-LEB: read max_items must be non-negative, "
                f"got {max_items}"
            )
        if self.kernel.faults.read_fails(self.kernel.now):
            raise TransientModuleError(
                "K-LEB: transient read failure (injected)"
            )
        batch = self.buffer.drain(max_items)
        if batch:
            # copy_to_user of the sample rows.
            copy_ns = len(batch) * costs.KLEB_DRAIN_COPY_NS_PER_SAMPLE
            self.kernel.charge_kernel_time(copy_ns)
            self.stats.drain_copy_ns += copy_ns
        return batch

    @property
    def pending_samples(self) -> int:
        return len(self.buffer) if self.buffer is not None else 0

    # ------------------------------------------------------------------
    # kprobe handlers: per-PID isolation (paper Fig. 3)
    # ------------------------------------------------------------------
    def _switch_in(self, task: Task) -> None:
        if self.collecting and task.pid in self.traced_pids:
            self._begin_counting()

    def _switch_out(self, task: Task) -> None:
        if self.collecting and task.pid in self.traced_pids:
            self._pause_counting()

    def _smp_switch_in(self, cpu: int):
        def handler(task: Task) -> None:
            if self.collecting and task.pid in self.traced_pids:
                self._begin_counting(cpu)
        return handler

    def _smp_switch_out(self, cpu: int):
        def handler(task: Task) -> None:
            if self.collecting and task.pid in self.traced_pids:
                self._pause_counting(cpu)
        return handler

    def _migrated(self, task: Task, src_cpu: int, dst_cpu: int) -> None:
        # Fires on the destination core; the actual re-arm (timer +
        # counter enable on dst) rides that core's switch-in probe when
        # the task is next dispatched.
        if self.collecting and task.pid in self.traced_pids:
            self.stats.migrations += 1

    def _fork(self, parent: Task, child: Task) -> None:
        # Trace the whole process tree: name/pid/ppid bookkeeping.
        if self.collecting and parent.pid in self.traced_pids:
            self.traced_pids.add(child.pid)

    def _exit(self, task: Task) -> None:
        if not self.collecting or task.pid not in self.traced_pids:
            return
        if task.pid == self.root_pid:
            self._stop_collection()
        else:
            self.traced_pids.discard(task.pid)

    # ------------------------------------------------------------------
    # Counting control
    # ------------------------------------------------------------------
    def _begin_counting(self, cpu: Optional[int] = None) -> None:
        assert self.config is not None
        if cpu is None:
            assert self.timer is not None
            self.kernel.pmu.global_enable()
            # The adapt ioctl may have retuned the period since config;
            # equals config.period_ns when the controller never adapted.
            self.timer.start(self.active_period_ns or self.config.period_ns)
            return
        assert self.timers is not None and self.smp is not None
        self.smp.kernels[cpu].pmu.global_enable()
        self.timers[cpu].start(self.active_period_ns or self.config.period_ns)

    def _pause_counting(self, cpu: Optional[int] = None) -> None:
        if cpu is None:
            assert self.timer is not None
            self.timer.cancel()
            if self.mux is not None:
                # Harvest the partial window before the counters freeze
                # so drained samples stay fresh across descheduled
                # stretches.
                self._mux_harvest()
            self.kernel.pmu.global_disable()
            return
        assert self.timers is not None and self.smp is not None
        self.timers[cpu].cancel()
        self.smp.kernels[cpu].pmu.global_disable()

    def _stop_collection(self) -> None:
        if self.smp is not None:
            self._stop_collection_smp()
            return
        if self.timer is not None:
            self.timer.cancel()
        if self.mux is not None:
            self._mux_harvest()
            self.final_totals = self._mux_totals()
        else:
            self.final_totals = dict(
                self.kernel.pmu.snapshot(self.kernel.now).by_event
            )
        self.kernel.pmu.global_disable()
        for probes, handle in self._probe_handles:
            probes.unregister(handle)
        self._probe_handles = []
        self.collecting = False

    def _stop_collection_smp(self) -> None:
        assert self.smp is not None and self.timers is not None
        for timer in self.timers:
            timer.cancel()
        totals_by_cpu: List[Dict[str, int]] = []
        merged: Dict[str, int] = {}
        for cpu_kernel in self.smp.kernels:
            snapshot = dict(cpu_kernel.pmu.snapshot(cpu_kernel.now).by_event)
            cpu_kernel.pmu.global_disable()
            totals_by_cpu.append(snapshot)
            for name, value in snapshot.items():
                merged[name] = merged.get(name, 0) + value
        self.final_totals_by_cpu = totals_by_cpu
        self.final_totals = merged
        for probes, handle in self._probe_handles:
            probes.unregister(handle)
        self._probe_handles = []
        self.collecting = False

    # ------------------------------------------------------------------
    # Time-multiplexing engine (perf-style round-robin rotation)
    # ------------------------------------------------------------------
    def _mux_program_active(self, preload_faults: bool = False) -> None:
        """Program the active group's assignment; unused slots disabled."""
        assert self.mux is not None and self.config is not None
        mux = self.mux
        pmu = self.kernel.pmu
        group = mux.plan.groups[mux.active]
        used = {slot for _, slot in group.programmable}
        for index in range(NUM_PROGRAMMABLE):
            if index not in used:
                pmu.disable_counter(index)
        for name, slot in group.programmable:
            pmu.program_counter(slot, name, user=True,
                                kernel=self.config.count_kernel)
            if preload_faults:
                preload = self.kernel.faults.counter_preload(
                    slot, self.kernel.now)
                if preload is not None:
                    pmu.write_counter(slot, preload)
        # Fresh window: deltas restart from the just-written values.
        mux.start = {slot: pmu.rdpmc(slot) for _, slot in group.programmable}

    def _mux_harvest(self) -> None:
        """Fold the active group's counter deltas into the raw tallies.

        Each 48-bit wrap is folded in exactly once: the PMU's overflow
        status bit is read-and-cleared here, and counter *writes* (the
        re-arm on rotation, fault preloads) cancel any undelivered
        overflow for the slot — so a wrap preload landing in a group
        that rotates out before its PMI drains cannot double-deliver.
        """
        assert self.mux is not None
        mux = self.mux
        pmu = self.kernel.pmu
        cycles = pmu.rdpmc(1 | RDPMC_FIXED_FLAG)  # fixed CORE_CYCLES
        elapsed = cycles - mux.cycles_mark
        if elapsed > 0:
            mux.enabled_cycles += elapsed
            mux.running_cycles[mux.active] += elapsed
        mux.cycles_mark = cycles
        for name, slot in mux.plan.groups[mux.active].programmable:
            value = pmu.rdpmc(slot)
            start = mux.start.get(slot, 0)
            wrapped = pmu.consume_overflow(slot)
            delta = value - start
            if wrapped and value < start:
                delta += _COUNTER_WRAP
            if delta:
                mux.raw[name] += delta
            mux.start[slot] = value

    def _mux_rotate(self) -> None:
        """Advance to the next group (called after a harvest)."""
        assert self.mux is not None
        mux = self.mux
        mux.active = (mux.active + 1) % len(mux.plan.groups)
        mux.fires_in_window = 0
        mux.rotations += 1
        self.stats.rotations = mux.rotations
        # Reprogramming four event-select registers from interrupt
        # context is the real cost of multiplexing at HRTimer rates.
        self.kernel.charge_kernel_time(costs.KLEB_ROTATE_NS)
        self.stats.rotate_ns += costs.KLEB_ROTATE_NS
        self._mux_program_active()

    def _mux_sample_values(self) -> Dict[str, int]:
        """Fixed counters plus cumulative raw counts of every rotated
        event (counts observed so far; descheduled events hold still)."""
        assert self.mux is not None
        mux = self.mux
        pmu = self.kernel.pmu
        values: Dict[str, int] = {}
        for index, event_name in enumerate(ev.FIXED_EVENTS):
            values[event_name] = pmu.rdpmc(index | RDPMC_FIXED_FLAG)
        for name in mux.plan.rotated_names:
            values[name] = int(mux.raw[name])
        return values

    def _mux_totals(self) -> Dict[str, int]:
        """Final totals: exact fixed counts, scaled rotated estimates."""
        assert self.mux is not None
        mux = self.mux
        pmu = self.kernel.pmu
        totals: Dict[str, int] = {}
        for index, event_name in enumerate(ev.FIXED_EVENTS):
            totals[event_name] = pmu.rdpmc(index | RDPMC_FIXED_FLAG)
        for group_index, group in enumerate(mux.plan.groups):
            running = mux.running_cycles[group_index]
            for name, _ in group.programmable:
                totals[name] = int(round(schedule.scaled_estimate(
                    mux.raw[name], mux.enabled_cycles, running)))
        return totals

    # ------------------------------------------------------------------
    # HRTimer interrupt handler
    # ------------------------------------------------------------------
    def _timer_fire(self, when: int) -> None:
        if not self.collecting:
            return
        self.stats.timer_fires += 1
        if self.stats.timer_fires == 1:
            # Lazy one-time work on the first fire: buffer page faults,
            # module-path cache warmup.
            self.kernel.charge_kernel_time(costs.KLEB_FIRST_FIRE_NS)
        if (self.skip_factor > 1
                and self.stats.timer_fires % self.skip_factor != 0):
            # Sample-dropping ladder rung: the handler enters, checks
            # the skip counter, and bails without touching the PMU or
            # the buffer.  The gap is accounted (samples_skipped) so
            # downstream analysis can distinguish dropped-by-policy
            # from lost-to-pressure.  Rotation fires still tick so a
            # multiplexed session keeps cycling its groups.
            self.kernel.charge_kernel_time(costs.KLEB_SKIP_FIRE_NS)
            self.stats.handler_time_ns += costs.KLEB_SKIP_FIRE_NS
            self.stats.samples_skipped += 1
            if self.mux is not None and len(self.mux.plan.groups) > 1:
                self.mux.fires_in_window += 1
                if (self.mux.fires_in_window
                        >= self.mux.rotate_fires * self.rotate_slowdown):
                    self._mux_harvest()
                    self._mux_rotate()
            return
        self.kernel.charge_kernel_time(costs.KLEB_HANDLER_NS)
        self.stats.handler_time_ns += costs.KLEB_HANDLER_NS
        assert self.buffer is not None
        # Fault injection: memory pressure may squeeze the sample pool's
        # effective capacity for a window of fires.
        squeezed = self.kernel.faults.squeeze_capacity(self.buffer.capacity,
                                                       self.kernel.now)
        if squeezed is not None:
            self.buffer.squeeze(squeezed)
        else:
            self.buffer.unsqueeze()
        if self.mux is not None:
            self._mux_harvest()
            values = self._mux_sample_values()
            pushed = self.buffer.push(
                Sample(timestamp=self.kernel.now, values=values)
            )
        else:
            # Columnar hot path: one typed row straight into the ring's
            # preallocated columns — no snapshot dict, no Sample object.
            _, row = self.kernel.pmu.counter_row()
            pushed = self.buffer.push_row(self.kernel.now, row)
        if pushed:
            self.stats.samples_recorded += 1
        else:
            # Safety mechanism: buffer full, controller starved —
            # sample dropped, collection paused until a drain.
            self.stats.samples_dropped += 1
        self.stats.pause_episodes = self.buffer.pause_episodes
        if self.mux is not None and len(self.mux.plan.groups) > 1:
            self.mux.fires_in_window += 1
            # The rotation-slowed ladder rung stretches each group's
            # window by rotate_slowdown (1 when not adapted).
            if (self.mux.fires_in_window
                    >= self.mux.rotate_fires * self.rotate_slowdown):
                self._mux_rotate()

    def _timer_fire_smp(self, when: int, cpu: int) -> None:
        """Per-core variant of :meth:`_timer_fire`.

        Mirrors the classic handler (skip ladder, squeeze faults,
        columnar push, back-pressure accounting) but charges interrupt
        time on ``cpu``'s kernel, reads ``cpu``'s PMU, and pushes into
        that core's private ring.  SMP sessions never multiplex, so the
        rotation arms are absent.
        """
        if not self.collecting:
            return
        assert self.smp is not None
        cpu_kernel = self.smp.kernels[cpu]
        self.stats.timer_fires += 1
        if self.stats.timer_fires == 1:
            cpu_kernel.charge_kernel_time(costs.KLEB_FIRST_FIRE_NS)
        if (self.skip_factor > 1
                and self.stats.timer_fires % self.skip_factor != 0):
            cpu_kernel.charge_kernel_time(costs.KLEB_SKIP_FIRE_NS)
            self.stats.handler_time_ns += costs.KLEB_SKIP_FIRE_NS
            self.stats.samples_skipped += 1
            return
        cpu_kernel.charge_kernel_time(costs.KLEB_HANDLER_NS)
        self.stats.handler_time_ns += costs.KLEB_HANDLER_NS
        assert isinstance(self.buffer, PerCpuRing)
        squeezed = cpu_kernel.faults.squeeze_capacity(self.buffer.capacity,
                                                      cpu_kernel.now)
        if squeezed is not None:
            self.buffer.squeeze(squeezed)
        else:
            self.buffer.unsqueeze()
        _, row = cpu_kernel.pmu.counter_row()
        pushed = self.buffer.push_row(cpu, cpu_kernel.now, row)
        if pushed:
            self.stats.samples_recorded += 1
        else:
            self.stats.samples_dropped += 1
        self.stats.pause_episodes = self.buffer.pause_episodes
