"""K-LEB: the paper's contribution.

Three pieces, matching Fig. 1 of the paper:

* :class:`~repro.tools.kleb.module.KLebModule` — the kernel module:
  HRTimer-driven sampling, kprobe-based per-PID counter isolation,
  kernel ring buffer with back-pressure.
* :class:`~repro.tools.kleb.controller.KLebControllerProgram` — the
  user-space controller process: configures the module over ``ioctl``,
  periodically drains samples with batched reads, logs them.
* :class:`~repro.tools.kleb.tool.KLebTool` — the
  :class:`~repro.tools.base.MonitoringTool` front-end gluing them
  together for experiments.
"""

from repro.tools.kleb.module import KLebModule, KLebModuleConfig
from repro.tools.kleb.controller import KLebControllerProgram
from repro.tools.kleb.tool import KLebTool

__all__ = ["KLebModule", "KLebModuleConfig", "KLebControllerProgram", "KLebTool"]
