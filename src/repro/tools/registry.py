"""Registry of monitoring tools, keyed by their CLI/report names."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.tools.base import MonitoringTool
from repro.tools.dbi import DbiTool
from repro.tools.kleb import KLebTool
from repro.tools.limit import LimitTool
from repro.tools.null import NullTool
from repro.tools.papi import PapiTool
from repro.tools.perf import PerfRecordTool, PerfStatTool

_FACTORIES: Dict[str, Callable[[], MonitoringTool]] = {
    "none": NullTool,
    "k-leb": KLebTool,
    "perf-stat": PerfStatTool,
    "perf-record": PerfRecordTool,
    "papi": PapiTool,
    "limit": LimitTool,
    "dbi": DbiTool,
}


def create_tool(name: str) -> MonitoringTool:
    """Instantiate a fresh tool by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise KeyError(f"unknown tool {name!r} (known: {known})") from None
    return factory()


def available_tools() -> List[str]:
    """Registered tool names, baseline first."""
    return ["none", "k-leb", "perf-stat", "perf-record", "papi", "limit",
            "dbi"]
