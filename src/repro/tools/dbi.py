"""Dynamic binary instrumentation profiler (Valgrind/Callgrind-style).

The paper's introduction contrasts counter-based collection against
DBI: programs are translated to an IR, instrumented, and recompiled,
which "can produce significant overhead, which makes online analysis
with software-based profiling for fine-grained events sub-optimal" —
while needing neither source code nor hardware counters.

This model captures that trade-off:

* **no source needed** (operates on the binary/block stream);
* **exact** event counts — instrumentation observes every instruction,
  so the reported totals are the ground truth, not PMU readings;
* **very high overhead** — every guest instruction expands into several
  host instructions (the translation tax), plus a one-time translation
  warm-up per program.

Useful as the contrast point in overhead ablations: the reason the
counter-based tools exist at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import ToolError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Task, TaskState
from repro.tools.base import MonitoringTool, Sample, Session, ToolReport
from repro.workloads.base import (
    Block,
    Program,
    RateBlock,
    SyscallBlock,
    TraceBlock,
    user_probe,
)

# Every guest instruction costs this many host instructions once
# translated (dispatch, bookkeeping, event counters in the IR).
DBI_EXPANSION_FACTOR = 9.0
# One-time translation cost per program, in host instructions.
DBI_TRANSLATION_INSTRUCTIONS = 3.0e7


@dataclass
class _DbiRuntime:
    """Shadow event counts maintained by the instrumentation itself."""

    events: List[str]
    counts: Dict[str, float] = field(default_factory=dict)
    samples: List[Sample] = field(default_factory=list)

    def record(self, contributions: Dict[str, float]) -> None:
        for name, amount in contributions.items():
            self.counts[name] = self.counts.get(name, 0.0) + amount


class DbiInstrumentedProgram(Program):
    """The victim, translated and instrumented block by block."""

    def __init__(self, base: Program, events: Sequence[str]) -> None:
        self.name = f"{base.name}+dbi"
        self._base = base
        self.runtime = _DbiRuntime(events=list(events))

    @property
    def metadata(self) -> Dict[str, float]:
        return self._base.metadata

    def blocks(self) -> Iterator[Block]:
        runtime = self.runtime
        # Translation warm-up: the JIT compiles the working set of code.
        yield RateBlock(
            instructions=DBI_TRANSLATION_INSTRUCTIONS,
            rates={"LOADS": 0.35, "STORES": 0.25, "BRANCHES": 0.2},
            label="dbi-translate",
        )
        for block in self._base.blocks():
            if isinstance(block, RateBlock):
                guest = block.instructions
                contributions = {
                    name: rate * guest for name, rate in block.rates.items()
                }
                contributions["INST_RETIRED"] = guest

                def count(kernel: Kernel, task: Task,
                          contributions=contributions):
                    runtime.record(contributions)
                    runtime.samples.append(Sample(
                        timestamp=kernel.now,
                        values={name: int(value)
                                for name, value in runtime.counts.items()},
                    ))

                # The translated block: guest work expanded by the
                # instrumentation tax, then the shadow-counter update.
                yield RateBlock(
                    instructions=guest * DBI_EXPANSION_FACTOR,
                    rates=dict(block.rates),
                    cpi=block.cpi,
                    privilege=block.privilege,
                    label=f"dbi:{block.label}",
                )
                yield user_probe(count, label="dbi-count")
            elif isinstance(block, TraceBlock):
                per_op = block.instructions_per_op + block.event_scale
                guest = len(block.ops) * per_op
                contributions = {"INST_RETIRED": guest}

                def count_trace(kernel: Kernel, task: Task,
                                contributions=contributions):
                    runtime.record(contributions)

                # Memory behaviour must stay real: replay the trace,
                # but pay the expansion on the interleaved instructions.
                yield TraceBlock(
                    ops=block.ops,
                    instructions_per_op=block.instructions_per_op
                    * DBI_EXPANSION_FACTOR,
                    event_scale=block.event_scale,
                    cpi=block.cpi,
                    privilege=block.privilege,
                    label=f"dbi:{block.label}",
                )
                yield user_probe(count_trace, label="dbi-count")
            else:
                yield block


class DbiSession(Session):
    def __init__(self, kernel: Kernel, victim: Task,
                 runtime: _DbiRuntime, period_ns: int) -> None:
        self.kernel = kernel
        self.victim = victim
        self.runtime = runtime
        self.period_ns = period_ns

    def finalize(self) -> ToolReport:
        totals = {
            name: float(value)
            for name, value in self.runtime.counts.items()
            if name in self.runtime.events or name == "INST_RETIRED"
        }
        return ToolReport(
            tool="dbi",
            events=list(self.runtime.events),
            period_ns=self.period_ns,
            samples=list(self.runtime.samples),
            totals=totals,
            victim_wall_ns=self.victim.wall_time_ns or 0,
            victim_pid=self.victim.pid,
            metadata={"expansion_factor": DBI_EXPANSION_FACTOR},
        )


class DbiTool(MonitoringTool):
    """DBI profiler: exact counts, no source, brutal overhead."""

    name = "dbi"
    requires_source = False  # binaries are enough — that's DBI's point
    # The translated program carries a live DbiRuntime consumed by
    # attach(); it must be rebuilt for every trial.
    reusable_preparation = False

    def prepare_program(self, program: Program, events: Sequence[str],
                        period_ns: int) -> DbiInstrumentedProgram:
        return DbiInstrumentedProgram(program, events)

    def attach(self, kernel: Kernel, task: Task, events: Sequence[str],
               period_ns: int) -> DbiSession:
        program = task.program
        if not isinstance(program, DbiInstrumentedProgram):
            raise ToolError(
                "DBI runs the program under translation: spawn the program "
                "returned by prepare_program()"
            )
        if task.state is TaskState.SLEEPING:
            kernel.start_task(task)
        return DbiSession(kernel, task, program.runtime, period_ns)
