"""PAPI analogue: source-level instrumentation with syscall reads.

PAPI's properties as the paper characterizes them (§II-B, §V):

* **requires the source code** — monitoring calls are compiled into the
  program (here: the block stream is rewritten with read points);
* **expensive system calls** per counter read — the dominant per-point
  cost, and the reason PAPI tops Table II;
* a **one-time library initialization** (``PAPI_library_init`` + event
  set construction) before ``PAPI_start`` — a fixed cost that dominates
  short programs, producing Table III's 21.4 % on MKL dgemm;
* counting starts at ``PAPI_start`` and ends at ``PAPI_stop``, so the
  library init itself is *not* counted, but the small user-space
  bookkeeping at each read point *is* — PAPI's slight positive count
  deviation in Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import ToolError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Task, TaskState
from repro.tools import costs
from repro.tools.base import (
    CounterGate,
    MonitoringTool,
    Sample,
    Session,
    ToolReport,
)
from repro.workloads.base import (
    Block,
    BlockInserter,
    Program,
    RateBlock,
    SyscallBlock,
)

_DEFAULT_FREQUENCY_HZ = 2.67e9


@dataclass
class _PapiRuntime:
    """State shared between instrumented blocks and the session."""

    events: List[str]
    gate: Optional[CounterGate] = None
    samples: List[Sample] = field(default_factory=list)
    totals: Dict[str, float] = field(default_factory=dict)
    cost_factor: float = 1.0
    read_points: int = 0

    def require_gate(self) -> CounterGate:
        if self.gate is None:
            raise ToolError("PAPI instrumentation ran before attach()")
        return self.gate


class PapiInstrumentedProgram(Program):
    """A victim program recompiled with PAPI calls."""

    def __init__(self, base: Program, events: Sequence[str],
                 interval_instructions: float) -> None:
        self.name = f"{base.name}+papi"
        self._base = base
        self.runtime = _PapiRuntime(events=list(events))
        inserter = BlockInserter(
            factory=self._read_point,
            every_instructions=interval_instructions,
            prologue=self._prologue,
            epilogue=self._epilogue,
        )
        self._instrumented = base.instrumented(inserter)

    @property
    def metadata(self) -> Dict[str, float]:
        return self._base.metadata

    def blocks(self) -> Iterator[Block]:
        return self._instrumented.blocks()

    # -- instrumentation pieces -----------------------------------------
    def _prologue(self) -> List[Block]:
        runtime = self.runtime

        def do_start(kernel: Kernel, task: Task):
            runtime.require_gate().arm()
            return True

        return [
            # PAPI_library_init + component discovery + event set build.
            RateBlock(
                instructions=(costs.PAPI_INIT_NS / 1e9) * _DEFAULT_FREQUENCY_HZ,
                rates={"LOADS": 0.33, "STORES": 0.22, "BRANCHES": 0.15},
                label="papi-library-init",
            ),
            SyscallBlock("papi_start", handler=do_start, label="PAPI_start"),
        ]

    def _read_point(self) -> List[Block]:
        runtime = self.runtime

        def do_read(kernel: Kernel, task: Task):
            kernel.charge_kernel_time(int(
                len(runtime.events)
                * costs.PAPI_READ_SYSCALL_NS_PER_EVENT
                * runtime.cost_factor
            ))
            snapshot = runtime.require_gate().snapshot()
            runtime.samples.append(
                Sample(timestamp=kernel.now, values=snapshot)
            )
            runtime.read_points += 1
            return snapshot

        def do_log(kernel: Kernel, task: Task):
            kernel.charge_kernel_time(int(
                costs.PAPI_LOG_KERNEL_NS * runtime.cost_factor
            ))
            return True

        return [
            SyscallBlock("read", handler=do_read, label="PAPI_read"),
            # User-side bookkeeping around the read — counted by the
            # user-mode counters because it runs between start and stop.
            RateBlock(
                instructions=costs.PAPI_USER_INSTRUCTIONS_PER_POINT,
                rates={"LOADS": 0.4, "STORES": 0.3, "BRANCHES": 0.1},
                label="papi-bookkeeping",
            ),
            SyscallBlock("write", handler=do_log, label="papi-log"),
        ]

    def _epilogue(self) -> List[Block]:
        runtime = self.runtime

        def do_stop(kernel: Kernel, task: Task):
            gate = runtime.require_gate()
            gate.disarm()
            runtime.totals = {
                name: float(value)
                for name, value in (gate.final_snapshot or {}).items()
            }
            return runtime.totals

        return [SyscallBlock("papi_stop", handler=do_stop, label="PAPI_stop")]


class PapiSession(Session):
    def __init__(self, kernel: Kernel, victim: Task,
                 runtime: _PapiRuntime, period_ns: int) -> None:
        self.kernel = kernel
        self.victim = victim
        self.runtime = runtime
        self.period_ns = period_ns

    def finalize(self) -> ToolReport:
        self.runtime.require_gate().detach()
        return ToolReport(
            tool="papi",
            events=list(self.runtime.events),
            period_ns=self.period_ns,
            samples=list(self.runtime.samples),
            totals=dict(self.runtime.totals),
            victim_wall_ns=self.victim.wall_time_ns or 0,
            victim_pid=self.victim.pid,
            metadata={"read_points": float(self.runtime.read_points)},
        )


class PapiTool(MonitoringTool):
    """PAPI-C: instrumented collection through syscall reads."""

    name = "papi"
    requires_source = True
    # The instrumented program carries a mutable runtime (gate, cost
    # factor, samples) that attach() rebinds per trial.
    reusable_preparation = False

    def __init__(self, frequency_hint_hz: float = _DEFAULT_FREQUENCY_HZ) -> None:
        self.frequency_hint_hz = frequency_hint_hz

    def prepare_program(self, program: Program, events: Sequence[str],
                        period_ns: int) -> PapiInstrumentedProgram:
        interval = instrumentation_interval(
            program, period_ns, self.frequency_hint_hz
        )
        return PapiInstrumentedProgram(program, events, interval)

    def attach(self, kernel: Kernel, task: Task, events: Sequence[str],
               period_ns: int) -> PapiSession:
        program = task.program
        if not isinstance(program, PapiInstrumentedProgram):
            raise ToolError(
                "PAPI requires the source: spawn the program returned by "
                "prepare_program()"
            )
        runtime = program.runtime
        runtime.gate = CounterGate(kernel, task, runtime.events,
                                   count_kernel=False, armed=False)
        cost_rng = kernel.rng.stream("tool-cost:papi")
        runtime.cost_factor = float(
            cost_rng.lognormal(0.0, costs.COST_SIGMA["papi"])
        )
        if task.state is TaskState.SLEEPING:
            kernel.start_task(task)
        return PapiSession(kernel, task, runtime, period_ns)


def instrumentation_interval(program: Program, period_ns: int,
                             frequency_hz: float) -> float:
    """Instructions between read points for a target sample period.

    Mirrors the paper's methodology: place read points "at multiple
    strategic points in the program so that the numbers of data samples
    obtained are approximately the same as those of the timer-based
    tools" — i.e. one point per ``period_ns`` of *estimated* runtime.
    """
    metadata = program.metadata
    instructions = metadata.get("instructions")
    if not instructions:
        raise ToolError(
            f"cannot instrument {program.name!r}: no instruction-count "
            "metadata (the paper hit the same wall — instrumentation "
            "needs source-level knowledge)"
        )
    cpi = metadata.get("cpi_hint", 1.0)
    runtime_ns = instructions * cpi / frequency_hz * 1e9
    points = max(1.0, runtime_ns / period_ns)
    return instructions / points
