"""Report persistence: JSON round-trip and CSV sample logs.

K-LEB's controller logs samples to the file system (paper §III); this
module is the user-space side of that story: write a
:class:`~repro.tools.base.ToolReport` to disk in the CSV layout the
real tool produces (one row per sample, one column per event) or as a
lossless JSON document, and read either back.  It also loads the
observability artifacts the CLI records (``--trace``/``--metrics``)
for ``python -m repro.obs.report`` and CI artifact checks.
"""

from __future__ import annotations

import csv
import gzip
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import ReproError
from repro.tools.base import Sample, SampleColumns, ToolReport

_FORMAT_VERSION = 1

PathLike = Union[str, Path]


class ReportIOError(ReproError):
    """Malformed report file or incompatible version."""


def effective_suffix(path: PathLike) -> str:
    """The format-selecting suffix, seeing through a trailing ``.gz``.

    ``trace.jsonl.gz`` → ``.jsonl``; ``metrics.json`` → ``.json``.
    """
    path = Path(path)
    if path.suffix == ".gz":
        return Path(path.stem).suffix
    return path.suffix


def write_artifact_text(path: PathLike, text: str) -> None:
    """Write ``text`` to ``path``, gzip-compressed for ``*.gz`` paths.

    The gzip stream is written with ``mtime=0`` and no embedded file
    name, so compressed artifacts are as byte-deterministic as the
    plain ones and can be digest-pinned the same way.
    """
    path = Path(path)
    data = text.encode("utf-8")
    if path.suffix == ".gz":
        with open(path, "wb") as raw:
            with gzip.GzipFile(filename="", fileobj=raw, mode="wb",
                               mtime=0) as handle:
                handle.write(data)
    else:
        path.write_bytes(data)


def read_artifact_text(path: PathLike) -> str:
    """Read ``path`` as text, transparently gunzipping ``*.gz`` files.

    A corrupt gzip stream surfaces as :class:`OSError`
    (``gzip.BadGzipFile`` subclasses it), which the artifact loaders
    below already translate into :class:`ReportIOError`.
    """
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            return handle.read()
    return path.read_text()


def save_report_json(report: ToolReport, path: PathLike,
                     compact: bool = False) -> None:
    """Write a lossless JSON serialization of ``report``.

    ``compact=True`` drops indentation and inter-token whitespace —
    roughly halves the file for large sample logs, and loads back
    identically.
    """
    samples = report.samples
    if isinstance(samples, SampleColumns):
        # Columnar fast path: transpose the typed columns directly into
        # the JSON row dicts instead of materializing Sample objects.
        names = samples.names
        sample_docs = [
            {"timestamp": timestamp, "values": dict(zip(names, row))}
            for timestamp, row in zip(samples.timestamps,
                                      zip(*samples.columns))
        ]
    else:
        sample_docs = [
            {"timestamp": sample.timestamp, "values": dict(sample.values)}
            for sample in samples
        ]
    document = {
        "format_version": _FORMAT_VERSION,
        "tool": report.tool,
        "events": list(report.events),
        "period_ns": report.period_ns,
        "victim_wall_ns": report.victim_wall_ns,
        "victim_pid": report.victim_pid,
        "totals": dict(report.totals),
        "metadata": dict(report.metadata),
        "samples": sample_docs,
    }
    if report.control is not None:
        # Only adaptive runs carry a control ledger; omitting the key
        # otherwise keeps non-adaptive documents byte-identical to the
        # pre-control format.
        document["control"] = [dict(row) for row in report.control]
    if compact:
        text = json.dumps(document, separators=(",", ":"))
    else:
        text = json.dumps(document, indent=2)
    Path(path).write_text(text)


def load_report_json(path: PathLike) -> ToolReport:
    """Read a report previously written by :func:`save_report_json`."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ReportIOError(f"cannot read report from {path}: {error}") from error
    version = document.get("format_version")
    if version != _FORMAT_VERSION:
        raise ReportIOError(
            f"unsupported report format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    try:
        samples = [
            Sample(timestamp=int(entry["timestamp"]),
                   values={name: int(value)
                           for name, value in entry["values"].items()})
            for entry in document["samples"]
        ]
        return ToolReport(
            tool=document["tool"],
            events=list(document["events"]),
            period_ns=int(document["period_ns"]),
            samples=samples,
            totals={name: float(value)
                    for name, value in document["totals"].items()},
            victim_wall_ns=int(document["victim_wall_ns"]),
            victim_pid=int(document["victim_pid"]),
            metadata={name: float(value)
                      for name, value in document.get("metadata", {}).items()},
            control=document.get("control"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ReportIOError(f"malformed report document: {error}") from error


def save_samples_csv(report: ToolReport, path: PathLike) -> None:
    """Write the sample series as CSV (K-LEB's on-disk log layout).

    Columns: ``timestamp_ns`` followed by one column per event present
    in the first sample.
    """
    if not report.samples:
        raise ReportIOError("report has no samples to write")
    samples = report.samples
    # One buffered writerows call: the controller can log hundreds of
    # thousands of samples, and per-row writerow round-trips through
    # the csv module dominate the write otherwise.
    with open(path, "w", newline="", buffering=1 << 16) as handle:
        writer = csv.writer(handle)
        if isinstance(samples, SampleColumns):
            # Columnar fast path: zip the typed columns straight into
            # rows — same sorted layout, no Sample/dict per row.
            columns = sorted(samples.names)
            writer.writerow(["timestamp_ns"] + columns)
            writer.writerows(zip(samples.timestamps,
                                 *(samples.column(name)
                                   for name in columns)))
            return
        columns = sorted(samples[0].values)
        writer.writerow(["timestamp_ns"] + columns)
        writer.writerows(
            [sample.timestamp]
            + [sample.values.get(name, 0) for name in columns]
            for sample in samples
        )


def load_samples_csv(path: PathLike) -> List[Sample]:
    """Read a CSV sample log back into :class:`Sample` objects."""
    try:
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if not header or header[0] != "timestamp_ns":
                raise ReportIOError(f"{path}: not a sample log (bad header)")
            columns = header[1:]
            samples = []
            for row in reader:
                samples.append(Sample(
                    timestamp=int(row[0]),
                    values={name: int(value)
                            for name, value in zip(columns, row[1:])},
                ))
            return samples
    except OSError as error:
        raise ReportIOError(f"cannot read {path}: {error}") from error
    except ValueError as error:
        raise ReportIOError(f"{path}: malformed sample row: {error}") from error


def load_trace_events(path: PathLike) -> List[Dict[str, object]]:
    """Read trace events from a Chrome-trace or JSONL file.

    Accepts both formats the tracer writes: the Perfetto document
    (``{"traceEvents": [...]}`` — metadata ``M`` events included) and
    JSONL (one event object per line), plain or gzipped (``.gz``).
    """
    try:
        text = read_artifact_text(path)
    except OSError as error:
        raise ReportIOError(f"cannot read trace from {path}: {error}") from error
    try:
        if effective_suffix(path) == ".jsonl":
            return [json.loads(line) for line in text.splitlines() if line]
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ReportIOError(f"{path}: malformed trace: {error}") from error
    events = document.get("traceEvents") if isinstance(document, dict) \
        else document
    if not isinstance(events, list):
        raise ReportIOError(f"{path}: not a trace-event document")
    return events


def load_metrics(path: PathLike) -> Dict[str, Dict[str, object]]:
    """Read a metrics file (Prometheus text or the JSON document,
    plain or gzipped) into the ``{name: {kind, samples}}`` shape of
    :func:`repro.obs.metrics.parse_prometheus_text`."""
    from repro.obs.metrics import MetricsRegistry, parse_prometheus_text

    try:
        text = read_artifact_text(path)
    except OSError as error:
        raise ReportIOError(f"cannot read metrics from {path}: {error}") from error
    if effective_suffix(path) == ".json":
        try:
            registry = MetricsRegistry.from_json(json.loads(text))
        except (json.JSONDecodeError, ReproError) as error:
            raise ReportIOError(f"{path}: malformed metrics: {error}") from error
        return parse_prometheus_text(registry.to_prometheus())
    try:
        return parse_prometheus_text(text)
    except ReproError as error:
        raise ReportIOError(f"{path}: malformed metrics: {error}") from error
