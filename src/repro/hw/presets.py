"""Machine presets matching the paper's two evaluation platforms.

The paper ran locally on an Intel Core i7-920 (Nehalem, 2.67 GHz) and
verified results on an AWS Intel Xeon Platinum 8259CL (Cascade Lake,
2.50 GHz).  Counts differed by < 1 % for architectural events while
cache-event magnitudes shifted with the cache structure — our presets
reproduce exactly that: same core model, different cache geometry.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.hw.cache import CacheConfig
from repro.hw.machine import Machine, MachineConfig


def i7_920() -> MachineConfig:
    """Intel Core i7-920 analogue (Nehalem): 32K/256K/8M caches, 2.67 GHz."""
    return MachineConfig(
        name="i7-920",
        frequency_hz=2.67e9,
        cache_levels=[
            CacheConfig("L1D", 32 * 1024, ways=8, hit_latency_cycles=4),
            CacheConfig("L2", 256 * 1024, ways=8, hit_latency_cycles=11),
            CacheConfig("LLC", 8 * 1024 * 1024, ways=16, hit_latency_cycles=39),
        ],
        memory_latency_cycles=200,
    )


def xeon_8259cl() -> MachineConfig:
    """Intel Xeon Platinum 8259CL analogue (Cascade Lake): bigger L2,
    larger (but here per-core-slice comparable) LLC, 2.50 GHz."""
    return MachineConfig(
        name="xeon-8259cl",
        frequency_hz=2.50e9,
        cache_levels=[
            CacheConfig("L1D", 32 * 1024, ways=8, hit_latency_cycles=4),
            CacheConfig("L2", 1024 * 1024, ways=16, hit_latency_cycles=14),
            CacheConfig("LLC", 16 * 1024 * 1024, ways=16, hit_latency_cycles=44),
        ],
        memory_latency_cycles=220,
    )


PRESETS: Dict[str, Callable[[], MachineConfig]] = {
    "i7-920": i7_920,
    "xeon-8259cl": xeon_8259cl,
}


def build(name: str) -> Machine:
    """Instantiate a preset machine by name."""
    try:
        factory = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown machine preset {name!r} (known: {known})") from None
    return Machine(factory())
