"""Hardware event catalogue.

Mirrors the structure of the Intel event tables: each event has a
select code and unit mask (the pair a tool writes into an
``IA32_PERFEVTSELx`` register), and a kind flag distinguishing
*architectural* events — stable, deterministic counts such as
instructions retired, loads, stores, branches — from
*microarchitectural* events whose counts depend on machine state
(cache misses, branch mispredictions).  The paper's Fig. 9 leans on
this distinction: cross-tool count comparison is done on architectural
events because they are reproducible across runs and processors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import PMUError


class EventKind(enum.Enum):
    """Stability class of a hardware event."""

    ARCHITECTURAL = "architectural"
    MICROARCHITECTURAL = "microarchitectural"


@dataclass(frozen=True)
class Event:
    """A hardware event selectable on a programmable counter.

    Attributes:
        name: canonical name used throughout the package.
        select: event-select code (what goes in PERFEVTSEL bits 0-7).
        umask: unit mask (PERFEVTSEL bits 8-15).
        kind: architectural vs microarchitectural.
        description: human-readable summary.
    """

    name: str
    select: int
    umask: int
    kind: EventKind
    description: str

    @property
    def code(self) -> int:
        """Packed (umask << 8) | select code as written to an MSR."""
        return (self.umask << 8) | self.select


def _arch(name: str, select: int, umask: int, description: str) -> Event:
    return Event(name, select, umask, EventKind.ARCHITECTURAL, description)


def _uarch(name: str, select: int, umask: int, description: str) -> Event:
    return Event(name, select, umask, EventKind.MICROARCHITECTURAL, description)


# Select/umask codes follow the Intel architectural performance
# monitoring encodings where one exists; the remainder use stable
# synthetic codes in the 0xC0-0xFF range.
EVENT_CATALOGUE: Dict[str, Event] = {
    event.name: event
    for event in [
        _arch("INST_RETIRED", 0xC0, 0x00, "Instructions retired"),
        _arch("CORE_CYCLES", 0x3C, 0x00, "Unhalted core clock cycles"),
        _arch("REF_CYCLES", 0x3C, 0x01, "Unhalted reference (TSC-rate) cycles"),
        _arch("BRANCHES", 0xC4, 0x00, "Branch instructions retired"),
        _arch("LOADS", 0xD0, 0x81, "Load instructions retired"),
        _arch("STORES", 0xD0, 0x82, "Store instructions retired"),
        _arch("ARITH_MUL", 0x14, 0x01, "Arithmetic multiply operations"),
        _arch("FP_OPS", 0x10, 0x01, "Floating-point operations"),
        _uarch("BRANCH_MISSES", 0xC5, 0x00, "Mispredicted branches retired"),
        _uarch("LLC_REFERENCES", 0x2E, 0x4F, "Last-level cache references"),
        _uarch("LLC_MISSES", 0x2E, 0x41, "Last-level cache misses"),
        _uarch("L1D_MISSES", 0x51, 0x01, "L1 data cache misses"),
        _uarch("L2_MISSES", 0x24, 0xAA, "L2 cache misses"),
        _uarch("DTLB_MISSES", 0x49, 0x01, "Data TLB misses"),
        _uarch("STALL_CYCLES", 0xA2, 0x01, "Resource stall cycles"),
        _uarch("CACHE_FLUSHES", 0xF8, 0x01, "Cache line flush operations"),
    ]
}

# Events pinned to the three fixed-function counters, in counter order
# (IA32_FIXED_CTR0..2): instructions retired, unhalted core cycles,
# unhalted reference cycles.
FIXED_EVENTS: Tuple[str, str, str] = ("INST_RETIRED", "CORE_CYCLES", "REF_CYCLES")

_BY_CODE: Dict[int, Event] = {event.code: event for event in EVENT_CATALOGUE.values()}


def lookup(name: str) -> Event:
    """Return the catalogue entry for ``name`` or raise :class:`PMUError`."""
    try:
        return EVENT_CATALOGUE[name]
    except KeyError:
        raise PMUError(f"unknown hardware event {name!r}") from None


def lookup_code(code: int) -> Event:
    """Return the event whose packed select/umask code is ``code``."""
    try:
        return _BY_CODE[code]
    except KeyError:
        raise PMUError(f"no event with select/umask code {code:#06x}") from None


def architectural_events() -> Tuple[str, ...]:
    """Names of all architectural (deterministic) events."""
    return tuple(
        name
        for name, event in EVENT_CATALOGUE.items()
        if event.kind is EventKind.ARCHITECTURAL
    )
