"""Hardware event catalogue.

Mirrors the structure of the Intel event tables: each event has a
select code and unit mask (the pair a tool writes into an
``IA32_PERFEVTSELx`` register), and a kind flag distinguishing
*architectural* events — stable, deterministic counts such as
instructions retired, loads, stores, branches — from
*microarchitectural* events whose counts depend on machine state
(cache misses, branch mispredictions).  The paper's Fig. 9 leans on
this distinction: cross-tool count comparison is done on architectural
events because they are reproducible across runs and processors.

The catalogue itself is data-driven: entries are built from the
committed table in :mod:`repro.hw.event_table` (likwid's
``pm_arch_events`` / rust-perfcnt descriptor style), and each carries
the counter-placement constraints the scheduler in
:mod:`repro.hw.schedule` solves against — a programmable-counter
legality bit-mask plus optional fixed-counter pinning.  Building the
catalogue validates it: duplicate names or duplicate packed
select/umask codes raise :class:`~repro.errors.PMUError` naming both
offending events rather than silently shadowing one (the failure mode
of a plain dict comprehension).
"""

from __future__ import annotations

import difflib
import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import PMUError
from repro.hw.event_table import RAW_EVENT_TABLE, Row


class EventKind(enum.Enum):
    """Stability class of a hardware event."""

    ARCHITECTURAL = "architectural"
    MICROARCHITECTURAL = "microarchitectural"


_KIND_BY_TAG = {"arch": EventKind.ARCHITECTURAL,
                "uarch": EventKind.MICROARCHITECTURAL}


@dataclass(frozen=True)
class Event:
    """A hardware event selectable on a programmable counter.

    Attributes:
        name: canonical name used throughout the package.
        select: event-select code (what goes in PERFEVTSEL bits 0-7).
        umask: unit mask (PERFEVTSEL bits 8-15).
        kind: architectural vs microarchitectural.
        description: human-readable summary.
        counter_mask: bit-mask of programmable counters the event may
            be scheduled on (bit ``i`` set = IA32_PMCi is legal).
        fixed_counter: index of the fixed-function counter the event is
            pinned to, or ``None`` for programmable-only events.
    """

    name: str
    select: int
    umask: int
    kind: EventKind
    description: str
    counter_mask: int = 0b1111
    fixed_counter: Optional[int] = None

    @property
    def code(self) -> int:
        """Packed (umask << 8) | select code as written to an MSR."""
        return (self.umask << 8) | self.select

    def allows_counter(self, index: int) -> bool:
        """Whether programmable counter ``index`` may host this event."""
        return bool(self.counter_mask & (1 << index))


def _event_from_row(row: Row) -> Event:
    name, select, umask, kind_tag, counter_mask, fixed_counter, desc = row
    try:
        kind = _KIND_BY_TAG[kind_tag]
    except KeyError:
        raise PMUError(
            f"event {name!r} has unknown kind {kind_tag!r} "
            f"(expected one of {sorted(_KIND_BY_TAG)})") from None
    return Event(name=name, select=select, umask=umask, kind=kind,
                 description=desc, counter_mask=counter_mask,
                 fixed_counter=fixed_counter)


def build_catalogue(rows: Iterable[Row]) -> Dict[str, Event]:
    """Build and validate the name -> :class:`Event` catalogue.

    Raises :class:`~repro.errors.PMUError` on a duplicate event name or
    a duplicate packed select/umask code, naming both colliding entries
    — a plain dict comprehension would let the later entry silently
    shadow the earlier one, corrupting reverse (code -> event) lookups.
    """
    catalogue: Dict[str, Event] = {}
    by_code: Dict[int, Event] = {}
    for row in rows:
        event = _event_from_row(row)
        if event.name in catalogue:
            raise PMUError(
                f"duplicate event name {event.name!r} in catalogue")
        clash = by_code.get(event.code)
        if clash is not None:
            raise PMUError(
                f"events {clash.name!r} and {event.name!r} share packed "
                f"select/umask code {event.code:#06x} "
                f"(select={event.select:#04x}, umask={event.umask:#04x})")
        catalogue[event.name] = event
        by_code[event.code] = event
    return catalogue


EVENT_CATALOGUE: Dict[str, Event] = build_catalogue(RAW_EVENT_TABLE)

# Events pinned to the three fixed-function counters, in counter order
# (IA32_FIXED_CTR0..2): instructions retired, unhalted core cycles,
# unhalted reference cycles.  Derived from the table's pinning column.
FIXED_EVENTS: Tuple[str, ...] = tuple(
    event.name
    for event in sorted(
        (e for e in EVENT_CATALOGUE.values() if e.fixed_counter is not None),
        key=lambda e: e.fixed_counter,
    )
)

_BY_CODE: Dict[int, Event] = {
    event.code: event for event in EVENT_CATALOGUE.values()
}


def suggest(name: str, limit: int = 3) -> Tuple[str, ...]:
    """Closest catalogue names to ``name``, best first (may be empty)."""
    return tuple(difflib.get_close_matches(
        name.upper(), EVENT_CATALOGUE, n=limit, cutoff=0.6))


def lookup(name: str) -> Event:
    """Return the catalogue entry for ``name`` or raise :class:`PMUError`.

    The error message carries closest-match suggestions so a typo'd
    ``--events`` request is recoverable without digging out the table.
    """
    try:
        return EVENT_CATALOGUE[name]
    except KeyError:
        hints = suggest(name)
        detail = f"unknown hardware event {name!r}"
        if hints:
            detail += " (did you mean: " + ", ".join(hints) + "?)"
        raise PMUError(detail) from None


def lookup_code(code: int) -> Event:
    """Return the event whose packed select/umask code is ``code``."""
    try:
        return _BY_CODE[code]
    except KeyError:
        raise PMUError(f"no event with select/umask code {code:#06x}") from None


def architectural_events() -> Tuple[str, ...]:
    """Names of all architectural (deterministic) events."""
    return tuple(
        name
        for name, event in EVENT_CATALOGUE.items()
        if event.kind is EventKind.ARCHITECTURAL
    )


def events_by_kind() -> Dict[EventKind, List[Event]]:
    """The catalogue grouped by kind, each group in table order."""
    groups: Dict[EventKind, List[Event]] = {kind: [] for kind in EventKind}
    for event in EVENT_CATALOGUE.values():
        groups[event.kind].append(event)
    return groups
