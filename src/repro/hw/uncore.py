"""Uncore (per-socket) performance monitoring: IMC bandwidth counters.

Real Intel server parts expose memory traffic through *uncore* PMUs —
fixed-function and programmable counters in the integrated memory
controller (IMC) and CHA boxes, outside any core.  K-LEB-style tools
read them to attribute bandwidth to the socket while per-core PMUs
attribute instructions and cache misses to tasks.

The model here is deliberately small but structurally faithful:

* A private mini-catalogue of :class:`~repro.hw.events.Event` objects
  (CAS read/write, LLC lookup/miss) with *restricted counter masks*,
  placed onto the uncore's programmable counters by the same
  constraint scheduler (:func:`repro.hw.schedule.assign_counters`) the
  core PMU uses — uncore boxes have the same "this event only counts
  on counters 0/1" erratum class as the core.
* 48-bit wrapping counters with a sticky overflow latch, mirroring
  :class:`repro.hw.pmu.Pmu` semantics.
* Traffic is fed per lockstep window from the shared LLC's miss delta
  (every LLC miss is a line fill from DRAM = one CAS read); writeback
  traffic is modelled as a configurable fraction of reads, carried in
  a fractional accumulator so the count stream is deterministic.
* Bandwidth is exposed both raw (last window) and EWMA-smoothed, the
  shape monitoring dashboards actually consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PMUError
from repro.hw import events as ev
from repro.hw import schedule as sched

#: Programmable counters per uncore box (IMC-style: fewer than core).
NUM_UNCORE_COUNTERS = 4

#: Bytes moved per CAS transaction (one cache line).
CACHE_LINE_BYTES = 64

_UNCORE_KIND = ev.EventKind.MICROARCHITECTURAL

#: The uncore event mini-catalogue.  CAS events carry a restricted
#: counter mask (legal only on counters 0/1, like real IMC errata);
#: LLC events may land anywhere.
UNCORE_EVENTS: Tuple[ev.Event, ...] = (
    ev.Event(name="UNC_IMC_CAS_READS", select=0x04, umask=0x03,
             kind=_UNCORE_KIND, counter_mask=0b0011,
             description="IMC column-address-strobe read transactions"),
    ev.Event(name="UNC_IMC_CAS_WRITES", select=0x04, umask=0x0C,
             kind=_UNCORE_KIND, counter_mask=0b0011,
             description="IMC column-address-strobe write transactions"),
    ev.Event(name="UNC_LLC_LOOKUPS", select=0x34, umask=0x11,
             kind=_UNCORE_KIND, counter_mask=0b1111,
             description="Shared-LLC lookups from any core"),
    ev.Event(name="UNC_LLC_MISSES", select=0x34, umask=0x41,
             kind=_UNCORE_KIND, counter_mask=0b1111,
             description="Shared-LLC misses (DRAM line fills)"),
)


class UncorePmu:
    """Per-socket bandwidth counters with EWMA-smoothed readout.

    Args:
        socket: socket index (labelling only).
        ewma_alpha: smoothing weight of the newest window's bandwidth.
        writeback_fraction: modelled dirty-line writeback traffic as a
            fraction of read (fill) traffic.
        counter_width_bits: wrap width; 48 matches core counters, tests
            narrow it to exercise wrap accounting cheaply.
    """

    def __init__(self, socket: int = 0, ewma_alpha: float = 0.2,
                 writeback_fraction: float = 0.3,
                 counter_width_bits: int = 48) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise PMUError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if not 0.0 <= writeback_fraction <= 1.0:
            raise PMUError(
                "writeback_fraction must be in [0, 1], "
                f"got {writeback_fraction}")
        if counter_width_bits <= 0:
            raise PMUError(
                f"counter width must be positive, got {counter_width_bits}")
        self.socket = socket
        self.ewma_alpha = ewma_alpha
        self.writeback_fraction = writeback_fraction
        self.counter_width_bits = counter_width_bits
        self._wrap = 1 << counter_width_bits
        self.assignment: Optional[sched.CounterAssignment] = None
        self._events_by_name: Dict[str, ev.Event] = {}
        self._counters: List[int] = [0] * NUM_UNCORE_COUNTERS
        self._overflow: List[bool] = [False] * NUM_UNCORE_COUNTERS
        self._wb_acc = 0.0
        self._last_bytes_per_sec = 0.0
        self._smoothed: Optional[float] = None
        self.windows_observed = 0
        self.program()

    # -- programming -----------------------------------------------------
    def program(self, events: Sequence[ev.Event] = UNCORE_EVENTS) -> None:
        """Place ``events`` onto the uncore counters.

        Goes through :func:`repro.hw.schedule.assign_counters` so the
        restricted counter masks are honoured and impossible requests
        fail with the scheduler's Hall-violator diagnostic.
        """
        self.assignment = sched.assign_counters(
            list(events), num_programmable=NUM_UNCORE_COUNTERS)
        self._events_by_name = {event.name: event for event in events}
        self._counters = [0] * NUM_UNCORE_COUNTERS
        self._overflow = [False] * NUM_UNCORE_COUNTERS

    def slot_of(self, name: str) -> int:
        if self.assignment is None:
            raise PMUError("uncore PMU is not programmed")
        return self.assignment.slot_of(name)

    # -- counter readout -------------------------------------------------
    def read_counter(self, slot: int) -> int:
        return self._counters[slot]

    def read_event(self, name: str) -> int:
        return self._counters[self.slot_of(name)]

    def consume_overflow(self, slot: int) -> bool:
        """Sticky overflow latch; cleared by reading it."""
        latched = self._overflow[slot]
        self._overflow[slot] = False
        return latched

    def totals(self) -> Dict[str, int]:
        """Current counter value per programmed event name."""
        if self.assignment is None:
            return {}
        return {name: self._counters[slot]
                for name, slot in self.assignment.programmable}

    def _add(self, name: str, amount: int) -> None:
        if amount <= 0 or name not in self._events_by_name:
            return
        slot = self.slot_of(name)
        value = self._counters[slot] + amount
        if value >= self._wrap:
            value -= self._wrap
            self._overflow[slot] = True
        self._counters[slot] = value

    # -- traffic feed ----------------------------------------------------
    def advance_window(self, elapsed_ns: int, llc_misses: int,
                       llc_lookups: int) -> None:
        """Account one lockstep window of socket traffic.

        ``llc_misses``/``llc_lookups`` are the shared LLC's deltas over
        the window.  Misses become CAS reads (line fills); writebacks
        are ``writeback_fraction`` of reads via a fractional accumulator
        so fractions never round away deterministically.
        """
        if elapsed_ns < 0:
            raise PMUError(f"elapsed_ns must be >= 0, got {elapsed_ns}")
        if llc_misses < 0 or llc_lookups < 0:
            raise PMUError("llc traffic deltas must be >= 0")
        reads = llc_misses
        self._wb_acc += reads * self.writeback_fraction
        writes = int(self._wb_acc)
        self._wb_acc -= writes
        self._add("UNC_IMC_CAS_READS", reads)
        self._add("UNC_IMC_CAS_WRITES", writes)
        self._add("UNC_LLC_LOOKUPS", llc_lookups)
        self._add("UNC_LLC_MISSES", llc_misses)
        self.windows_observed += 1
        if elapsed_ns > 0:
            transferred = (reads + writes) * CACHE_LINE_BYTES
            self._last_bytes_per_sec = transferred * 1e9 / elapsed_ns
            if self._smoothed is None:
                self._smoothed = self._last_bytes_per_sec
            else:
                alpha = self.ewma_alpha
                self._smoothed += alpha * (self._last_bytes_per_sec
                                           - self._smoothed)

    # -- bandwidth readout -----------------------------------------------
    @property
    def raw_bytes_per_sec(self) -> float:
        """Last window's unsmoothed bandwidth."""
        return self._last_bytes_per_sec

    @property
    def bandwidth_bytes_per_sec(self) -> float:
        """EWMA-smoothed socket memory bandwidth."""
        return self._smoothed if self._smoothed is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mb = self.bandwidth_bytes_per_sec / 1e6
        return f"UncorePmu(socket={self.socket}, {mb:.1f} MB/s)"
