"""The simulated machine: core + PMU + caches under one configuration.

The reproduction models a single time-shared core.  That is sufficient
(and faithful to the mechanism): the paper's overhead results come from
monitoring work competing with the monitored program for CPU time, which
a single-core run loop exposes directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.hw.cache import CacheConfig, CacheHierarchy, CacheLevel
from repro.hw.core import Core
from repro.hw.msr import MsrFile
from repro.hw.pmu import Pmu


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to instantiate a :class:`Machine`.

    Attributes:
        name: human-readable platform name.
        frequency_hz: core clock.
        cache_levels: geometry of the cache hierarchy, L1 first.
        memory_latency_cycles: DRAM access latency.
        tsc_ratio: reference-cycle to core-cycle ratio.
    """

    name: str
    frequency_hz: float
    cache_levels: List[CacheConfig] = field(default_factory=list)
    memory_latency_cycles: int = 200
    tsc_ratio: float = 1.0
    prefetch_next_line: bool = False


class Machine:
    """A configured single-core machine instance.

    ``shared_llc`` replaces the config's last cache level with a
    pre-built, shared :class:`~repro.hw.cache.CacheLevel` — the building
    block for multi-core clusters where private L1/L2 sit in front of
    one last-level cache (see :mod:`repro.apps.smp`).
    """

    def __init__(self, config: MachineConfig,
                 shared_llc: "CacheLevel" = None) -> None:
        self.config = config
        self.msrs = MsrFile()
        self.pmu = Pmu(self.msrs)
        levels = list(config.cache_levels)
        if shared_llc is not None:
            levels = levels[:-1]
        self.cache = CacheHierarchy(
            levels,
            memory_latency_cycles=config.memory_latency_cycles,
            prefetch_next_line=config.prefetch_next_line,
            shared_llc=shared_llc,
        )
        self.core = Core(
            frequency_hz=config.frequency_hz,
            pmu=self.pmu,
            cache=self.cache,
            tsc_ratio=config.tsc_ratio,
        )

    @property
    def name(self) -> str:
        return self.config.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ghz = self.config.frequency_hz / 1e9
        return f"Machine({self.config.name!r} @ {ghz:.2f} GHz)"
