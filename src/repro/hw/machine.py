"""The simulated machine: core + PMU + caches under one configuration.

The base unit is a single time-shared core — sufficient (and faithful
to the mechanism) for the paper's overhead results, which come from
monitoring work competing with the monitored program for CPU time.

:class:`Topology` and :class:`SmpMachine` compose cores into sockets:
each core gets a private :class:`Machine` (own MSR file, PMU and
L1/L2), each socket shares one last-level cache and one
:class:`~repro.hw.uncore.UncorePmu` observing memory traffic behind it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import SimulationError
from repro.hw.cache import CacheConfig, CacheHierarchy, CacheLevel
from repro.hw.core import Core
from repro.hw.msr import MsrFile
from repro.hw.pmu import Pmu
from repro.hw.uncore import UncorePmu


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to instantiate a :class:`Machine`.

    Attributes:
        name: human-readable platform name.
        frequency_hz: core clock.
        cache_levels: geometry of the cache hierarchy, L1 first.
        memory_latency_cycles: DRAM access latency.
        tsc_ratio: reference-cycle to core-cycle ratio.
    """

    name: str
    frequency_hz: float
    cache_levels: List[CacheConfig] = field(default_factory=list)
    memory_latency_cycles: int = 200
    tsc_ratio: float = 1.0
    prefetch_next_line: bool = False


class Machine:
    """A configured single-core machine instance.

    ``shared_llc`` replaces the config's last cache level with a
    pre-built, shared :class:`~repro.hw.cache.CacheLevel` — the building
    block for multi-core clusters where private L1/L2 sit in front of
    one last-level cache (see :mod:`repro.apps.smp`).
    """

    def __init__(self, config: MachineConfig,
                 shared_llc: "CacheLevel" = None) -> None:
        self.config = config
        self.msrs = MsrFile()
        self.pmu = Pmu(self.msrs)
        levels = list(config.cache_levels)
        if shared_llc is not None:
            levels = levels[:-1]
        self.cache = CacheHierarchy(
            levels,
            memory_latency_cycles=config.memory_latency_cycles,
            prefetch_next_line=config.prefetch_next_line,
            shared_llc=shared_llc,
        )
        self.core = Core(
            frequency_hz=config.frequency_hz,
            pmu=self.pmu,
            cache=self.cache,
            tsc_ratio=config.tsc_ratio,
        )

    @property
    def name(self) -> str:
        return self.config.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ghz = self.config.frequency_hz / 1e9
        return f"Machine({self.config.name!r} @ {ghz:.2f} GHz)"


@dataclass(frozen=True)
class Topology:
    """Socket/core layout of an SMP machine.

    CPU ids are dense: cpu ``i`` lives on socket ``i // cores_per_socket``.
    """

    sockets: int = 1
    cores_per_socket: int = 2

    def __post_init__(self) -> None:
        if self.sockets <= 0:
            raise SimulationError(
                f"topology needs at least one socket, got {self.sockets}")
        if self.cores_per_socket <= 0:
            raise SimulationError(
                "topology needs at least one core per socket, "
                f"got {self.cores_per_socket}")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def socket_of(self, cpu: int) -> int:
        """Socket hosting ``cpu`` (range-checked)."""
        if not 0 <= cpu < self.total_cores:
            raise SimulationError(
                f"cpu {cpu} outside topology of {self.total_cores} cores")
        return cpu // self.cores_per_socket

    def cores_in(self, socket: int) -> Tuple[int, ...]:
        """CPU ids on ``socket``."""
        if not 0 <= socket < self.sockets:
            raise SimulationError(
                f"socket {socket} outside topology of {self.sockets} sockets")
        base = socket * self.cores_per_socket
        return tuple(range(base, base + self.cores_per_socket))


class SmpMachine:
    """Per-core :class:`Machine` instances composed under a topology.

    Every core owns a private MSR file, PMU, and L1..Ln-1; the config's
    *last* cache level is instantiated once per socket and shared by
    that socket's cores.  Each socket also carries an
    :class:`~repro.hw.uncore.UncorePmu` fed from its shared LLC's miss
    traffic (the IMC sits behind the LLC).
    """

    def __init__(self, config: MachineConfig,
                 topology: Topology = Topology()) -> None:
        if len(config.cache_levels) < 2:
            raise SimulationError(
                "an SMP machine needs >= 2 cache levels (private levels "
                "in front of the shared LLC)")
        self.config = config
        self.topology = topology
        self.llcs: List[CacheLevel] = [
            CacheLevel(config.cache_levels[-1])
            for _ in range(topology.sockets)
        ]
        self.uncores: List[UncorePmu] = [
            UncorePmu(socket=socket) for socket in range(topology.sockets)
        ]
        self.machines: List[Machine] = [
            Machine(config, shared_llc=self.llcs[topology.socket_of(cpu)])
            for cpu in range(topology.total_cores)
        ]

    @property
    def total_cores(self) -> int:
        return self.topology.total_cores

    def machine(self, cpu: int) -> Machine:
        return self.machines[cpu]

    def llc_of(self, cpu: int) -> CacheLevel:
        return self.llcs[self.topology.socket_of(cpu)]

    def uncore_of(self, cpu: int) -> UncorePmu:
        return self.uncores[self.topology.socket_of(cpu)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SmpMachine({self.config.name!r}, "
                f"{self.topology.sockets}x{self.topology.cores_per_socket})")
