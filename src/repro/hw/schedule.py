"""Counter-constraint scheduling for hardware events.

Real PMU drivers do not place events on counters by position: each
event carries a legality mask (which programmable counters can host
it) and some events are pinned to fixed-function counters.  This
module solves that placement problem the way perf's event scheduler
does, in two layers:

* :func:`assign_counters` maps one event set onto the counters of a
  single PMU "window", or raises :class:`~repro.errors.ScheduleError`
  with a diagnostic naming the exact unsatisfiable constraint (the
  Hall-condition violator: *k* events competing for fewer than *k*
  legal counters).
* :func:`plan_groups` splits an oversubscribed request into a rotation
  schedule — an ordered list of groups, each individually placeable —
  for perf-style time-multiplexing, plus the fixed-pinned events that
  count continuously and never rotate.

:func:`scaled_estimate` is the companion accounting rule: a rotated
event observed for ``time_running`` out of ``time_enabled``
nanoseconds extrapolates linearly, ``count * enabled / running`` —
exactly what ``perf stat`` reports as a percentage-scaled count.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ScheduleError
from repro.hw import events as ev
from repro.hw.pmu import NUM_FIXED, NUM_PROGRAMMABLE

EventSpec = Union[str, ev.Event]


def _resolve(spec: EventSpec) -> ev.Event:
    return spec if isinstance(spec, ev.Event) else ev.lookup(spec)


@dataclass(frozen=True)
class CounterAssignment:
    """A legal placement of one event group onto PMU counters.

    Attributes:
        fixed: (event name, fixed counter index) pairs, counter order.
        programmable: (event name, programmable counter index) pairs in
            request order; indices respect each event's counter mask.
    """

    fixed: Tuple[Tuple[str, int], ...]
    programmable: Tuple[Tuple[str, int], ...]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.fixed + self.programmable)

    def slot_of(self, name: str) -> int:
        """Programmable counter index hosting ``name``."""
        for event_name, index in self.programmable:
            if event_name == name:
                return index
        raise KeyError(name)


def _legal_slots(event: ev.Event, num_programmable: int) -> Tuple[int, ...]:
    return tuple(index for index in range(num_programmable)
                 if event.allows_counter(index))


def _hall_violator(events: Sequence[ev.Event],
                   num_programmable: int) -> Optional[Tuple[ev.Event, ...]]:
    """Smallest event subset with fewer legal counters than members.

    By Hall's marriage theorem such a subset exists exactly when no
    assignment does, so it *is* the unsatisfiable constraint; with at
    most ``num_programmable`` events per group the subset enumeration
    is trivially small.
    """
    for size in range(1, len(events) + 1):
        for subset in combinations(events, size):
            legal = set()
            for event in subset:
                legal.update(_legal_slots(event, num_programmable))
            if len(legal) < size:
                return subset
    return None


def assign_counters(requested: Sequence[EventSpec],
                    num_programmable: int = NUM_PROGRAMMABLE,
                    ) -> CounterAssignment:
    """Place ``requested`` onto legal counters for one PMU window.

    Fixed-pinned events go to their fixed-function counters and do not
    consume programmable slots.  The remaining events are matched to
    programmable counters by backtracking search that visits events in
    request order and counters in ascending index, so an unconstrained
    request reproduces the historical positional layout (event *i* on
    counter *i*) exactly.

    Raises:
        ScheduleError: naming the precise unsatisfiable constraint —
            either more events than counters, or the event subset whose
            combined legality mask is too small.
    """
    events = [_resolve(spec) for spec in requested]
    seen: Dict[str, ev.Event] = {}
    for event in events:
        if event.name in seen:
            raise ScheduleError(f"event {event.name!r} requested twice")
        seen[event.name] = event

    fixed: List[Tuple[str, int]] = []
    fixed_used: Dict[int, str] = {}
    prog_events: List[ev.Event] = []
    for event in events:
        if event.fixed_counter is not None:
            holder = fixed_used.get(event.fixed_counter)
            if holder is not None:
                raise ScheduleError(
                    f"events {holder!r} and {event.name!r} are both pinned "
                    f"to fixed counter {event.fixed_counter}")
            if not 0 <= event.fixed_counter < NUM_FIXED:
                raise ScheduleError(
                    f"event {event.name!r} pinned to nonexistent fixed "
                    f"counter {event.fixed_counter}")
            fixed_used[event.fixed_counter] = event.name
            fixed.append((event.name, event.fixed_counter))
        else:
            prog_events.append(event)
    fixed.sort(key=lambda pair: pair[1])

    if len(prog_events) > num_programmable:
        names = ", ".join(event.name for event in prog_events)
        raise ScheduleError(
            f"{len(prog_events)} events ({names}) need programmable "
            f"counters but only {num_programmable} exist; rotate them "
            f"with time-multiplexing (plan_groups / --multiplex)")

    assignment: Dict[str, int] = {}
    used = [False] * num_programmable

    def place(position: int) -> bool:
        if position == len(prog_events):
            return True
        event = prog_events[position]
        for index in _legal_slots(event, num_programmable):
            if used[index]:
                continue
            used[index] = True
            assignment[event.name] = index
            if place(position + 1):
                return True
            used[index] = False
            del assignment[event.name]
        return False

    if not place(0):
        violator = _hall_violator(prog_events, num_programmable)
        assert violator is not None  # no assignment implies a violator
        names = ", ".join(event.name for event in violator)
        masks = ", ".join(f"{event.name}={event.counter_mask:#06b}"
                          for event in violator)
        slots = sorted(set().union(*(
            _legal_slots(event, num_programmable) for event in violator)))
        raise ScheduleError(
            f"unsatisfiable counter constraint: events [{names}] allow "
            f"only counters {slots} between them ({masks}); "
            f"{len(violator)} events cannot share {len(slots)} counters")

    programmable = tuple((event.name, assignment[event.name])
                         for event in prog_events)
    return CounterAssignment(fixed=tuple(fixed), programmable=programmable)


@dataclass(frozen=True)
class GroupPlan:
    """A rotation schedule for an (possibly oversubscribed) event set.

    Attributes:
        fixed: pinned (event name, fixed counter) pairs — counted
            continuously, outside the rotation.
        groups: one :class:`CounterAssignment` per rotation window, in
            rotation order; each covers a disjoint slice of the request.
    """

    fixed: Tuple[Tuple[str, int], ...]
    groups: Tuple[CounterAssignment, ...]

    @property
    def multiplexed(self) -> bool:
        return len(self.groups) > 1

    @property
    def rotated_names(self) -> Tuple[str, ...]:
        return tuple(name for group in self.groups
                     for name, _ in group.programmable)


def plan_groups(requested: Sequence[EventSpec],
                num_programmable: int = NUM_PROGRAMMABLE) -> GroupPlan:
    """Partition ``requested`` into a time-multiplexing rotation.

    Greedy first-fit in request order, like perf's group scheduler: an
    event joins the current group if the group stays placeable, else it
    opens the next one.  A single event that is unplaceable on its own
    (empty or out-of-range mask) cannot be fixed by rotation and raises
    :class:`~repro.errors.ScheduleError` immediately.
    """
    events = [_resolve(spec) for spec in requested]
    pinned = [event for event in events if event.fixed_counter is not None]
    rotating = [event for event in events if event.fixed_counter is None]
    # Validate pinning conflicts (and get canonical fixed ordering).
    fixed = assign_counters(pinned, num_programmable).fixed

    groups: List[CounterAssignment] = []
    current: List[ev.Event] = []
    for event in rotating:
        try:
            candidate = assign_counters(current + [event], num_programmable)
        except ScheduleError:
            if not current:
                raise  # unplaceable alone: rotation cannot help
            groups.append(assign_counters(current, num_programmable))
            current = [event]
            candidate = assign_counters(current, num_programmable)
        else:
            current.append(event)
            continue
        del candidate  # placement re-checked when the group closes
    if current:
        groups.append(assign_counters(current, num_programmable))
    return GroupPlan(fixed=fixed, groups=tuple(groups))


def scaled_estimate(raw: float, time_enabled_ns: int,
                    time_running_ns: int) -> float:
    """perf-style multiplexing extrapolation.

    ``raw`` counts observed while the event's group was scheduled for
    ``time_running_ns`` out of ``time_enabled_ns`` scale linearly; an
    event that never ran estimates zero, and a group that was always
    running returns the raw count exactly (no float scaling applied).
    """
    if time_running_ns <= 0:
        return 0.0
    if time_running_ns >= time_enabled_ns:
        return raw
    return raw * (time_enabled_ns / time_running_ns)
