"""Model-specific register (MSR) file.

Tools in this reproduction program the PMU the way real drivers do: by
writing event-select and control values into MSRs.  Keeping an explicit
MSR layer (rather than a convenience API on the PMU) preserves the
register-level semantics the paper's tools rely on — e.g. LiMiT's
user-space ``rdpmc`` path versus PAPI's syscall-mediated reads.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.errors import MSRError

_MASK_64 = (1 << 64) - 1


class MSR(enum.IntEnum):
    """Addresses of the MSRs this model implements (Intel layout)."""

    IA32_PMC0 = 0x0C1
    IA32_PMC1 = 0x0C2
    IA32_PMC2 = 0x0C3
    IA32_PMC3 = 0x0C4
    IA32_PERFEVTSEL0 = 0x186
    IA32_PERFEVTSEL1 = 0x187
    IA32_PERFEVTSEL2 = 0x188
    IA32_PERFEVTSEL3 = 0x189
    IA32_FIXED_CTR0 = 0x309
    IA32_FIXED_CTR1 = 0x30A
    IA32_FIXED_CTR2 = 0x30B
    IA32_FIXED_CTR_CTRL = 0x38D
    IA32_PERF_GLOBAL_STATUS = 0x38E
    IA32_PERF_GLOBAL_CTRL = 0x38F
    IA32_PERF_GLOBAL_OVF_CTRL = 0x390
    IA32_TSC = 0x010


# Bit fields inside IA32_PERFEVTSELx.
EVTSEL_EVENT_MASK = 0x00FF
EVTSEL_UMASK_MASK = 0xFF00
EVTSEL_USR = 1 << 16   # count at user privilege
EVTSEL_OS = 1 << 17    # count at kernel privilege
EVTSEL_INT = 1 << 20   # interrupt on overflow
EVTSEL_EN = 1 << 22    # counter enable


class MsrFile:
    """A flat 64-bit register file with defined-address checking.

    Reads of undefined MSRs raise (matching the #GP fault real hardware
    delivers), keeping driver bugs loud in tests.
    """

    def __init__(self) -> None:
        self._regs: Dict[int, int] = {int(address): 0 for address in MSR}
        # Write-generation counter.  Consumers that compile derived
        # state from register contents (the PMU's accumulation plan)
        # cache it keyed on this version and recompile only when some
        # register actually changed.
        self.version = 0

    def read(self, address: int) -> int:
        """``rdmsr`` — read a 64-bit value."""
        try:
            return self._regs[int(address)]
        except KeyError:
            raise MSRError(f"rdmsr of undefined MSR {int(address):#x}") from None

    def write(self, address: int, value: int) -> None:
        """``wrmsr`` — write a 64-bit value (truncated to 64 bits)."""
        key = int(address)
        if key not in self._regs:
            raise MSRError(f"wrmsr to undefined MSR {key:#x}")
        self._regs[key] = int(value) & _MASK_64
        self.version += 1

    def set_bits(self, address: int, mask: int) -> None:
        """Read-modify-write OR of ``mask`` into the register."""
        self.write(address, self.read(address) | mask)

    def clear_bits(self, address: int, mask: int) -> None:
        """Read-modify-write AND-NOT of ``mask`` into the register."""
        self.write(address, self.read(address) & ~mask)
