"""Set-associative cache hierarchy.

Trace-driven workloads (the Meltdown case study, the Docker image
working sets) replay explicit memory accesses through this model, so
LLC reference/miss counts *emerge* from the access pattern rather than
being scripted.  The model implements:

* three levels (L1D, L2, LLC) of set-associative LRU caches;
* ``clflush`` (needed by the Flush+Reload side channel);
* per-access latency, used by the core to charge execution time;
* the event increments each access produces for the PMU.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CacheConfigError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_latency_cycles: int = 4

    def __post_init__(self) -> None:
        if self.ways <= 0:
            raise CacheConfigError(f"{self.name}: ways must be positive")
        if not _is_power_of_two(self.line_bytes):
            raise CacheConfigError(f"{self.name}: line size must be a power of two")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise CacheConfigError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )
        if not _is_power_of_two(self.num_sets):
            raise CacheConfigError(f"{self.name}: set count must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory access through the hierarchy."""

    hit_level: Optional[str]        # cache level name, or None for memory
    latency_cycles: int
    events: Dict[str, float]        # PMU event increments for this access


class CacheLevel:
    """One set-associative, LRU-replacement cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._set_mask = config.num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        self._tag_shift = self._set_mask.bit_length()
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address >> self._line_shift
        return line & self._set_mask, line >> self._tag_shift

    def lookup(self, address: int) -> bool:
        """Probe for ``address``; on hit, refresh LRU position."""
        set_index, tag = self._locate(address)
        entries = self._sets[set_index]
        if tag in entries:
            entries.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, address: int) -> Optional[int]:
        """Install the line for ``address``; return the evicted tag, if any."""
        set_index, tag = self._locate(address)
        entries = self._sets[set_index]
        evicted = None
        if tag not in entries and len(entries) >= self.config.ways:
            evicted, _ = entries.popitem(last=False)
        entries[tag] = True
        entries.move_to_end(tag)
        return evicted

    def invalidate(self, address: int) -> bool:
        """Drop the line holding ``address``; True if it was present."""
        set_index, tag = self._locate(address)
        return self._sets[set_index].pop(tag, None) is not None

    def contains(self, address: int) -> bool:
        """Non-perturbing presence check (does not update LRU or stats)."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def flush_all(self) -> None:
        """Empty the cache (e.g. at task teardown in tests)."""
        for entries in self._sets:
            entries.clear()

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently cached."""
        return sum(len(entries) for entries in self._sets)


@dataclass
class HierarchyStats:
    """Aggregate hit/miss statistics per level."""

    accesses: int = 0
    hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    flushes: int = 0
    prefetches: int = 0


class CacheHierarchy:
    """L1D -> L2 -> LLC lookup path with miss fills at every level.

    ``prefetch_next_line=True`` enables a simple next-line hardware
    prefetcher: a demand miss to memory also pulls the *following*
    cache line into every level.  Relevant to the Meltdown case study:
    the public PoC spaces its probe lines one page apart precisely so
    a next-line prefetcher cannot pollute the side channel — line-spaced
    probes would all "hit" after the first reload and leak nothing.
    """

    def __init__(self, levels: List[CacheConfig],
                 memory_latency_cycles: int = 200,
                 prefetch_next_line: bool = False,
                 shared_llc: Optional[CacheLevel] = None) -> None:
        """``shared_llc``: a pre-built :class:`CacheLevel` appended as
        the last level — pass the same object to several hierarchies to
        model cores (or co-located tenants) sharing an LLC.  Its config
        replaces the last entry of ``levels``; with ``shared_llc`` set,
        ``levels`` holds only the private levels."""
        if not levels and shared_llc is None:
            raise CacheConfigError("hierarchy needs at least one level")
        self.levels = [CacheLevel(config) for config in levels]
        if shared_llc is not None:
            self.levels.append(shared_llc)
        self.memory_latency_cycles = memory_latency_cycles
        self.prefetch_next_line = prefetch_next_line
        self.stats = HierarchyStats()
        # Pre-seed the stats dicts so the hot paths can use a plain
        # ``+= 1`` instead of get-or-default on every access.
        for level in self.levels:
            self.stats.hits[level.config.name] = 0
            self.stats.misses[level.config.name] = 0
        self.stats.misses["memory"] = 0
        self._llc = self.levels[-1]
        self._line_bytes = self.levels[0].config.line_bytes
        # Flattened per-level geometry for the hot path: probing through
        # these tuples avoids the chain of attribute loads per access.
        # Levels are fixed after construction (flush_all clears the set
        # dicts in place), so this never goes stale.
        self._descriptors = tuple(
            (level, level._line_shift, level._set_mask, level._tag_shift,
             level._sets, level.config.ways, level.config.name)
            for level in self.levels
        )
        self._num_levels = len(self.levels)

    def _prefetch(self, address: int) -> None:
        """Fill ``address``'s line into every level (no latency charged
        to the demand access — prefetches overlap with it)."""
        self.stats.prefetches += 1
        for level in self.levels:
            line = address >> level._line_shift
            set_index = line & level._set_mask
            tag = line >> level._tag_shift
            if tag not in level._sets[set_index]:
                level.fill(address)

    @property
    def llc(self) -> CacheLevel:
        """The last-level cache."""
        return self._llc

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Perform one load/store and return where it hit.

        Event semantics follow the Intel definitions used in the paper:
        ``LLC_REFERENCES`` counts accesses that reach the LLC (i.e. miss
        every earlier level); ``LLC_MISSES`` counts those that also miss
        the LLC.  ``L1D_MISSES``/``L2_MISSES`` count per-level misses.
        """
        self.stats.accesses += 1
        events: Dict[str, float] = {
            "LOADS" if not is_write else "STORES": 1.0,
        }
        missed_levels: List[CacheLevel] = []
        hit_level: Optional[CacheLevel] = None
        for level in self.levels:
            if level is self._llc:
                events["LLC_REFERENCES"] = 1.0
            if level.lookup(address):
                hit_level = level
                break
            missed_levels.append(level)
            miss_event = _MISS_EVENT.get(level.config.name)
            if miss_event is not None:
                events[miss_event] = 1.0

        if hit_level is not None:
            latency = hit_level.config.hit_latency_cycles
            name: Optional[str] = hit_level.config.name
            self.stats.hits[name] += 1
        else:
            latency = self.memory_latency_cycles
            name = None
            events["LLC_MISSES"] = 1.0
            self.stats.misses["memory"] += 1
        for level in missed_levels:
            level.fill(address)
            self.stats.misses[level.config.name] += 1
        if name is None and self.prefetch_next_line:
            self._prefetch(address + self._line_bytes)
        return AccessResult(hit_level=name, latency_cycles=latency, events=events)

    def access_fast(self, address: int) -> int:
        """Hot-path lookup: returns the hit level index (0-based) or
        ``len(levels)`` for a memory access.

        Semantically identical to :meth:`access` (LRU updates, fills,
        per-level hit/miss counters) but allocates nothing; callers
        accumulate event counts themselves.  Used by the core's trace
        executor where per-access object construction dominates.
        """
        stats = self.stats
        stats.accesses += 1
        descriptors = self._descriptors
        num_levels = self._num_levels
        hit_index = num_levels
        index = 0
        for level, line_shift, set_mask, tag_shift, sets, _ways, _name in \
                descriptors:
            line = address >> line_shift
            entries = sets[line & set_mask]
            tag = line >> tag_shift
            if tag in entries:
                entries.move_to_end(tag)
                level.hits += 1
                hit_index = index
                break
            level.misses += 1
            index += 1
        misses = stats.misses
        if hit_index < num_levels:
            stats.hits[descriptors[hit_index][6]] += 1
        else:
            misses["memory"] += 1
        for _level, line_shift, set_mask, tag_shift, sets, ways, name in \
                descriptors[:hit_index]:
            line = address >> line_shift
            entries = sets[line & set_mask]
            # The tag missed this level above, so the containment check
            # in CacheLevel.fill is settled: evict straight away if the
            # set is full, and a fresh insert is already MRU.
            if len(entries) >= ways:
                entries.popitem(last=False)
            entries[line >> tag_shift] = True
            misses[name] += 1
        if hit_index == num_levels and self.prefetch_next_line:
            self._prefetch(address + self._line_bytes)
        return hit_index

    def clflush(self, address: int) -> None:
        """Flush one line from every level (the Flush+Reload primitive)."""
        self.stats.flushes += 1
        for _level, line_shift, set_mask, tag_shift, sets, _ways, _name in \
                self._descriptors:
            line = address >> line_shift
            sets[line & set_mask].pop(line >> tag_shift, None)

    def contains(self, address: int) -> Optional[str]:
        """Name of the first level holding ``address`` (non-perturbing)."""
        for level in self.levels:
            if level.contains(address):
                return level.config.name
        return None

    def flush_all(self) -> None:
        """Empty every level."""
        for level in self.levels:
            level.flush_all()


_MISS_EVENT = {
    "L1D": "L1D_MISSES",
    "L2": "L2_MISSES",
}


def standard_hierarchy(l1_kib: int = 32, l2_kib: int = 256, llc_kib: int = 8192,
                       memory_latency_cycles: int = 200) -> CacheHierarchy:
    """Build a conventional three-level hierarchy.

    Defaults approximate the paper's Intel i7-920 (Nehalem): 32 KiB L1D,
    256 KiB private L2, 8 MiB shared LLC.
    """
    return CacheHierarchy(
        [
            CacheConfig("L1D", l1_kib * 1024, ways=8, hit_latency_cycles=4),
            CacheConfig("L2", l2_kib * 1024, ways=8, hit_latency_cycles=12),
            CacheConfig("LLC", llc_kib * 1024, ways=16, hit_latency_cycles=40),
        ],
        memory_latency_cycles=memory_latency_cycles,
    )
