"""Performance monitoring unit.

Implements the counter architecture the paper describes for modern
Intel parts (§II-A): **three fixed counters** (instructions retired,
unhalted core cycles, unhalted reference cycles) and **four
programmable counters** driven by event-select registers with USR/OS
privilege masks, enable bits, 48-bit width, and overflow interrupt
delivery.

Tools program the PMU through :meth:`Pmu.wrmsr` / :meth:`Pmu.rdmsr`
exactly as a driver would; :meth:`Pmu.rdpmc` models the unprivileged
fast-read instruction LiMiT uses from user space.

Counts are delivered by the simulated core via :meth:`accumulate`.
Internally counters keep fractional accumulators (rate-based workload
blocks may contribute fractional events for a partial slice); reads
expose the floored integer value, as hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import PMUError
from repro.hw import events as ev
from repro.hw.msr import (
    MSR,
    MsrFile,
    EVTSEL_EVENT_MASK,
    EVTSEL_UMASK_MASK,
    EVTSEL_USR,
    EVTSEL_OS,
    EVTSEL_INT,
    EVTSEL_EN,
)

NUM_PROGRAMMABLE = 4
NUM_FIXED = 3
COUNTER_WIDTH_BITS = 48
_COUNTER_WRAP = 1 << COUNTER_WIDTH_BITS

# rdpmc index space: fixed counters are selected with bit 30 set.
RDPMC_FIXED_FLAG = 1 << 30

OverflowHandler = Callable[[List[int]], None]

_PMC_MSRS = (MSR.IA32_PMC0, MSR.IA32_PMC1, MSR.IA32_PMC2, MSR.IA32_PMC3)
_EVTSEL_MSRS = (
    MSR.IA32_PERFEVTSEL0,
    MSR.IA32_PERFEVTSEL1,
    MSR.IA32_PERFEVTSEL2,
    MSR.IA32_PERFEVTSEL3,
)
_FIXED_MSRS = (MSR.IA32_FIXED_CTR0, MSR.IA32_FIXED_CTR1, MSR.IA32_FIXED_CTR2)

_PLAN_CACHE_LIMIT = 128

# (plan_user, plan_kernel, counter_names, pmi_counters, counting,
#  epoch_user, epoch_kernel).  The epoch tables memoize, per event-name
# tuple, the flat apply list ``accumulate_epoch`` derives from the
# name->counter plan; they ride in the cache entry so a reinstalled
# register signature brings its compiled epochs back with it.
_CompiledPlan = Tuple[
    Dict[str, List[Tuple[bool, int]]],
    Dict[str, List[Tuple[bool, int]]],
    Tuple[Optional[str], ...],
    frozenset,
    bool,
    Dict[Tuple[str, ...], List[Tuple[int, bool, int]]],
    Dict[Tuple[str, ...], List[Tuple[int, bool, int]]],
]


@dataclass(frozen=True)
class CounterSnapshot:
    """Point-in-time values of every counter, keyed by event name."""

    timestamp: int
    fixed: Tuple[int, ...]
    programmable: Tuple[int, ...]
    by_event: Dict[str, int]


class Pmu:
    """One core's performance monitoring unit."""

    def __init__(self, msr_file: Optional[MsrFile] = None) -> None:
        self.msrs = msr_file if msr_file is not None else MsrFile()
        self._pmc = [0.0] * NUM_PROGRAMMABLE
        self._fixed = [0.0] * NUM_FIXED
        self._overflow_handler: Optional[OverflowHandler] = None
        # Overflow status per counter index: programmable 0..3 then
        # fixed 32..34, matching IA32_PERF_GLOBAL_STATUS bit layout.
        self._pending_overflow: List[int] = []
        # Compiled accumulation plan, keyed on the MSR file's write
        # generation: event name -> [(is_fixed, counter index)] for each
        # privilege ring.  -1 forces a compile on first use.
        self._plan_version = -1
        self._plan_user: Dict[str, List[Tuple[bool, int]]] = {}
        self._plan_kernel: Dict[str, List[Tuple[bool, int]]] = {}
        self._counter_names: Tuple[Optional[str], ...] = (None,) * NUM_PROGRAMMABLE
        self._pmi_counters: frozenset = frozenset()
        self._counting = False
        # Epoch apply lists for the active plan, keyed by event-name
        # tuple: [(value index, is_fixed, counter index)].
        self._epoch_user: Dict[Tuple[str, ...],
                               List[Tuple[int, bool, int]]] = {}
        self._epoch_kernel: Dict[Tuple[str, ...],
                                 List[Tuple[int, bool, int]]] = {}
        # Plans are a pure function of the six control registers, so a
        # version bump with an already-seen register signature (global
        # enable/disable toggles per context switch, multiplex rotation
        # through a small set of groups) reinstalls the compiled plan
        # instead of re-deriving it.  Bounded FIFO.
        self._plan_cache: Dict[Tuple[int, ...], _CompiledPlan] = {}
        # Row-read plans for ``counter_row``, keyed on the programmable
        # counter-name layout: (ordered unique names, per-name counter
        # source).  A pure function of _counter_names, so one entry per
        # distinct programmed layout.
        self._row_plans: Dict[
            Tuple[Optional[str], ...],
            Tuple[Tuple[str, ...], List[Tuple[bool, int]]],
        ] = {}

    # ------------------------------------------------------------------
    # Register interface (what drivers use)
    # ------------------------------------------------------------------
    def wrmsr(self, address: int, value: int) -> None:
        """Write an MSR, intercepting counter-value registers."""
        if address in _PMC_MSRS:
            index = _PMC_MSRS.index(address)
            self._pmc[index] = float(int(value) % _COUNTER_WRAP)
            self._drop_pending(index)
            return
        if address in _FIXED_MSRS:
            index = _FIXED_MSRS.index(address)
            self._fixed[index] = float(int(value) % _COUNTER_WRAP)
            return
        self.msrs.write(address, value)

    def rdmsr(self, address: int) -> int:
        """Read an MSR, intercepting counter-value registers."""
        if address in _PMC_MSRS:
            return int(self._pmc[_PMC_MSRS.index(address)])
        if address in _FIXED_MSRS:
            return int(self._fixed[_FIXED_MSRS.index(address)])
        return self.msrs.read(address)

    def rdpmc(self, index: int) -> int:
        """Unprivileged counter read (the LiMiT fast path).

        Programmable counters are addressed ``0..3``; fixed counters are
        addressed ``RDPMC_FIXED_FLAG | 0..2`` as on real hardware.
        """
        if index & RDPMC_FIXED_FLAG:
            fixed_index = index & ~RDPMC_FIXED_FLAG
            if not 0 <= fixed_index < NUM_FIXED:
                raise PMUError(f"rdpmc of invalid fixed counter {fixed_index}")
            return int(self._fixed[fixed_index])
        if not 0 <= index < NUM_PROGRAMMABLE:
            raise PMUError(f"rdpmc of invalid counter {index}")
        return int(self._pmc[index])

    def set_overflow_handler(self, handler: Optional[OverflowHandler]) -> None:
        """Register the PMI delivery callback (None to disconnect)."""
        self._overflow_handler = handler

    # ------------------------------------------------------------------
    # Convenience programming helpers (used by tool drivers)
    # ------------------------------------------------------------------
    def program_counter(self, index: int, event_name: str, *, user: bool = True,
                        kernel: bool = False, interrupt_on_overflow: bool = False,
                        enable: bool = True) -> None:
        """Program one programmable counter for ``event_name``."""
        if not 0 <= index < NUM_PROGRAMMABLE:
            raise PMUError(f"no programmable counter {index}")
        event = ev.lookup(event_name)
        value = event.code & (EVTSEL_EVENT_MASK | EVTSEL_UMASK_MASK)
        if user:
            value |= EVTSEL_USR
        if kernel:
            value |= EVTSEL_OS
        if interrupt_on_overflow:
            value |= EVTSEL_INT
        if enable:
            value |= EVTSEL_EN
        self.wrmsr(_EVTSEL_MSRS[index], value)
        self.wrmsr(_PMC_MSRS[index], 0)

    def disable_counter(self, index: int) -> None:
        """Clear one programmable counter's event-select register."""
        if not 0 <= index < NUM_PROGRAMMABLE:
            raise PMUError(f"no programmable counter {index}")
        self.wrmsr(_EVTSEL_MSRS[index], 0)

    def enable_fixed(self, *, user: bool = True, kernel: bool = False) -> None:
        """Enable all three fixed counters with the given privilege mask."""
        field = (0b10 if user else 0) | (0b01 if kernel else 0)
        ctrl = 0
        for index in range(NUM_FIXED):
            ctrl |= field << (4 * index)
        self.wrmsr(MSR.IA32_FIXED_CTR_CTRL, ctrl)

    def global_enable(self, *, programmable: bool = True, fixed: bool = True) -> None:
        """Set IA32_PERF_GLOBAL_CTRL enable bits."""
        value = 0
        if programmable:
            value |= (1 << NUM_PROGRAMMABLE) - 1
        if fixed:
            value |= ((1 << NUM_FIXED) - 1) << 32
        self.wrmsr(MSR.IA32_PERF_GLOBAL_CTRL, value)

    def global_disable(self) -> None:
        """Clear IA32_PERF_GLOBAL_CTRL — freezes every counter."""
        self.wrmsr(MSR.IA32_PERF_GLOBAL_CTRL, 0)

    def write_counter(self, index: int, value: int) -> None:
        """Set one programmable counter's value directly.

        Drivers use this to seed a counter near the 48-bit ceiling
        (sampling-by-overflow setups, fault injection exercising
        wraparound); the value wraps modulo 2^48 as a WRMSR would.
        """
        if not 0 <= index < NUM_PROGRAMMABLE:
            raise PMUError(f"no programmable counter {index}")
        self._pmc[index] = float(int(value) % _COUNTER_WRAP)
        self._drop_pending(index)

    def _drop_pending(self, index: int) -> None:
        """Cancel undelivered PMIs for a counter being rewritten.

        A software write re-arms the counter: any overflow the old
        value produced but has not yet been delivered belongs to the
        discarded count.  Without this purge, a wrap preload landing in
        a multiplexing group that is descheduled before the PMI drains
        would double-deliver the overflow when the group is re-armed.
        """
        if self._pending_overflow:
            self._pending_overflow = [
                pending for pending in self._pending_overflow
                if pending != index
            ]

    def consume_overflow(self, index: int) -> bool:
        """Read-and-clear the overflow status bit of one programmable
        counter (the RMW a driver does on IA32_PERF_GLOBAL_STATUS /
        OVF_CTRL).  Returns whether the bit was set, and clears it so
        the same wrap can never be accounted twice across rotations."""
        if not 0 <= index < NUM_PROGRAMMABLE:
            raise PMUError(f"no programmable counter {index}")
        status = self.msrs.read(MSR.IA32_PERF_GLOBAL_STATUS)
        bit = 1 << index
        if not status & bit:
            return False
        self.msrs.write(MSR.IA32_PERF_GLOBAL_STATUS, status & ~bit)
        return True

    def reset_counters(self) -> None:
        """Zero all counter values (config registers untouched)."""
        self._pmc = [0.0] * NUM_PROGRAMMABLE
        self._fixed = [0.0] * NUM_FIXED

    # ------------------------------------------------------------------
    # Count delivery (called by the simulated core)
    # ------------------------------------------------------------------
    def _compile_plan(self) -> None:
        """Decode the control registers into per-privilege lookup plans.

        ``accumulate`` runs once per execution slice — hundreds of
        thousands of times per experiment — while the registers change
        only when a tool reprograms the PMU.  The plan maps event name
        directly to the counters that count it in each ring, so the hot
        path is a dict lookup plus float adds.  The plan is keyed on
        ``MsrFile.version`` and revalidated on any register write; a
        previously-seen control-register signature (global enable
        toggles, multiplex group rotation) reinstalls its cached plan
        without re-deriving it.
        """
        msrs = self.msrs
        version = msrs.version
        global_ctrl = msrs.read(MSR.IA32_PERF_GLOBAL_CTRL)
        fixed_ctrl = msrs.read(MSR.IA32_FIXED_CTR_CTRL)
        evtsels = tuple(msrs.read(msr) for msr in _EVTSEL_MSRS)
        signature = (global_ctrl, fixed_ctrl) + evtsels
        cached = self._plan_cache.get(signature)
        if cached is not None:
            (self._plan_user, self._plan_kernel, self._counter_names,
             self._pmi_counters, self._counting,
             self._epoch_user, self._epoch_kernel) = cached
            self._plan_version = version
            return
        plan_user: Dict[str, List[Tuple[bool, int]]] = {}
        plan_kernel: Dict[str, List[Tuple[bool, int]]] = {}

        for index, event_name in enumerate(ev.FIXED_EVENTS):
            if not global_ctrl & (1 << (32 + index)):
                continue
            field = (fixed_ctrl >> (4 * index)) & 0b11
            if field & 0b10:
                plan_user.setdefault(event_name, []).append((True, index))
            if field & 0b01:
                plan_kernel.setdefault(event_name, []).append((True, index))

        names: List[Optional[str]] = []
        pmi: List[int] = []
        for index in range(NUM_PROGRAMMABLE):
            evtsel = evtsels[index]
            name: Optional[str] = None
            if evtsel & EVTSEL_EN:
                code = evtsel & (EVTSEL_EVENT_MASK | EVTSEL_UMASK_MASK)
                try:
                    name = ev.lookup_code(code).name
                except PMUError:
                    name = None  # unknown code: counter counts nothing
            names.append(name)
            if name is None or not global_ctrl & (1 << index):
                continue
            if evtsel & EVTSEL_INT:
                pmi.append(index)
            if evtsel & EVTSEL_USR:
                plan_user.setdefault(name, []).append((False, index))
            if evtsel & EVTSEL_OS:
                plan_kernel.setdefault(name, []).append((False, index))

        self._plan_user = plan_user
        self._plan_kernel = plan_kernel
        self._counter_names = tuple(names)
        self._pmi_counters = frozenset(pmi)
        self._counting = global_ctrl != 0
        self._epoch_user = {}
        self._epoch_kernel = {}
        self._plan_version = version
        if len(self._plan_cache) >= _PLAN_CACHE_LIMIT:
            self._plan_cache.pop(next(iter(self._plan_cache)))
        self._plan_cache[signature] = (plan_user, plan_kernel,
                                       self._counter_names,
                                       self._pmi_counters, self._counting,
                                       self._epoch_user, self._epoch_kernel)

    def accumulate(self, counts: Mapping[str, float], privilege: str) -> None:
        """Add event occurrences observed during an execution slice.

        Args:
            counts: event name -> (possibly fractional) occurrence count.
            privilege: ``"user"`` or ``"kernel"`` — which ring the slice
                executed in; counters whose privilege mask excludes the
                ring ignore the contribution.

        Bit-identical to walking the registers per call: each counter is
        programmed with exactly one event, so it receives at most one
        add per call, and the deferred overflow sweep visits counters in
        the same canonical order (fixed 32..34, programmable 0..3) the
        register walk did.
        """
        if privilege == "user":
            plan = self._plan_user
        elif privilege == "kernel":
            plan = self._plan_kernel
        else:
            raise PMUError(f"invalid privilege {privilege!r}")
        if self._plan_version != self.msrs.version:
            self._compile_plan()
            plan = self._plan_user if privilege == "user" else self._plan_kernel
        if not self._counting or not counts:
            return

        fixed = self._fixed
        pmc = self._pmc
        wrapped = False
        for name, amount in counts.items():
            targets = plan.get(name)
            if targets is None or amount <= 0.0:
                continue
            for is_fixed, index in targets:
                if is_fixed:
                    value = fixed[index] + amount
                    fixed[index] = value
                else:
                    value = pmc[index] + amount
                    pmc[index] = value
                if value >= _COUNTER_WRAP:
                    wrapped = True
        if wrapped:
            self._sweep_overflow()
        if self._pending_overflow and self._overflow_handler is not None:
            pending, self._pending_overflow = self._pending_overflow, []
            # PMI delivery happens at slice granularity — the analogue of
            # real PMU interrupt skid.
            self._overflow_handler(pending)

    def accumulate_epoch(self, names: Tuple[str, ...], values,
                         privilege: str) -> None:
        """Fused accumulation of a whole execution epoch.

        The batch replay path delivers every event of a slice at once:
        ``names`` is a (stable, hashable) event-name tuple and
        ``values`` the aligned occurrence counts.  The name tuple is
        compiled once per control-register signature into a flat apply
        list ``[(value index, is_fixed, counter index)]`` — cached on
        the plan-cache entry, so multiplex rotation and enable toggles
        reinstall it — and the hot path is a single list walk with
        float adds.  Semantically identical to :meth:`accumulate` with
        ``dict(zip(names, values))``: zero and negative amounts are
        skipped the same way, each counter is programmed with exactly
        one event so it still receives at most one add per call, and
        the overflow sweep and PMI delivery share the same tail.
        """
        if privilege == "user":
            plan = self._plan_user
            epochs = self._epoch_user
        elif privilege == "kernel":
            plan = self._plan_kernel
            epochs = self._epoch_kernel
        else:
            raise PMUError(f"invalid privilege {privilege!r}")
        if self._plan_version != self.msrs.version:
            self._compile_plan()
            if privilege == "user":
                plan, epochs = self._plan_user, self._epoch_user
            else:
                plan, epochs = self._plan_kernel, self._epoch_kernel
        if not self._counting:
            return
        apply_list = epochs.get(names)
        if apply_list is None:
            apply_list = [
                (value_index, is_fixed, index)
                for value_index, name in enumerate(names)
                for is_fixed, index in plan.get(name, ())
            ]
            epochs[names] = apply_list

        fixed = self._fixed
        pmc = self._pmc
        wrapped = False
        for value_index, is_fixed, index in apply_list:
            amount = values[value_index]
            if amount <= 0.0:
                continue
            if is_fixed:
                value = fixed[index] + amount
                fixed[index] = value
            else:
                value = pmc[index] + amount
                pmc[index] = value
            if value >= _COUNTER_WRAP:
                wrapped = True
        if wrapped:
            self._sweep_overflow()
        if self._pending_overflow and self._overflow_handler is not None:
            pending, self._pending_overflow = self._pending_overflow, []
            self._overflow_handler(pending)

    def _sweep_overflow(self) -> None:
        """Wrap any counter that crossed 2^48 and latch status bits."""
        overflowed: List[int] = []
        fixed = self._fixed
        for index in range(NUM_FIXED):
            if fixed[index] >= _COUNTER_WRAP:
                fixed[index] %= _COUNTER_WRAP
                overflowed.append(32 + index)
        pmc = self._pmc
        for index in range(NUM_PROGRAMMABLE):
            value = pmc[index]
            if value >= _COUNTER_WRAP:
                wraps = int(value // _COUNTER_WRAP)
                pmc[index] = value % _COUNTER_WRAP
                overflowed.append(index)
                if index in self._pmi_counters:
                    # One PMI per wrap: a coarse execution slice may
                    # cross several sampling periods at once; the
                    # interrupts coalesce in delivery time (skid) but
                    # not in count, keeping period-based estimates true.
                    self._pending_overflow.extend([index] * wraps)
        if overflowed:
            status = self.msrs.read(MSR.IA32_PERF_GLOBAL_STATUS)
            for bit in overflowed:
                status |= 1 << bit
            self.msrs.write(MSR.IA32_PERF_GLOBAL_STATUS, status)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def counter_event(self, index: int) -> Optional[str]:
        """Event name currently programmed on programmable counter ``index``."""
        if self._plan_version != self.msrs.version:
            self._compile_plan()
        if not 0 <= index < NUM_PROGRAMMABLE:
            raise IndexError(f"no programmable counter {index}")
        return self._counter_names[index]

    def snapshot(self, timestamp: int) -> CounterSnapshot:
        """Read every counter at once (what a sampling interrupt does)."""
        by_event: Dict[str, int] = {}
        for index, event_name in enumerate(ev.FIXED_EVENTS):
            by_event[event_name] = int(self._fixed[index])
        for index in range(NUM_PROGRAMMABLE):
            name = self.counter_event(index)
            if name is not None:
                by_event[name] = int(self._pmc[index])
        return CounterSnapshot(
            timestamp=timestamp,
            fixed=tuple(int(value) for value in self._fixed),
            programmable=tuple(int(value) for value in self._pmc),
            by_event=by_event,
        )

    def counter_row(self) -> Tuple[Tuple[str, ...], List[int]]:
        """Read every counter as a fixed-order row (columnar hot path).

        Returns ``(names, values)`` where ``names`` matches the key
        order of :meth:`snapshot`'s ``by_event`` dict for the current
        programmed layout and ``values`` the floored integer counter
        values — including dict semantics for a degenerate layout that
        programs one event on two counters (first occurrence fixes the
        position, the last counter supplies the value).  The name tuple
        is stable across calls while programming is unchanged, so
        callers can key a columnar ring schema on it.
        """
        if self._plan_version != self.msrs.version:
            self._compile_plan()
        row_plan = self._row_plans.get(self._counter_names)
        if row_plan is None:
            positions: Dict[str, int] = {}
            names: List[str] = []
            sources: List[Tuple[bool, int]] = []
            for index, event_name in enumerate(ev.FIXED_EVENTS):
                positions[event_name] = len(names)
                names.append(event_name)
                sources.append((True, index))
            for index, name in enumerate(self._counter_names):
                if name is None:
                    continue
                at = positions.get(name)
                if at is None:
                    positions[name] = len(names)
                    names.append(name)
                    sources.append((False, index))
                else:
                    sources[at] = (False, index)
            row_plan = (tuple(names), sources)
            self._row_plans[self._counter_names] = row_plan
        row_names, row_sources = row_plan
        fixed = self._fixed
        pmc = self._pmc
        return row_names, [
            int(fixed[index]) if is_fixed else int(pmc[index])
            for is_fixed, index in row_sources
        ]
