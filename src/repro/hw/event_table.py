"""The committed hardware event table.

This is the data the catalogue in :mod:`repro.hw.events` is built
from, modelled on the event tables real tools ship: likwid's
``pm_arch_events`` hash table (name -> {select, umask}) and
rust-perfcnt's ``IntelPerformanceCounterDescription`` with its
``Counter::Fixed``/``Counter::Programmable`` bit-masks.  Each row is

    (name, select, umask, kind, counter_mask, fixed_counter, description)

where

* ``select``/``umask`` are the PERFEVTSEL bits 0-7 / 8-15 — the packed
  ``(umask << 8) | select`` code is what a driver writes to an MSR and
  must be unique across the table;
* ``kind`` is ``"arch"`` (architectural: a deterministic property of
  the retired instruction stream) or ``"uarch"`` (microarchitectural:
  depends on machine state — caches, predictors, ports);
* ``counter_mask`` is the bit-mask of *programmable* counters the
  event may be scheduled on (bit ``i`` = IA32_PMCi is legal), the
  likwid/rust-perfcnt counter-constraint idiom.  Most events count
  anywhere (``0b1111``); port-, divider- and offcore-style events are
  restricted exactly as on real parts, which is what the constraint
  scheduler in :mod:`repro.hw.schedule` has to solve around;
* ``fixed_counter`` pins the event to one of the three fixed-function
  counters (IA32_FIXED_CTR0..2) when not ``None``; such events are
  counted continuously and never consume a programmable slot.

Select codes follow the Intel architectural performance monitoring
encodings where one exists (Nehalem-era tables, matching the paper's
i7-920); the remainder use stable synthetic codes.  The table is
linted by ``scripts/check_catalogue.py`` in CI: unique names, unique
packed codes, in-range masks, known kinds.
"""

from __future__ import annotations

from typing import Optional, Tuple

ARCH = "arch"
UARCH = "uarch"

# All four programmable counters (must equal (1 << pmu.NUM_PROGRAMMABLE) - 1;
# asserted by the catalogue lint).
ANY = 0b1111
# Real-hardware style restrictions: load-port events live on the first
# counter pair, store-port events on the second, divider and offcore
# response events on a single counter.
PMC01 = 0b0011
PMC23 = 0b1100
PMC0 = 0b0001
PMC1 = 0b0010

Row = Tuple[str, int, int, str, int, Optional[int], str]

RAW_EVENT_TABLE: Tuple[Row, ...] = (
    # ------------------------------------------------------------------
    # The original hand-rolled catalogue (codes unchanged: these names
    # appear in golden digests and every experiment recipe).  All keep
    # the unrestricted mask the old fixed counter layout implied.
    # ------------------------------------------------------------------
    ("INST_RETIRED", 0xC0, 0x00, ARCH, ANY, 0, "Instructions retired"),
    ("CORE_CYCLES", 0x3C, 0x00, ARCH, ANY, 1, "Unhalted core clock cycles"),
    ("REF_CYCLES", 0x3C, 0x01, ARCH, ANY, 2,
     "Unhalted reference (TSC-rate) cycles"),
    ("BRANCHES", 0xC4, 0x00, ARCH, ANY, None, "Branch instructions retired"),
    ("LOADS", 0xD0, 0x81, ARCH, ANY, None, "Load instructions retired"),
    ("STORES", 0xD0, 0x82, ARCH, ANY, None, "Store instructions retired"),
    ("ARITH_MUL", 0x14, 0x01, ARCH, ANY, None,
     "Arithmetic multiply operations"),
    ("FP_OPS", 0x10, 0x01, ARCH, ANY, None, "Floating-point operations"),
    ("BRANCH_MISSES", 0xC5, 0x00, UARCH, ANY, None,
     "Mispredicted branches retired"),
    ("LLC_REFERENCES", 0x2E, 0x4F, UARCH, ANY, None,
     "Last-level cache references"),
    ("LLC_MISSES", 0x2E, 0x41, UARCH, ANY, None, "Last-level cache misses"),
    ("L1D_MISSES", 0x51, 0x01, UARCH, ANY, None, "L1 data cache misses"),
    ("L2_MISSES", 0x24, 0xAA, UARCH, ANY, None, "L2 cache misses"),
    ("DTLB_MISSES", 0x49, 0x01, UARCH, ANY, None, "Data TLB misses"),
    ("STALL_CYCLES", 0xA2, 0x01, UARCH, ANY, None, "Resource stall cycles"),
    ("CACHE_FLUSHES", 0xF8, 0x01, UARCH, ANY, None,
     "Cache line flush operations"),
    # ------------------------------------------------------------------
    # Retired branch breakdown (BR_INST_RETIRED.*): architectural —
    # a pure function of the executed instruction stream.
    # ------------------------------------------------------------------
    ("BR_COND_RETIRED", 0xC4, 0x01, ARCH, ANY, None,
     "Conditional branch instructions retired"),
    ("BR_NEAR_CALL_RETIRED", 0xC4, 0x02, ARCH, ANY, None,
     "Direct and indirect near calls retired"),
    ("BR_TAKEN_RETIRED", 0xC4, 0x04, ARCH, ANY, None,
     "Taken branch instructions retired"),
    ("BR_NOT_TAKEN_RETIRED", 0xC4, 0x08, ARCH, ANY, None,
     "Not-taken branch instructions retired"),
    ("BR_INDIRECT_RETIRED", 0xC4, 0x10, ARCH, ANY, None,
     "Indirect near branches retired"),
    ("BR_FAR_RETIRED", 0xC4, 0x20, ARCH, ANY, None,
     "Far branch transfers retired"),
    ("BR_RETURN_RETIRED", 0xC4, 0x40, ARCH, ANY, None,
     "Near return instructions retired"),
    # Mispredict breakdown: microarchitectural (predictor state).
    ("BR_COND_MISSES", 0xC5, 0x01, UARCH, ANY, None,
     "Mispredicted conditional branches retired"),
    ("BR_NEAR_CALL_MISSES", 0xC5, 0x02, UARCH, ANY, None,
     "Mispredicted near calls retired"),
    ("BR_TAKEN_MISSES", 0xC5, 0x04, UARCH, ANY, None,
     "Mispredicted taken branches retired"),
    ("BR_INDIRECT_MISSES", 0xC5, 0x10, UARCH, ANY, None,
     "Mispredicted indirect branches retired"),
    # ------------------------------------------------------------------
    # Micro-op flow (UOPS_ISSUED / UOPS_EXECUTED / UOPS_RETIRED).
    # Port-occupancy events carry the real parts' port restrictions:
    # load ports on PMC0-1, store/ALU ports on PMC2-3.
    # ------------------------------------------------------------------
    ("UOPS_ISSUED_ANY", 0x0E, 0x01, UARCH, ANY, None,
     "Micro-ops issued by the renamer"),
    ("UOPS_ISSUED_FUSED", 0x0E, 0x02, UARCH, ANY, None,
     "Fused micro-ops issued"),
    ("UOPS_ISSUED_STALL_CYCLES", 0x0E, 0x04, UARCH, ANY, None,
     "Cycles with no micro-ops issued"),
    ("UOPS_RETIRED_ANY", 0xC2, 0x01, UARCH, ANY, None,
     "Micro-ops retired"),
    ("UOPS_RETIRED_FUSED", 0xC2, 0x02, UARCH, ANY, None,
     "Fused micro-ops retired"),
    ("UOPS_RETIRED_MACRO_FUSED", 0xC2, 0x04, UARCH, ANY, None,
     "Macro-fused micro-ops retired"),
    ("UOPS_RETIRED_SLOTS", 0xC2, 0x08, UARCH, ANY, None,
     "Retirement slots used"),
    ("UOPS_EXEC_PORT0", 0xB1, 0x01, UARCH, PMC01, None,
     "Micro-ops executed on port 0"),
    ("UOPS_EXEC_PORT1", 0xB1, 0x02, UARCH, PMC01, None,
     "Micro-ops executed on port 1"),
    ("UOPS_EXEC_PORT2", 0xB1, 0x04, UARCH, PMC01, None,
     "Load micro-ops executed on port 2"),
    ("UOPS_EXEC_PORT3", 0xB1, 0x08, UARCH, PMC23, None,
     "Store-address micro-ops executed on port 3"),
    ("UOPS_EXEC_PORT4", 0xB1, 0x10, UARCH, PMC23, None,
     "Store-data micro-ops executed on port 4"),
    ("UOPS_EXEC_PORT5", 0xB1, 0x20, UARCH, PMC23, None,
     "Micro-ops executed on port 5"),
    # ------------------------------------------------------------------
    # L1 data cache (L1D.* / L1D_CACHE_LD.* / L1D_CACHE_ST.*): the
    # Nehalem L1D unit can only feed the first counter pair.
    # ------------------------------------------------------------------
    ("L1D_REPLACEMENTS", 0x51, 0x02, UARCH, PMC01, None,
     "L1D cache lines replaced"),
    ("L1D_M_REPLACEMENTS", 0x51, 0x04, UARCH, PMC01, None,
     "Modified L1D lines replaced"),
    ("L1D_M_EVICTIONS", 0x51, 0x08, UARCH, PMC01, None,
     "Modified L1D lines evicted by replacement"),
    ("L1D_M_SNOOP_EVICTIONS", 0x51, 0x10, UARCH, PMC01, None,
     "Modified L1D lines evicted by snoop"),
    ("L1D_LD_HIT_I", 0x40, 0x01, UARCH, PMC01, None,
     "L1D load lookups hitting Invalid state"),
    ("L1D_LD_HIT_E", 0x40, 0x02, UARCH, PMC01, None,
     "L1D load hits in Exclusive state"),
    ("L1D_LD_HIT_S", 0x40, 0x04, UARCH, PMC01, None,
     "L1D load hits in Shared state"),
    ("L1D_LD_HIT_M", 0x40, 0x08, UARCH, PMC01, None,
     "L1D load hits in Modified state"),
    ("L1D_LD_MESI", 0x40, 0x0F, UARCH, PMC01, None,
     "L1D load lookups, all MESI states"),
    ("L1D_ST_HIT_E", 0x41, 0x02, UARCH, PMC01, None,
     "L1D store hits in Exclusive state"),
    ("L1D_ST_HIT_S", 0x41, 0x04, UARCH, PMC01, None,
     "L1D store hits in Shared state"),
    ("L1D_ST_HIT_M", 0x41, 0x08, UARCH, PMC01, None,
     "L1D store hits in Modified state"),
    ("L1D_ST_MESI", 0x41, 0x0F, UARCH, PMC01, None,
     "L1D store lookups, all MESI states"),
    ("L1D_PREFETCH_REQUESTS", 0x4E, 0x01, UARCH, PMC01, None,
     "L1D hardware prefetch requests dispatched"),
    ("L1D_PREFETCH_MISSES", 0x4E, 0x02, UARCH, PMC01, None,
     "L1D hardware prefetch requests missing L1D"),
    ("L1D_PREFETCH_TRIGGERS", 0x4E, 0x04, UARCH, PMC01, None,
     "L1D hardware prefetch triggers"),
    # ------------------------------------------------------------------
    # L1 instruction cache / front end.
    # ------------------------------------------------------------------
    ("L1I_READS", 0x80, 0x01, UARCH, ANY, None,
     "Instruction fetches from L1I"),
    ("L1I_MISSES", 0x80, 0x02, UARCH, ANY, None, "L1I fetch misses"),
    ("L1I_CYCLES_STALLED", 0x80, 0x04, UARCH, ANY, None,
     "Cycles instruction fetch is stalled"),
    ("ILD_STALLS", 0x87, 0x01, UARCH, ANY, None,
     "Instruction length decoder stalls"),
    ("LSD_UOPS", 0xA8, 0x01, UARCH, ANY, None,
     "Micro-ops delivered by the loop stream detector"),
    ("BACLEARS_ANY", 0xE6, 0x01, UARCH, ANY, None,
     "Front-end resteers from branch address clears"),
    ("BPU_CLEARS_EARLY", 0xE8, 0x01, UARCH, ANY, None,
     "Early branch prediction unit clears"),
    ("BPU_CLEARS_LATE", 0xE8, 0x02, UARCH, ANY, None,
     "Late branch prediction unit clears"),
    # ------------------------------------------------------------------
    # L2 cache (L2_RQSTS.* / L2_DATA_RQSTS.* / L2_WRITE.*).
    # ------------------------------------------------------------------
    ("L2_LD_HITS", 0x24, 0x01, UARCH, ANY, None, "L2 demand load hits"),
    ("L2_LD_MISSES", 0x24, 0x02, UARCH, ANY, None, "L2 demand load misses"),
    ("L2_RFO_HITS", 0x24, 0x04, UARCH, ANY, None,
     "L2 request-for-ownership hits"),
    ("L2_RFO_MISSES", 0x24, 0x08, UARCH, ANY, None,
     "L2 request-for-ownership misses"),
    ("L2_IFETCH_HITS", 0x24, 0x10, UARCH, ANY, None,
     "L2 instruction fetch hits"),
    ("L2_IFETCH_MISSES", 0x24, 0x20, UARCH, ANY, None,
     "L2 instruction fetch misses"),
    ("L2_PREFETCH_HITS", 0x24, 0x40, UARCH, ANY, None, "L2 prefetch hits"),
    ("L2_PREFETCH_MISSES", 0x24, 0x80, UARCH, ANY, None,
     "L2 prefetch misses"),
    ("L2_REFERENCES", 0x24, 0xFF, UARCH, ANY, None, "All L2 requests"),
    ("L2_DATA_DEMAND_ANY", 0x26, 0x03, UARCH, ANY, None,
     "L2 demand data requests"),
    ("L2_DATA_PREFETCH_ANY", 0x26, 0x30, UARCH, ANY, None,
     "L2 prefetch data requests"),
    ("L2_DATA_ANY", 0x26, 0xFF, UARCH, ANY, None, "All L2 data requests"),
    ("L2_WRITE_RFO_ANY", 0x27, 0x0F, UARCH, ANY, None,
     "L2 demand store RFO requests, all states"),
    ("L2_WRITE_LOCK_ANY", 0x27, 0xF0, UARCH, ANY, None,
     "L2 demand lock RFO requests, all states"),
    ("L2_LINES_IN", 0xF1, 0x07, UARCH, ANY, None, "Lines allocated into L2"),
    ("L2_LINES_OUT_ANY", 0xF2, 0x0F, UARCH, ANY, None,
     "Lines evicted from L2"),
    ("L2_LINES_OUT_DIRTY", 0xF2, 0x0A, UARCH, ANY, None,
     "Dirty lines evicted from L2"),
    # ------------------------------------------------------------------
    # TLBs and page walks.
    # ------------------------------------------------------------------
    ("DTLB_LOAD_MISSES", 0x08, 0x01, UARCH, ANY, None,
     "Load micro-ops missing the DTLB"),
    ("DTLB_LOAD_WALKS", 0x08, 0x02, UARCH, ANY, None,
     "DTLB load misses causing a page walk"),
    ("DTLB_WALK_COMPLETED", 0x49, 0x02, UARCH, ANY, None,
     "DTLB miss page walks completed"),
    ("DTLB_WALK_CYCLES", 0x49, 0x04, UARCH, ANY, None,
     "Cycles spent in DTLB miss page walks"),
    ("DTLB_STLB_HITS", 0x49, 0x10, UARCH, ANY, None,
     "DTLB misses hitting the second-level TLB"),
    ("ITLB_MISSES", 0x85, 0x01, UARCH, ANY, None,
     "Instruction fetches missing the ITLB"),
    ("ITLB_WALK_COMPLETED", 0x85, 0x02, UARCH, ANY, None,
     "ITLB miss page walks completed"),
    ("ITLB_MISS_RETIRED", 0xC8, 0x20, UARCH, ANY, None,
     "Retired instructions that missed the ITLB"),
    # ------------------------------------------------------------------
    # Retired memory hierarchy outcomes (MEM_LOAD_RETIRED.*): precise
    # load-latency style events, restricted to the load-port counters.
    # ------------------------------------------------------------------
    ("MEM_LOAD_RETIRED_L1D_HIT", 0xCB, 0x01, UARCH, PMC01, None,
     "Retired loads that hit L1D"),
    ("MEM_LOAD_RETIRED_L2_HIT", 0xCB, 0x02, UARCH, PMC01, None,
     "Retired loads that hit L2"),
    ("MEM_LOAD_RETIRED_LLC_HIT", 0xCB, 0x04, UARCH, PMC01, None,
     "Retired loads that hit the unshared LLC"),
    ("MEM_LOAD_RETIRED_OTHER_CORE_HIT", 0xCB, 0x08, UARCH, PMC01, None,
     "Retired loads served from another core's L2"),
    ("MEM_LOAD_RETIRED_LLC_MISS", 0xCB, 0x10, UARCH, PMC01, None,
     "Retired loads that missed the LLC"),
    ("MEM_LOAD_RETIRED_DTLB_MISS", 0xCB, 0x40, UARCH, PMC01, None,
     "Retired loads that missed the DTLB"),
    ("MEM_UNCORE_RETIRED_LOCAL_DRAM", 0x0F, 0x20, UARCH, PMC01, None,
     "Retired loads served from local DRAM"),
    ("MEM_UNCORE_RETIRED_REMOTE_DRAM", 0x0F, 0x10, UARCH, PMC01, None,
     "Retired loads served from remote DRAM"),
    # ------------------------------------------------------------------
    # Offcore response matchers: one dedicated matcher register per
    # counter on real parts — each event is pinned to a single counter.
    # ------------------------------------------------------------------
    ("OFFCORE_RESPONSE_0", 0xB7, 0x01, UARCH, PMC0, None,
     "Offcore response matcher 0 (MSR_OFFCORE_RSP0)"),
    ("OFFCORE_RESPONSE_1", 0xBB, 0x01, UARCH, PMC1, None,
     "Offcore response matcher 1 (MSR_OFFCORE_RSP1)"),
    ("OFFCORE_REQUESTS_DEMAND_RD", 0xB0, 0x01, UARCH, ANY, None,
     "Offcore demand data read requests"),
    ("OFFCORE_REQUESTS_DEMAND_RFO", 0xB0, 0x04, UARCH, ANY, None,
     "Offcore demand RFO requests"),
    ("OFFCORE_REQUESTS_ANY", 0xB0, 0x80, UARCH, ANY, None,
     "All offcore requests"),
    ("OFFCORE_REQUESTS_OUTSTANDING", 0x60, 0x01, UARCH, PMC0, None,
     "Outstanding offcore demand reads per cycle"),
    # ------------------------------------------------------------------
    # Floating point and arithmetic units.  The divider occupancy event
    # counts only on PMC0, exactly as ARITH.CYCLES_DIV_BUSY does.
    # ------------------------------------------------------------------
    ("ARITH_DIV", 0x14, 0x02, ARCH, PMC0, None,
     "Arithmetic divide operations"),
    ("ARITH_DIV_BUSY_CYCLES", 0x14, 0x04, UARCH, PMC0, None,
     "Cycles the divider is busy"),
    ("FP_MMX_OPS", 0x10, 0x02, ARCH, ANY, None, "MMX integer SIMD ops"),
    ("FP_SSE_SINGLE", 0x10, 0x04, ARCH, PMC01, None,
     "SSE scalar/packed single-precision ops"),
    ("FP_SSE_DOUBLE", 0x10, 0x08, ARCH, PMC01, None,
     "SSE scalar/packed double-precision ops"),
    ("FP_X87_OPS", 0x10, 0x20, ARCH, ANY, None, "x87 floating-point ops"),
    ("FP_ASSISTS", 0x11, 0x01, UARCH, ANY, None,
     "Floating-point microcode assists"),
    ("SIMD_PACKED_SINGLE_RETIRED", 0xC7, 0x01, ARCH, ANY, None,
     "Retired packed single-precision SIMD instructions"),
    ("SIMD_SCALAR_SINGLE_RETIRED", 0xC7, 0x02, ARCH, ANY, None,
     "Retired scalar single-precision SIMD instructions"),
    ("SIMD_PACKED_DOUBLE_RETIRED", 0xC7, 0x04, ARCH, ANY, None,
     "Retired packed double-precision SIMD instructions"),
    ("SIMD_SCALAR_DOUBLE_RETIRED", 0xC7, 0x08, ARCH, ANY, None,
     "Retired scalar double-precision SIMD instructions"),
    # ------------------------------------------------------------------
    # Stalls, machine clears and pipeline hygiene.
    # ------------------------------------------------------------------
    ("STALLS_LOAD", 0xA2, 0x02, UARCH, ANY, None,
     "Cycles stalled on pending loads"),
    ("STALLS_STORE", 0xA2, 0x04, UARCH, ANY, None,
     "Cycles stalled on the store buffer"),
    ("STALLS_RS_FULL", 0xA2, 0x08, UARCH, ANY, None,
     "Cycles the reservation station is full"),
    ("STALLS_ROB_FULL", 0xA2, 0x10, UARCH, ANY, None,
     "Cycles the reorder buffer is full"),
    ("STALLS_FPCW", 0xA2, 0x20, UARCH, ANY, None,
     "Cycles stalled on FP control word writes"),
    ("STALLS_BRANCH_MISPREDICT", 0xA2, 0x40, UARCH, ANY, None,
     "Cycles stalled recovering from mispredicts"),
    ("MACHINE_CLEARS_MEM_ORDER", 0xC3, 0x02, UARCH, ANY, None,
     "Machine clears from memory ordering conflicts"),
    ("MACHINE_CLEARS_SMC", 0xC3, 0x04, UARCH, ANY, None,
     "Machine clears from self-modifying code"),
    ("MACHINE_CLEARS_FP_ASSIST", 0xC3, 0x08, UARCH, ANY, None,
     "Machine clears from floating-point assists"),
    ("LOAD_BLOCKS_STORE_FORWARD", 0x03, 0x02, UARCH, ANY, None,
     "Loads blocked by an unforwardable store"),
    ("LOAD_BLOCKS_STD", 0x03, 0x08, UARCH, ANY, None,
     "Loads blocked on store data availability"),
    ("MISALIGNED_MEM_REFS", 0x05, 0x01, UARCH, ANY, None,
     "Memory references crossing a cache line"),
    ("SB_DRAIN_CYCLES", 0x04, 0x01, UARCH, ANY, None,
     "Cycles draining the store buffer"),
    # ------------------------------------------------------------------
    # Clock domain variants and miscellanea.
    # ------------------------------------------------------------------
    ("CORE_CYCLES_BUS", 0x3C, 0x02, UARCH, ANY, None,
     "Unhalted cycles at bus-clock rate"),
    ("HW_INTERRUPTS", 0x1D, 0x01, UARCH, ANY, None,
     "Hardware interrupts received"),
    ("CPUID_INSTRUCTIONS", 0x17, 0x01, ARCH, ANY, None,
     "CPUID instructions executed"),
    ("SEGMENT_LOADS", 0x06, 0x01, ARCH, ANY, None,
     "Segment register loads"),
)
