"""Simulated hardware: PMU, MSRs, caches, core, machine presets.

This layer substitutes for the Intel i7-920 / Xeon 8259CL hardware the
paper ran on.  The PMU exposes the same structure real tools program:
three fixed counters (instructions retired, core cycles, reference
cycles) and four programmable counters configured through event-select
registers with privilege masks (see DESIGN.md §2).
"""

from repro.hw.events import (Event, EventKind, EVENT_CATALOGUE, FIXED_EVENTS,
                             build_catalogue, events_by_kind)
from repro.hw.msr import MsrFile, MSR
from repro.hw.schedule import CounterAssignment, assign_counters, plan_groups
from repro.hw.pmu import Pmu, CounterSnapshot, NUM_PROGRAMMABLE, NUM_FIXED
from repro.hw.cache import CacheConfig, CacheLevel, CacheHierarchy, AccessResult
from repro.hw.core import Core, ExecResult, ExecStop
from repro.hw.machine import Machine, MachineConfig
from repro.hw.presets import i7_920, xeon_8259cl, PRESETS

__all__ = [
    "Event",
    "EventKind",
    "EVENT_CATALOGUE",
    "FIXED_EVENTS",
    "build_catalogue",
    "events_by_kind",
    "CounterAssignment",
    "assign_counters",
    "plan_groups",
    "MsrFile",
    "MSR",
    "Pmu",
    "CounterSnapshot",
    "NUM_PROGRAMMABLE",
    "NUM_FIXED",
    "CacheConfig",
    "CacheLevel",
    "CacheHierarchy",
    "AccessResult",
    "Core",
    "ExecResult",
    "ExecStop",
    "Machine",
    "MachineConfig",
    "i7_920",
    "xeon_8259cl",
    "PRESETS",
]
