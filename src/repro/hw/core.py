"""Simulated CPU core.

The core turns workload blocks into elapsed time and PMU event counts:

* :class:`~repro.workloads.base.RateBlock` — instructions convert to
  cycles via the block's CPI; events accrue at the block's
  per-instruction rates.
* :class:`~repro.workloads.base.TraceBlock` — each memory operation is
  replayed through the cache hierarchy; its latency is charged and its
  cache events (LLC references/misses, ...) are recorded.  Each
  simulated operation folds in ``event_scale`` real memory instructions
  with spatial locality (the folded accesses hit L1 and cost ``cpi``).
* :class:`~repro.workloads.base.SyscallBlock` — execution stops and the
  block is handed back so the kernel can service the trap.

Execution is *sliced*: the kernel bounds each call by the time of the
next simulation event (timer fire, quantum expiry), and the cursor
resumes mid-block after preemption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.hw.cache import CacheHierarchy
from repro.hw.pmu import Pmu
from repro.workloads.base import (
    BlockCursor,
    OpKind,
    RateBlock,
    SyscallBlock,
    TraceBlock,
)

_FLUSH_LATENCY_CYCLES = 40
_EPSILON_NS = 1e-6


class ExecStop(enum.Enum):
    """Why :meth:`Core.execute` returned."""

    BUDGET = "budget"              # time slice exhausted
    PROGRAM_DONE = "program-done"  # block stream exhausted
    SYSCALL = "syscall"            # program trapped into the kernel


@dataclass
class ExecResult:
    """Outcome of one execution slice."""

    consumed_ns: int
    instructions: float
    stop: ExecStop
    syscall: Optional[SyscallBlock] = None


class Core:
    """One CPU core: executes block streams against a PMU and caches."""

    def __init__(self, frequency_hz: float, pmu: Pmu, cache: CacheHierarchy,
                 tsc_ratio: float = 1.0) -> None:
        if frequency_hz <= 0:
            raise SimulationError("core frequency must be positive")
        self.frequency_hz = frequency_hz
        self.pmu = pmu
        self.cache = cache
        self.tsc_ratio = tsc_ratio
        self._ns_per_cycle = 1e9 / frequency_hz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self._ns_per_cycle

    def ns_to_cycles(self, ns: float) -> float:
        return ns / self._ns_per_cycle

    def execute(self, cursor: BlockCursor, budget_ns: int) -> ExecResult:
        """Run the program at ``cursor`` for at most ``budget_ns``.

        A trace operation whose latency straddles the budget boundary is
        completed (slight overshoot), mirroring how a real CPU cannot
        abandon an in-flight memory access; callers advance the clock by
        the *actual* consumed time.
        """
        if budget_ns < 0:
            raise SimulationError(f"negative execution budget {budget_ns}")
        consumed = 0.0
        instructions = 0.0
        while consumed < budget_ns - _EPSILON_NS:
            block = cursor.peek()
            if block is None:
                return ExecResult(int(round(consumed)), instructions,
                                  ExecStop.PROGRAM_DONE)
            if isinstance(block, SyscallBlock):
                cursor.advance()
                return ExecResult(int(round(consumed)), instructions,
                                  ExecStop.SYSCALL, syscall=block)
            if isinstance(block, RateBlock):
                step_ns, step_instr = self._run_rate(
                    cursor, block, budget_ns - consumed
                )
            elif isinstance(block, TraceBlock):
                step_ns, step_instr = self._run_trace(
                    cursor, block, budget_ns - consumed
                )
            else:  # pragma: no cover - the Block union is closed
                raise SimulationError(f"unknown block type {type(block).__name__}")
            consumed += step_ns
            instructions += step_instr
            if step_ns <= 0 and step_instr <= 0:
                # Zero-width block (e.g. empty trace); skip it.
                cursor.advance()
        return ExecResult(int(round(consumed)), instructions, ExecStop.BUDGET)

    # ------------------------------------------------------------------
    def _run_rate(self, cursor: BlockCursor, block: RateBlock,
                  budget_ns: float) -> tuple:
        cycles_available = self.ns_to_cycles(budget_ns)
        instr_possible = cycles_available / block.cpi
        take = min(block.instructions, instr_possible)
        if take <= 0:
            cursor.consume_instructions(block.instructions)
            return 0.0, 0.0
        cycles = take * block.cpi
        events: Dict[str, float] = {
            name: rate * take for name, rate in block.rates.items()
        }
        events["INST_RETIRED"] = take
        events["CORE_CYCLES"] = cycles
        events["REF_CYCLES"] = cycles * self.tsc_ratio
        self.pmu.accumulate(events, block.privilege)
        cursor.consume_instructions(take)
        return self.cycles_to_ns(cycles), take

    def _run_trace(self, cursor: BlockCursor, block: TraceBlock,
                   budget_ns: float) -> tuple:
        if self.cache._num_levels == 3 and not self.cache.prefetch_next_line:
            return self._run_trace3(cursor, block, budget_ns)
        return self._run_trace_generic(cursor, block, budget_ns)

    def _run_trace3(self, cursor: BlockCursor, block: TraceBlock,
                    budget_ns: float) -> tuple:
        """Trace replay specialized for the standard 3-level hierarchy.

        The generic path pays a function call plus descriptor iteration
        per memory operation; this version unpacks the entire hierarchy
        geometry into locals once per slice and replays the ops in one
        straight-line loop, accumulating every statistic in local ints
        that are flushed to the cache/stats objects when the slice ends.
        Bit-identical to :meth:`_run_trace_generic`: the cache state
        mutations happen in the same order with the same semantics, and
        the counter flushes are exact integer/float sums.  Hierarchies
        with the next-line prefetcher enabled (or a non-standard level
        count) take the generic path instead.
        """
        budget_cycles = self.ns_to_cycles(budget_ns)
        folded_instructions = block.instructions_per_op + block.event_scale - 1.0
        folded_cycles = folded_instructions * block.cpi
        event_scale = block.event_scale
        op_instructions = block.instructions_per_op + event_scale
        flush_instructions = folded_instructions + 1.0
        cache = self.cache
        d1, d2, d3 = cache._descriptors
        level1, s1, m1, t1, sets1, w1, _n1 = d1
        level2, s2, m2, t2, sets2, w2, _n2 = d2
        level3, s3, m3, t3, sets3, w3, _n3 = d3
        lat1 = level1.config.hit_latency_cycles
        lat2 = level2.config.hit_latency_cycles
        lat3 = level3.config.hit_latency_cycles
        lat_mem = cache.memory_latency_cycles
        flush_kind = OpKind.FLUSH
        store_kind = OpKind.STORE

        cycles = 0.0
        loads = stores = 0.0
        instructions = 0.0
        n_access = n_flush = 0
        l1h = l1m = l2h = l2m = l3h = l3m = 0
        # Same-line run fast path: a load/store immediately following an
        # access to the same L1 line is a guaranteed L1 hit (the line is
        # MRU and nothing ran in between to evict it).  A flush, or a
        # prefetching memory miss (whose next-line fill could in a
        # degenerate geometry evict the line), resets the run.
        last_line = -1
        ops_done = 0
        start = cursor.op_index
        ops = block.ops
        total = len(ops)
        while start + ops_done < total and cycles < budget_cycles:
            address, kind = ops[start + ops_done]
            ops_done += 1
            cycles += folded_cycles
            if kind is flush_kind:
                line = address >> s1
                sets1[line & m1].pop(line >> t1, None)
                line = address >> s2
                sets2[line & m2].pop(line >> t2, None)
                line = address >> s3
                sets3[line & m3].pop(line >> t3, None)
                cycles += _FLUSH_LATENCY_CYCLES
                n_flush += 1
                instructions += flush_instructions
                last_line = -1
                continue
            n_access += 1
            instructions += op_instructions
            # The folded accesses are additional memory instructions
            # hitting L1 (spatial locality within the cached line).
            if kind is store_kind:
                stores += event_scale
            else:
                loads += event_scale
            line1 = address >> s1
            if line1 == last_line:
                l1h += 1
                cycles += lat1
                continue
            tag1 = line1 >> t1
            entries1 = sets1[line1 & m1]
            if tag1 in entries1:
                entries1.move_to_end(tag1)
                l1h += 1
                cycles += lat1
                last_line = line1
                continue
            l1m += 1
            line2 = address >> s2
            tag2 = line2 >> t2
            entries2 = sets2[line2 & m2]
            if tag2 in entries2:
                entries2.move_to_end(tag2)
                l2h += 1
                cycles += lat2
                # Fill L1 (the tag is known absent: evict if full, and a
                # fresh insert is already MRU).
                if len(entries1) >= w1:
                    entries1.popitem(last=False)
                entries1[tag1] = True
                last_line = line1
                continue
            l2m += 1
            line3 = address >> s3
            tag3 = line3 >> t3
            entries3 = sets3[line3 & m3]
            if tag3 in entries3:
                entries3.move_to_end(tag3)
                l3h += 1
                cycles += lat3
            else:
                l3m += 1
                cycles += lat_mem
                if len(entries3) >= w3:
                    entries3.popitem(last=False)
                entries3[tag3] = True
            if len(entries2) >= w2:
                entries2.popitem(last=False)
            entries2[tag2] = True
            if len(entries1) >= w1:
                entries1.popitem(last=False)
            entries1[tag1] = True
            last_line = line1

        if n_flush:
            cache.stats.flushes += n_flush
        if n_access:
            stats = cache.stats
            stats.accesses += n_access
            level1.hits += l1h
            level1.misses += l1m
            level2.hits += l2h
            level2.misses += l2m
            level3.hits += l3h
            level3.misses += l3m
            hits = stats.hits
            hits[_n1] += l1h
            hits[_n2] += l2h
            hits[_n3] += l3h
            misses = stats.misses
            misses[_n1] += l1m
            misses[_n2] += l2m
            misses[_n3] += l3m
            misses["memory"] += l3m
        if ops_done:
            events: Dict[str, float] = {
                "INST_RETIRED": instructions,
                "CORE_CYCLES": cycles,
                "REF_CYCLES": cycles * self.tsc_ratio,
            }
            if loads:
                events["LOADS"] = loads
            if stores:
                events["STORES"] = stores
            if n_flush:
                events["CACHE_FLUSHES"] = float(n_flush)
            if l1m:
                events["L1D_MISSES"] = float(l1m)
            if l2m:
                events["L2_MISSES"] = float(l2m)
                events["LLC_REFERENCES"] = float(l2m)
            if l3m:
                events["LLC_MISSES"] = float(l3m)
            self.pmu.accumulate(events, block.privilege)
            cursor.consume_ops(ops_done)
        return self.cycles_to_ns(cycles), instructions

    def _run_trace_generic(self, cursor: BlockCursor, block: TraceBlock,
                           budget_ns: float) -> tuple:
        budget_cycles = self.ns_to_cycles(budget_ns)
        folded_instructions = block.instructions_per_op + block.event_scale - 1.0
        folded_cycles = folded_instructions * block.cpi
        cache = self.cache
        clflush = cache.clflush
        access_fast = cache.access_fast
        # Latency per hit-level index; last entry is the memory access.
        latencies = [level.config.hit_latency_cycles for level in cache.levels]
        latencies.append(cache.memory_latency_cycles)
        llc_index = len(cache.levels) - 1
        memory_index = len(cache.levels)
        flush_kind = OpKind.FLUSH
        store_kind = OpKind.STORE
        event_scale = block.event_scale
        op_instructions = block.instructions_per_op + event_scale
        l1_latency = latencies[0]
        # Same-line run fast path: a load/store immediately following an
        # access to the same L1 line is a guaranteed L1 hit (the line is
        # MRU and nothing ran in between to evict it), so the full probe
        # is skipped and its bookkeeping applied directly.  A flush, or
        # a prefetching memory miss (whose next-line fill could in a
        # degenerate geometry evict the line), resets the run.
        level0 = cache.levels[0]
        l1_shift = level0._line_shift
        l1_name = level0.config.name
        stats = cache.stats
        stats_hits = stats.hits
        reset_on_miss = cache.prefetch_next_line
        last_line = -1

        cycles = 0.0
        loads = stores = flushes = 0.0
        l1_misses = l2_misses = llc_refs = llc_misses = 0.0
        instructions = 0.0
        ops_done = 0
        start = cursor.op_index
        ops = block.ops
        total = len(ops)
        while start + ops_done < total and cycles < budget_cycles:
            address, kind = ops[start + ops_done]
            cycles += folded_cycles
            if kind is flush_kind:
                clflush(address)
                cycles += _FLUSH_LATENCY_CYCLES
                flushes += 1.0
                instructions += folded_instructions + 1.0
                last_line = -1
            else:
                line = address >> l1_shift
                if line == last_line:
                    level0.hits += 1
                    stats.accesses += 1
                    stats_hits[l1_name] += 1
                    hit_index = 0
                    cycles += l1_latency
                else:
                    hit_index = access_fast(address)
                    cycles += latencies[hit_index]
                    if reset_on_miss and hit_index == memory_index:
                        last_line = -1
                    else:
                        last_line = line
                # The folded accesses are additional memory instructions
                # hitting L1 (spatial locality within the cached line).
                if kind is store_kind:
                    stores += event_scale
                else:
                    loads += event_scale
                if hit_index >= 1:
                    l1_misses += 1.0
                    if hit_index >= 2:
                        l2_misses += 1.0
                if hit_index >= llc_index:
                    llc_refs += 1.0
                    if hit_index == memory_index:
                        llc_misses += 1.0
                instructions += op_instructions
            ops_done += 1
        if ops_done:
            events: Dict[str, float] = {
                "INST_RETIRED": instructions,
                "CORE_CYCLES": cycles,
                "REF_CYCLES": cycles * self.tsc_ratio,
            }
            if loads:
                events["LOADS"] = loads
            if stores:
                events["STORES"] = stores
            if flushes:
                events["CACHE_FLUSHES"] = flushes
            if l1_misses:
                events["L1D_MISSES"] = l1_misses
            if l2_misses:
                events["L2_MISSES"] = l2_misses
            if llc_refs:
                events["LLC_REFERENCES"] = llc_refs
            if llc_misses:
                events["LLC_MISSES"] = llc_misses
            self.pmu.accumulate(events, block.privilege)
            cursor.consume_ops(ops_done)
        return self.cycles_to_ns(cycles), instructions
