"""Simulated CPU core.

The core turns workload blocks into elapsed time and PMU event counts:

* :class:`~repro.workloads.base.RateBlock` — instructions convert to
  cycles via the block's CPI; events accrue at the block's
  per-instruction rates.
* :class:`~repro.workloads.base.TraceBlock` — each memory operation is
  replayed through the cache hierarchy; its latency is charged and its
  cache events (LLC references/misses, ...) are recorded.  Each
  simulated operation folds in ``event_scale`` real memory instructions
  with spatial locality (the folded accesses hit L1 and cost ``cpi``).
* :class:`~repro.workloads.base.SyscallBlock` — execution stops and the
  block is handed back so the kernel can service the trap.

Execution is *sliced*: the kernel bounds each call by the time of the
next simulation event (timer fire, quantum expiry), and the cursor
resumes mid-block after preemption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.hw.cache import CacheHierarchy
from repro.hw.pmu import Pmu
from repro.workloads.base import (
    BlockCursor,
    OpKind,
    RateBlock,
    SyscallBlock,
    TraceBlock,
)

_FLUSH_LATENCY_CYCLES = 40
_EPSILON_NS = 1e-6


class ExecStop(enum.Enum):
    """Why :meth:`Core.execute` returned."""

    BUDGET = "budget"              # time slice exhausted
    PROGRAM_DONE = "program-done"  # block stream exhausted
    SYSCALL = "syscall"            # program trapped into the kernel


@dataclass
class ExecResult:
    """Outcome of one execution slice."""

    consumed_ns: int
    instructions: float
    stop: ExecStop
    syscall: Optional[SyscallBlock] = None


class Core:
    """One CPU core: executes block streams against a PMU and caches."""

    def __init__(self, frequency_hz: float, pmu: Pmu, cache: CacheHierarchy,
                 tsc_ratio: float = 1.0) -> None:
        if frequency_hz <= 0:
            raise SimulationError("core frequency must be positive")
        self.frequency_hz = frequency_hz
        self.pmu = pmu
        self.cache = cache
        self.tsc_ratio = tsc_ratio
        self._ns_per_cycle = 1e9 / frequency_hz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self._ns_per_cycle

    def ns_to_cycles(self, ns: float) -> float:
        return ns / self._ns_per_cycle

    def execute(self, cursor: BlockCursor, budget_ns: int) -> ExecResult:
        """Run the program at ``cursor`` for at most ``budget_ns``.

        A trace operation whose latency straddles the budget boundary is
        completed (slight overshoot), mirroring how a real CPU cannot
        abandon an in-flight memory access; callers advance the clock by
        the *actual* consumed time.
        """
        if budget_ns < 0:
            raise SimulationError(f"negative execution budget {budget_ns}")
        consumed = 0.0
        instructions = 0.0
        while consumed < budget_ns - _EPSILON_NS:
            block = cursor.peek()
            if block is None:
                return ExecResult(int(round(consumed)), instructions,
                                  ExecStop.PROGRAM_DONE)
            if isinstance(block, SyscallBlock):
                cursor.advance()
                return ExecResult(int(round(consumed)), instructions,
                                  ExecStop.SYSCALL, syscall=block)
            if isinstance(block, RateBlock):
                step_ns, step_instr = self._run_rate(
                    cursor, block, budget_ns - consumed
                )
            elif isinstance(block, TraceBlock):
                step_ns, step_instr = self._run_trace(
                    cursor, block, budget_ns - consumed
                )
            else:  # pragma: no cover - the Block union is closed
                raise SimulationError(f"unknown block type {type(block).__name__}")
            consumed += step_ns
            instructions += step_instr
            if step_ns <= 0 and step_instr <= 0:
                # Zero-width block (e.g. empty trace); skip it.
                cursor.advance()
        return ExecResult(int(round(consumed)), instructions, ExecStop.BUDGET)

    # ------------------------------------------------------------------
    def _run_rate(self, cursor: BlockCursor, block: RateBlock,
                  budget_ns: float) -> tuple:
        cycles_available = self.ns_to_cycles(budget_ns)
        instr_possible = cycles_available / block.cpi
        take = min(block.instructions, instr_possible)
        if take <= 0:
            cursor.consume_instructions(block.instructions)
            return 0.0, 0.0
        cycles = take * block.cpi
        events: Dict[str, float] = {
            name: rate * take for name, rate in block.rates.items()
        }
        events["INST_RETIRED"] = take
        events["CORE_CYCLES"] = cycles
        events["REF_CYCLES"] = cycles * self.tsc_ratio
        self.pmu.accumulate(events, block.privilege)
        cursor.consume_instructions(take)
        return self.cycles_to_ns(cycles), take

    def _run_trace(self, cursor: BlockCursor, block: TraceBlock,
                   budget_ns: float) -> tuple:
        budget_cycles = self.ns_to_cycles(budget_ns)
        folded_instructions = block.instructions_per_op + block.event_scale - 1.0
        folded_cycles = folded_instructions * block.cpi
        cache = self.cache
        clflush = cache.clflush
        access_fast = cache.access_fast
        # Latency per hit-level index; last entry is the memory access.
        latencies = [level.config.hit_latency_cycles for level in cache.levels]
        latencies.append(cache.memory_latency_cycles)
        llc_index = len(cache.levels) - 1
        memory_index = len(cache.levels)
        flush_kind = OpKind.FLUSH
        store_kind = OpKind.STORE

        cycles = 0.0
        loads = stores = flushes = 0.0
        l1_misses = l2_misses = llc_refs = llc_misses = 0.0
        instructions = 0.0
        ops_done = 0
        start = cursor.op_index
        ops = block.ops
        total = len(ops)
        while start + ops_done < total and cycles < budget_cycles:
            op = ops[start + ops_done]
            cycles += folded_cycles
            if op.kind is flush_kind:
                clflush(op.address)
                cycles += _FLUSH_LATENCY_CYCLES
                flushes += 1.0
                instructions += folded_instructions + 1.0
            else:
                hit_index = access_fast(op.address)
                cycles += latencies[hit_index]
                # The folded accesses are additional memory instructions
                # hitting L1 (spatial locality within the cached line).
                if op.kind is store_kind:
                    stores += block.event_scale
                else:
                    loads += block.event_scale
                if hit_index >= 1:
                    l1_misses += 1.0
                if hit_index >= 2:
                    l2_misses += 1.0
                if hit_index >= llc_index:
                    llc_refs += 1.0
                if hit_index == memory_index:
                    llc_misses += 1.0
                instructions += block.instructions_per_op + block.event_scale
            ops_done += 1
        if ops_done:
            events: Dict[str, float] = {
                "INST_RETIRED": instructions,
                "CORE_CYCLES": cycles,
                "REF_CYCLES": cycles * self.tsc_ratio,
            }
            if loads:
                events["LOADS"] = loads
            if stores:
                events["STORES"] = stores
            if flushes:
                events["CACHE_FLUSHES"] = flushes
            if l1_misses:
                events["L1D_MISSES"] = l1_misses
            if l2_misses:
                events["L2_MISSES"] = l2_misses
            if llc_refs:
                events["LLC_REFERENCES"] = llc_refs
            if llc_misses:
                events["LLC_MISSES"] = llc_misses
            self.pmu.accumulate(events, block.privilege)
            cursor.consume_ops(ops_done)
        return self.cycles_to_ns(cycles), instructions
