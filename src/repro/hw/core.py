"""Simulated CPU core.

The core turns workload blocks into elapsed time and PMU event counts:

* :class:`~repro.workloads.base.RateBlock` — instructions convert to
  cycles via the block's CPI; events accrue at the block's
  per-instruction rates.
* :class:`~repro.workloads.base.TraceBlock` — each memory operation is
  replayed through the cache hierarchy; its latency is charged and its
  cache events (LLC references/misses, ...) are recorded.  Each
  simulated operation folds in ``event_scale`` real memory instructions
  with spatial locality (the folded accesses hit L1 and cost ``cpi``).
* :class:`~repro.workloads.base.SyscallBlock` — execution stops and the
  block is handed back so the kernel can service the trap.

Execution is *sliced*: the kernel bounds each call by the time of the
next simulation event (timer fire, quantum expiry), and the cursor
resumes mid-block after preemption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

try:  # numpy powers the batch trace planner; without it the scalar
    import numpy as _np  # reference path handles everything.
except ImportError:  # pragma: no cover - numpy is in the test matrix
    _np = None

from repro.errors import SimulationError
from repro.hw.cache import CacheHierarchy
from repro.hw.pmu import Pmu
from repro.workloads.base import (
    BlockCursor,
    OpKind,
    RateBlock,
    SyscallBlock,
    TraceBlock,
)

_FLUSH_LATENCY_CYCLES = 40
_EPSILON_NS = 1e-6

# Epoch-accumulation column order.  Matches the insertion order of the
# per-slice events dict the scalar replay paths build, so the PMU
# applies contributions in the same sequence either way (each counter
# counts exactly one event, so the order is load-bearing only for
# keeping the two paths obviously symmetric).
_EPOCH_EVENTS = (
    "INST_RETIRED", "CORE_CYCLES", "REF_CYCLES",
    "LOADS", "STORES", "CACHE_FLUSHES",
    "L1D_MISSES", "L2_MISSES", "LLC_REFERENCES", "LLC_MISSES",
)

# Traces shorter than this replay faster through the scalar loop than
# through a plan lookup; the batch planner only kicks in above it.
_BATCH_MIN_OPS = 64
_BATCH_PLAN_LIMIT = 64

_KIND_LOAD, _KIND_STORE, _KIND_FLUSH = 0, 1, 2


class _TracePlan:
    """Precompiled replay plan for one (ops tuple, cache geometry) pair.

    Holds only integers derived from op addresses and the level
    shift/mask geometry — never references into a live hierarchy — so
    one plan serves every cache instance with the same geometry (each
    trial builds a fresh hierarchy).  ``ops`` is retained so the
    ``id(ops)`` cache key cannot be recycled while the plan lives.
    """

    __slots__ = (
        "ops", "kindcat", "seg_end", "flush_start", "flush_collapsed",
        "se1", "tg1", "se2", "tg2", "se3", "tg3",
        "pre_store", "pre_flush", "guard_min",
    )


# (id(ops), geometry) -> _TracePlan, bounded FIFO.  Keyed on object
# identity: workload generators memoize their op tuples, so the common
# case is a handful of long-lived tuples replayed across every trial.
_TRACE_PLANS: Dict[tuple, _TracePlan] = {}


def _trace_plan(ops: tuple, descriptors: tuple) -> Optional[_TracePlan]:
    """Build (or fetch) the batch replay plan for ``ops``."""
    _d1, _d2, _d3 = descriptors
    s1, m1, t1 = _d1[1], _d1[2], _d1[3]
    s2, m2, t2 = _d2[1], _d2[2], _d2[3]
    s3, m3, t3 = _d3[1], _d3[2], _d3[3]
    key = (id(ops), s1, m1, t1, s2, m2, t2, s3, m3, t3)
    plan = _TRACE_PLANS.get(key)
    if plan is not None:
        return plan
    n = len(ops)
    try:
        addresses = _np.fromiter((op[0] for op in ops),
                                 dtype=_np.int64, count=n)
    except OverflowError:  # addresses beyond int64: scalar path
        return None
    kinds = _np.fromiter(
        (_KIND_FLUSH if op[1] is OpKind.FLUSH
         else _KIND_STORE if op[1] is OpKind.STORE
         else _KIND_LOAD for op in ops),
        dtype=_np.int8, count=n)

    line1 = addresses >> s1
    line2 = addresses >> s2
    line3 = addresses >> s3
    accesses = kinds != _KIND_FLUSH
    # MRU mask: an access whose predecessor is an access to the same L1
    # line is a guaranteed hit (the line is most-recently-used and the
    # shortcut mutates nothing).  The first op of each execution slice
    # is forced down the probe path at replay time, mirroring the
    # scalar loop's per-slice ``last_line = -1`` reset.
    same = _np.zeros(n, dtype=bool)
    if n > 1:
        same[1:] = (line1[1:] == line1[:-1]) & accesses[:-1]
    mru = accesses & same
    kindcat = _np.where(
        kinds == _KIND_FLUSH, _KIND_FLUSH,
        _np.where(mru, 1, 0)).astype(_np.int8).tolist()
    kinds_list = kinds.tolist()

    # Guaranteed-miss analysis (Flush+Reload's reload pass): an access
    # whose most recent same-line predecessor *within this trace* is a
    # flush must miss every level — provided the flush executed in the
    # same slice, because nothing else can run (and so nothing can
    # re-insert the line) between two ops of one replay call.  guard[i]
    # records that flush's op index (-1 when the guarantee cannot be
    # made statically); replay checks guard >= slice start at run time.
    # Only valid when every level shares one line size, so "same line"
    # means the same bytes at every level.
    guard = [-1] * n
    if s1 == s2 == s3:
        lines = line1.tolist()
        last_touch: Dict[int, int] = {}
        for i in range(n):
            line = lines[i]
            previous = last_touch.get(line)
            if kinds_list[i] == _KIND_FLUSH:
                last_touch[line] = ~i  # flushes encode as ~index
            else:
                if previous is not None and previous < 0:
                    guard[i] = ~previous
                    if kindcat[i] == 0:
                        kindcat[i] = 3
                last_touch[line] = i

    plan = _TracePlan()
    plan.ops = ops
    plan.kindcat = kindcat
    plan.se1 = (line1 & m1).tolist()
    plan.tg1 = (line1 >> t1).tolist()
    plan.se2 = (line2 & m2).tolist()
    plan.tg2 = (line2 >> t2).tolist()
    plan.se3 = (line3 & m3).tolist()
    plan.tg3 = (line3 >> t3).tolist()
    stores = _np.zeros(n + 1, dtype=_np.int64)
    _np.cumsum(kinds == _KIND_STORE, out=stores[1:])
    plan.pre_store = stores.tolist()
    flushes = _np.zeros(n + 1, dtype=_np.int64)
    _np.cumsum(kinds == _KIND_FLUSH, out=flushes[1:])
    plan.pre_flush = flushes.tolist()

    # Segment table: for every op, the end of the maximal run of ops of
    # its category, so replay consumes flush/MRU/guaranteed-miss runs
    # in O(1) and walks probe runs in one tight inner loop.
    seg_end = [0] * n
    for i in range(n - 1, -1, -1):
        if i + 1 < n and kindcat[i + 1] == kindcat[i]:
            seg_end[i] = seg_end[i + 1]
        else:
            seg_end[i] = i + 1
    plan.seg_end = seg_end
    # Suffix-min of guard over each guaranteed-miss run: the whole
    # remainder of a run is provably absent iff every member's flush
    # happened at or after the slice start.
    guard_min = guard
    for i in range(n - 2, -1, -1):
        if kindcat[i] == 3 and kindcat[i + 1] == 3:
            if guard_min[i + 1] < guard_min[i]:
                guard_min[i] = guard_min[i + 1]
    plan.guard_min = guard_min
    flush_start = [0] * n
    for i in range(n):
        if kindcat[i] == _KIND_FLUSH:
            flush_start[i] = (flush_start[i - 1]
                              if i and kindcat[i - 1] == _KIND_FLUSH else i)
    plan.flush_start = flush_start
    # Per maximal flush run: the collapsed per-level wipe list
    # [(set index, {tags})].  A flush is a presence-independent pop, so
    # a whole run applies as one set-intersection removal per touched
    # set instead of three dict pops per op.
    collapsed = {}
    se_tg = ((plan.se1, plan.tg1), (plan.se2, plan.tg2),
             (plan.se3, plan.tg3))
    for run in range(n):
        if kindcat[run] != _KIND_FLUSH or flush_start[run] != run:
            continue
        end = seg_end[run]
        levels = []
        for se, tg in se_tg:
            wipes: Dict[int, set] = {}
            for i in range(run, end):
                wipes.setdefault(se[i], set()).add(tg[i])
            levels.append(list(wipes.items()))
        collapsed[run] = levels
    plan.flush_collapsed = collapsed

    if len(_TRACE_PLANS) >= _BATCH_PLAN_LIMIT:
        _TRACE_PLANS.pop(next(iter(_TRACE_PLANS)))
    _TRACE_PLANS[key] = plan
    return plan


class ExecStop(enum.Enum):
    """Why :meth:`Core.execute` returned."""

    BUDGET = "budget"              # time slice exhausted
    PROGRAM_DONE = "program-done"  # block stream exhausted
    SYSCALL = "syscall"            # program trapped into the kernel


@dataclass
class ExecResult:
    """Outcome of one execution slice."""

    consumed_ns: int
    instructions: float
    stop: ExecStop
    syscall: Optional[SyscallBlock] = None


class Core:
    """One CPU core: executes block streams against a PMU and caches."""

    def __init__(self, frequency_hz: float, pmu: Pmu, cache: CacheHierarchy,
                 tsc_ratio: float = 1.0) -> None:
        if frequency_hz <= 0:
            raise SimulationError("core frequency must be positive")
        self.frequency_hz = frequency_hz
        self.pmu = pmu
        self.cache = cache
        self.tsc_ratio = tsc_ratio
        self._ns_per_cycle = 1e9 / frequency_hz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self._ns_per_cycle

    def ns_to_cycles(self, ns: float) -> float:
        return ns / self._ns_per_cycle

    def execute(self, cursor: BlockCursor, budget_ns: int) -> ExecResult:
        """Run the program at ``cursor`` for at most ``budget_ns``.

        A trace operation whose latency straddles the budget boundary is
        completed (slight overshoot), mirroring how a real CPU cannot
        abandon an in-flight memory access; callers advance the clock by
        the *actual* consumed time.
        """
        if budget_ns < 0:
            raise SimulationError(f"negative execution budget {budget_ns}")
        consumed = 0.0
        instructions = 0.0
        while consumed < budget_ns - _EPSILON_NS:
            block = cursor.peek()
            if block is None:
                return ExecResult(int(round(consumed)), instructions,
                                  ExecStop.PROGRAM_DONE)
            if isinstance(block, SyscallBlock):
                cursor.advance()
                return ExecResult(int(round(consumed)), instructions,
                                  ExecStop.SYSCALL, syscall=block)
            if isinstance(block, RateBlock):
                step_ns, step_instr = self._run_rate(
                    cursor, block, budget_ns - consumed
                )
            elif isinstance(block, TraceBlock):
                step_ns, step_instr = self._run_trace(
                    cursor, block, budget_ns - consumed
                )
            else:  # pragma: no cover - the Block union is closed
                raise SimulationError(f"unknown block type {type(block).__name__}")
            consumed += step_ns
            instructions += step_instr
            if step_ns <= 0 and step_instr <= 0:
                # Zero-width block (e.g. empty trace); skip it.
                cursor.advance()
        return ExecResult(int(round(consumed)), instructions, ExecStop.BUDGET)

    # ------------------------------------------------------------------
    def _run_rate(self, cursor: BlockCursor, block: RateBlock,
                  budget_ns: float) -> tuple:
        cycles_available = self.ns_to_cycles(budget_ns)
        instr_possible = cycles_available / block.cpi
        take = min(block.instructions, instr_possible)
        if take <= 0:
            cursor.consume_instructions(block.instructions)
            return 0.0, 0.0
        cycles = take * block.cpi
        events: Dict[str, float] = {
            name: rate * take for name, rate in block.rates.items()
        }
        events["INST_RETIRED"] = take
        events["CORE_CYCLES"] = cycles
        events["REF_CYCLES"] = cycles * self.tsc_ratio
        self.pmu.accumulate(events, block.privilege)
        cursor.consume_instructions(take)
        return self.cycles_to_ns(cycles), take

    def _run_trace(self, cursor: BlockCursor, block: TraceBlock,
                   budget_ns: float) -> tuple:
        cache = self.cache
        if cache._num_levels == 3 and not cache.prefetch_next_line:
            if _np is not None and len(block.ops) >= _BATCH_MIN_OPS:
                # The batch path accumulates cycles/instructions in
                # Python ints, which reproduces the scalar float sums
                # bit-for-bit only when every per-op increment is
                # integral (sums of integers below 2^53 are exact and
                # order-independent).  Fractional increments — and
                # fractional latencies — take the scalar reference.
                event_scale = float(block.event_scale)
                folded = float(block.instructions_per_op
                               + block.event_scale - 1.0)
                folded_cycles = folded * block.cpi
                if (event_scale.is_integer() and folded.is_integer()
                        and folded_cycles.is_integer()
                        and self._integer_latencies()):
                    plan = _trace_plan(block.ops, cache._descriptors)
                    if plan is not None:
                        return self._run_trace_batch(
                            cursor, block, budget_ns, plan)
            return self._run_trace3(cursor, block, budget_ns)
        return self._run_trace_generic(cursor, block, budget_ns)

    def _integer_latencies(self) -> bool:
        d1, d2, d3 = self.cache._descriptors
        return (type(d1[0].config.hit_latency_cycles) is int
                and type(d2[0].config.hit_latency_cycles) is int
                and type(d3[0].config.hit_latency_cycles) is int
                and type(self.cache.memory_latency_cycles) is int)

    def _run_trace_batch(self, cursor: BlockCursor, block: TraceBlock,
                         budget_ns: float, plan: _TracePlan) -> tuple:
        """Segment-batched trace replay (the columnar core's hot path).

        Replays the slice as precompiled *segments* instead of ops:
        maximal flush runs apply as one set-intersection wipe per
        touched cache set, maximal same-line (MRU) runs retire in O(1)
        with an exact closed-form budget cut, and the remaining probe
        ops read their set indices and tags from the plan's precomputed
        columns instead of re-deriving them from the address.  All
        statistics accumulate in flat integers flushed once per slice,
        and the PMU receives one epoch-accumulation call.  Bit-identical
        to :meth:`_run_trace3` under the seam's integrality guard: every
        cache mutation happens with the same semantics (deletion order
        within a flush run cannot affect dict state; MRU shortcuts
        mutate nothing), and all counter sums are exact integer
        arithmetic below 2^53.
        """
        budget_cycles = self.ns_to_cycles(budget_ns)
        event_scale = int(block.event_scale)
        # Per-op retired instructions: flush and access ops both retire
        # instructions_per_op + event_scale (the flush itself or the
        # probing access plus the folded line-local accesses).
        op_instructions = int(block.instructions_per_op + block.event_scale)
        folded_cycles = int((block.instructions_per_op
                             + block.event_scale - 1.0) * block.cpi)
        cache = self.cache
        d1, d2, d3 = cache._descriptors
        level1, _s1, _m1, _t1, sets1, w1, _n1 = d1
        level2, _s2, _m2, _t2, sets2, w2, _n2 = d2
        level3, _s3, _m3, _t3, sets3, w3, _n3 = d3
        lat1 = level1.config.hit_latency_cycles
        lat2 = level2.config.hit_latency_cycles
        lat3 = level3.config.hit_latency_cycles
        lat_mem = cache.memory_latency_cycles
        cost_mru = folded_cycles + lat1
        cost_flush = folded_cycles + _FLUSH_LATENCY_CYCLES
        cost_miss = folded_cycles + lat_mem

        kindcat = plan.kindcat
        seg_end = plan.seg_end
        guard_min = plan.guard_min
        flush_start = plan.flush_start
        se1, tg1 = plan.se1, plan.tg1
        se2, tg2 = plan.se2, plan.tg2
        se3, tg3 = plan.se3, plan.tg3

        cycles = 0
        l1h = l1m = l2h = l2m = l3h = l3m = 0
        start = cursor.op_index
        p = start
        total = len(kindcat)
        while p < total and cycles < budget_cycles:
            cat = kindcat[p]
            if cat == 1 and p == start:
                # Resuming mid-run: the predecessor ran in an earlier
                # slice, so probe exactly as the scalar loop (which
                # resets last_line per slice) would.  The line is still
                # MRU, so the probe's move_to_end is order-neutral.
                cat = 0
            elif cat == 3:
                # Only ops whose covering flush executed inside *this*
                # slice are provably absent; older guards mean another
                # program may have re-filled the line between slices,
                # so those ops take the full probe.
                if guard_min[p] < start:
                    cat = 0
            if cat == 3:
                # Guaranteed-miss run: every op misses L1/L2/L3 and
                # fills inward from memory, so the membership probes
                # are skipped and only the scalar path's mutations
                # (evict-if-full + insert per level) are applied.
                end = seg_end[p]
                length = end - p
                n = int((budget_cycles - cycles) // cost_miss) + 1
                if n > length:
                    n = length
                while n > 0 and cycles + (n - 1) * cost_miss >= budget_cycles:
                    n -= 1
                while n < length and cycles + n * cost_miss < budget_cycles:
                    n += 1
                stop = p + n
                for si3, ti3, si2, ti2, si1, ti1 in zip(
                        se3[p:stop], tg3[p:stop], se2[p:stop], tg2[p:stop],
                        se1[p:stop], tg1[p:stop]):
                    entries3 = sets3[si3]
                    if len(entries3) >= w3:
                        entries3.popitem(last=False)
                    entries3[ti3] = True
                    entries2 = sets2[si2]
                    if len(entries2) >= w2:
                        entries2.popitem(last=False)
                    entries2[ti2] = True
                    entries1 = sets1[si1]
                    if len(entries1) >= w1:
                        entries1.popitem(last=False)
                    entries1[ti1] = True
                l1m += n
                l2m += n
                l3m += n
                cycles += n * cost_miss
                p += n
                continue
            if cat == 0:
                # Probe run: per-op budget checks stay (each op's cost
                # depends on the hit level), but segment dispatch is
                # hoisted out of the loop.  Demoted ops (a resumed MRU
                # or an unprovable guaranteed-miss) probe exactly one
                # op before re-entering the dispatcher.
                e = seg_end[p] if kindcat[p] == 0 else p + 1
                while True:
                    tag1 = tg1[p]
                    entries1 = sets1[se1[p]]
                    if tag1 in entries1:
                        entries1.move_to_end(tag1)
                        l1h += 1
                        cycles += cost_mru
                    else:
                        l1m += 1
                        tag2 = tg2[p]
                        entries2 = sets2[se2[p]]
                        if tag2 in entries2:
                            entries2.move_to_end(tag2)
                            l2h += 1
                            cycles += folded_cycles + lat2
                        else:
                            l2m += 1
                            tag3 = tg3[p]
                            entries3 = sets3[se3[p]]
                            if tag3 in entries3:
                                entries3.move_to_end(tag3)
                                l3h += 1
                                cycles += folded_cycles + lat3
                            else:
                                l3m += 1
                                cycles += folded_cycles + lat_mem
                                if len(entries3) >= w3:
                                    entries3.popitem(last=False)
                                entries3[tag3] = True
                            if len(entries2) >= w2:
                                entries2.popitem(last=False)
                            entries2[tag2] = True
                        if len(entries1) >= w1:
                            entries1.popitem(last=False)
                        entries1[tag1] = True
                    p += 1
                    if p >= e or cycles >= budget_cycles:
                        break
                continue
            # Run segment: take as many ops as the budget admits.  The
            # scalar loop checks ``cycles < budget`` *before* each op,
            # so op k of the run executes iff cycles + k*cost is under
            # budget; the float estimate is corrected to that exact
            # integer condition.
            end = seg_end[p]
            length = end - p
            cost = cost_mru if cat == 1 else cost_flush
            if cost <= 0:
                n = length
            else:
                n = int((budget_cycles - cycles) // cost) + 1
                if n > length:
                    n = length
                while n > 0 and cycles + (n - 1) * cost >= budget_cycles:
                    n -= 1
                while n < length and cycles + n * cost < budget_cycles:
                    n += 1
            if cat == 1:
                l1h += n
                cycles += n * cost_mru
            else:
                if n == length and p == flush_start[p]:
                    level_wipes = plan.flush_collapsed[p]
                    for sets, wipes in ((sets1, level_wipes[0]),
                                        (sets2, level_wipes[1]),
                                        (sets3, level_wipes[2])):
                        for set_index, tags in wipes:
                            entries = sets[set_index]
                            for tag in tags.intersection(entries):
                                del entries[tag]
                else:
                    for i in range(p, p + n):
                        sets1[se1[i]].pop(tg1[i], None)
                        sets2[se2[i]].pop(tg2[i], None)
                        sets3[se3[i]].pop(tg3[i], None)
                cycles += n * cost_flush
            p += n

        ops_done = p - start
        if not ops_done:
            return 0.0, 0.0
        pre_flush = plan.pre_flush
        pre_store = plan.pre_store
        n_flush = pre_flush[p] - pre_flush[start]
        n_access = ops_done - n_flush
        n_store = pre_store[p] - pre_store[start]
        stores = n_store * event_scale
        loads = (n_access - n_store) * event_scale
        instructions = ops_done * op_instructions
        if n_flush:
            cache.stats.flushes += n_flush
        if n_access:
            stats = cache.stats
            stats.accesses += n_access
            level1.hits += l1h
            level1.misses += l1m
            level2.hits += l2h
            level2.misses += l2m
            level3.hits += l3h
            level3.misses += l3m
            hits = stats.hits
            hits[_n1] += l1h
            hits[_n2] += l2h
            hits[_n3] += l3h
            misses = stats.misses
            misses[_n1] += l1m
            misses[_n2] += l2m
            misses[_n3] += l3m
            misses["memory"] += l3m
        self.pmu.accumulate_epoch(
            _EPOCH_EVENTS,
            (float(instructions), float(cycles), cycles * self.tsc_ratio,
             float(loads), float(stores), float(n_flush),
             float(l1m), float(l2m), float(l2m), float(l3m)),
            block.privilege)
        cursor.consume_ops(ops_done)
        return self.cycles_to_ns(cycles), float(instructions)

    def _run_trace3(self, cursor: BlockCursor, block: TraceBlock,
                    budget_ns: float) -> tuple:
        """Trace replay specialized for the standard 3-level hierarchy.

        The generic path pays a function call plus descriptor iteration
        per memory operation; this version unpacks the entire hierarchy
        geometry into locals once per slice and replays the ops in one
        straight-line loop, accumulating every statistic in local ints
        that are flushed to the cache/stats objects when the slice ends.
        Bit-identical to :meth:`_run_trace_generic`: the cache state
        mutations happen in the same order with the same semantics, and
        the counter flushes are exact integer/float sums.  Hierarchies
        with the next-line prefetcher enabled (or a non-standard level
        count) take the generic path instead.
        """
        budget_cycles = self.ns_to_cycles(budget_ns)
        folded_instructions = block.instructions_per_op + block.event_scale - 1.0
        folded_cycles = folded_instructions * block.cpi
        event_scale = block.event_scale
        op_instructions = block.instructions_per_op + event_scale
        flush_instructions = folded_instructions + 1.0
        cache = self.cache
        d1, d2, d3 = cache._descriptors
        level1, s1, m1, t1, sets1, w1, _n1 = d1
        level2, s2, m2, t2, sets2, w2, _n2 = d2
        level3, s3, m3, t3, sets3, w3, _n3 = d3
        lat1 = level1.config.hit_latency_cycles
        lat2 = level2.config.hit_latency_cycles
        lat3 = level3.config.hit_latency_cycles
        lat_mem = cache.memory_latency_cycles
        flush_kind = OpKind.FLUSH
        store_kind = OpKind.STORE

        cycles = 0.0
        loads = stores = 0.0
        instructions = 0.0
        n_access = n_flush = 0
        l1h = l1m = l2h = l2m = l3h = l3m = 0
        # Same-line run fast path: a load/store immediately following an
        # access to the same L1 line is a guaranteed L1 hit (the line is
        # MRU and nothing ran in between to evict it).  A flush, or a
        # prefetching memory miss (whose next-line fill could in a
        # degenerate geometry evict the line), resets the run.
        last_line = -1
        ops_done = 0
        start = cursor.op_index
        ops = block.ops
        total = len(ops)
        while start + ops_done < total and cycles < budget_cycles:
            address, kind = ops[start + ops_done]
            ops_done += 1
            cycles += folded_cycles
            if kind is flush_kind:
                line = address >> s1
                sets1[line & m1].pop(line >> t1, None)
                line = address >> s2
                sets2[line & m2].pop(line >> t2, None)
                line = address >> s3
                sets3[line & m3].pop(line >> t3, None)
                cycles += _FLUSH_LATENCY_CYCLES
                n_flush += 1
                instructions += flush_instructions
                last_line = -1
                continue
            n_access += 1
            instructions += op_instructions
            # The folded accesses are additional memory instructions
            # hitting L1 (spatial locality within the cached line).
            if kind is store_kind:
                stores += event_scale
            else:
                loads += event_scale
            line1 = address >> s1
            if line1 == last_line:
                l1h += 1
                cycles += lat1
                continue
            tag1 = line1 >> t1
            entries1 = sets1[line1 & m1]
            if tag1 in entries1:
                entries1.move_to_end(tag1)
                l1h += 1
                cycles += lat1
                last_line = line1
                continue
            l1m += 1
            line2 = address >> s2
            tag2 = line2 >> t2
            entries2 = sets2[line2 & m2]
            if tag2 in entries2:
                entries2.move_to_end(tag2)
                l2h += 1
                cycles += lat2
                # Fill L1 (the tag is known absent: evict if full, and a
                # fresh insert is already MRU).
                if len(entries1) >= w1:
                    entries1.popitem(last=False)
                entries1[tag1] = True
                last_line = line1
                continue
            l2m += 1
            line3 = address >> s3
            tag3 = line3 >> t3
            entries3 = sets3[line3 & m3]
            if tag3 in entries3:
                entries3.move_to_end(tag3)
                l3h += 1
                cycles += lat3
            else:
                l3m += 1
                cycles += lat_mem
                if len(entries3) >= w3:
                    entries3.popitem(last=False)
                entries3[tag3] = True
            if len(entries2) >= w2:
                entries2.popitem(last=False)
            entries2[tag2] = True
            if len(entries1) >= w1:
                entries1.popitem(last=False)
            entries1[tag1] = True
            last_line = line1

        if n_flush:
            cache.stats.flushes += n_flush
        if n_access:
            stats = cache.stats
            stats.accesses += n_access
            level1.hits += l1h
            level1.misses += l1m
            level2.hits += l2h
            level2.misses += l2m
            level3.hits += l3h
            level3.misses += l3m
            hits = stats.hits
            hits[_n1] += l1h
            hits[_n2] += l2h
            hits[_n3] += l3h
            misses = stats.misses
            misses[_n1] += l1m
            misses[_n2] += l2m
            misses[_n3] += l3m
            misses["memory"] += l3m
        if ops_done:
            events: Dict[str, float] = {
                "INST_RETIRED": instructions,
                "CORE_CYCLES": cycles,
                "REF_CYCLES": cycles * self.tsc_ratio,
            }
            if loads:
                events["LOADS"] = loads
            if stores:
                events["STORES"] = stores
            if n_flush:
                events["CACHE_FLUSHES"] = float(n_flush)
            if l1m:
                events["L1D_MISSES"] = float(l1m)
            if l2m:
                events["L2_MISSES"] = float(l2m)
                events["LLC_REFERENCES"] = float(l2m)
            if l3m:
                events["LLC_MISSES"] = float(l3m)
            self.pmu.accumulate(events, block.privilege)
            cursor.consume_ops(ops_done)
        return self.cycles_to_ns(cycles), instructions

    def _run_trace_generic(self, cursor: BlockCursor, block: TraceBlock,
                           budget_ns: float) -> tuple:
        budget_cycles = self.ns_to_cycles(budget_ns)
        folded_instructions = block.instructions_per_op + block.event_scale - 1.0
        folded_cycles = folded_instructions * block.cpi
        cache = self.cache
        clflush = cache.clflush
        access_fast = cache.access_fast
        # Latency per hit-level index; last entry is the memory access.
        latencies = [level.config.hit_latency_cycles for level in cache.levels]
        latencies.append(cache.memory_latency_cycles)
        llc_index = len(cache.levels) - 1
        memory_index = len(cache.levels)
        flush_kind = OpKind.FLUSH
        store_kind = OpKind.STORE
        event_scale = block.event_scale
        op_instructions = block.instructions_per_op + event_scale
        l1_latency = latencies[0]
        # Same-line run fast path: a load/store immediately following an
        # access to the same L1 line is a guaranteed L1 hit (the line is
        # MRU and nothing ran in between to evict it), so the full probe
        # is skipped and its bookkeeping applied directly.  A flush, or
        # a prefetching memory miss (whose next-line fill could in a
        # degenerate geometry evict the line), resets the run.
        level0 = cache.levels[0]
        l1_shift = level0._line_shift
        l1_name = level0.config.name
        stats = cache.stats
        stats_hits = stats.hits
        reset_on_miss = cache.prefetch_next_line
        last_line = -1

        cycles = 0.0
        loads = stores = flushes = 0.0
        l1_misses = l2_misses = llc_refs = llc_misses = 0.0
        instructions = 0.0
        ops_done = 0
        start = cursor.op_index
        ops = block.ops
        total = len(ops)
        while start + ops_done < total and cycles < budget_cycles:
            address, kind = ops[start + ops_done]
            cycles += folded_cycles
            if kind is flush_kind:
                clflush(address)
                cycles += _FLUSH_LATENCY_CYCLES
                flushes += 1.0
                instructions += folded_instructions + 1.0
                last_line = -1
            else:
                line = address >> l1_shift
                if line == last_line:
                    level0.hits += 1
                    stats.accesses += 1
                    stats_hits[l1_name] += 1
                    hit_index = 0
                    cycles += l1_latency
                else:
                    hit_index = access_fast(address)
                    cycles += latencies[hit_index]
                    if reset_on_miss and hit_index == memory_index:
                        last_line = -1
                    else:
                        last_line = line
                # The folded accesses are additional memory instructions
                # hitting L1 (spatial locality within the cached line).
                if kind is store_kind:
                    stores += event_scale
                else:
                    loads += event_scale
                if hit_index >= 1:
                    l1_misses += 1.0
                    if hit_index >= 2:
                        l2_misses += 1.0
                if hit_index >= llc_index:
                    llc_refs += 1.0
                    if hit_index == memory_index:
                        llc_misses += 1.0
                instructions += op_instructions
            ops_done += 1
        if ops_done:
            events: Dict[str, float] = {
                "INST_RETIRED": instructions,
                "CORE_CYCLES": cycles,
                "REF_CYCLES": cycles * self.tsc_ratio,
            }
            if loads:
                events["LOADS"] = loads
            if stores:
                events["STORES"] = stores
            if flushes:
                events["CACHE_FLUSHES"] = flushes
            if l1_misses:
                events["L1D_MISSES"] = l1_misses
            if l2_misses:
                events["L2_MISSES"] = l2_misses
            if llc_refs:
                events["LLC_REFERENCES"] = llc_refs
            if llc_misses:
                events["LLC_MISSES"] = llc_misses
            self.pmu.accumulate(events, block.privilege)
            cursor.consume_ops(ops_done)
        return self.cycles_to_ns(cycles), instructions
