"""Closed-loop adaptive sampling control (see :mod:`repro.control.controller`)."""

from repro.control.controller import (
    AdaptiveController,
    ControlConfig,
    ControlDecision,
    SensorReading,
)
from repro.control.ledger import (
    ACTIONS,
    LADDER_LEVELS,
    ControlLedger,
    ControlRecord,
)

__all__ = [
    "ACTIONS",
    "AdaptiveController",
    "ControlConfig",
    "ControlDecision",
    "ControlLedger",
    "ControlRecord",
    "LADDER_LEVELS",
    "SensorReading",
]
