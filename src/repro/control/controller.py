"""Closed-loop adaptive sampling controller.

The paper's central trade-off (Tables II/III) is sampling period vs
perturbation: 100 µs reveals behaviour 10 ms hides, but costs measurable
overhead.  This module closes the loop online: a pure, deterministic
decision engine that watches two signals the K-LEB controller already
observes at every drain cycle —

* the **overhead fraction**: monitoring cycles (HRTimer handler +
  drain ``copy_to_user`` + multiplex rotation) over elapsed victim
  cycles, the same handler/drain decomposition behind the Table II/III
  overhead model, EWMA-smoothed; and
* the **counter stream** itself: an EWMA mean/variance tracker on the
  primary event's rate whose z-score flags phase changes (speed up
  when the signal is moving — the ScALPEL argument).

Decisions move on an explicit degradation ladder with recovery
(:data:`~repro.control.ledger.LADDER_LEVELS`)::

    nominal -> period-lengthened -> batch-shrunk
            -> rotation-slowed -> sample-dropping

Degradation steps push onto a LIFO ladder stack; recoveries pop it, so
every degradation has a matching recovery or is still open at exit
(the conservation contract :class:`~repro.control.ledger.ControlLedger`
checks).  Below nominal lives the *boost* fast path: a phase-change
trigger drops the period toward ``min_period_ns`` for fine-grained
sampling across the transition, released back to nominal once the
signal settles.

Two rules keep the loop from oscillating or ratcheting into a
degenerate period:

* **capped steps** — the period moves by exactly ``step_factor`` (2×)
  per decision and is clamped to ``[min_period_ns, max_period_ns]``;
  the skip factor doubles up to ``skip_factor_max``;
* **hysteresis** — a step opposing the previous one is forbidden until
  ``settle_observations`` drain cycles have passed, and recovery
  requires the smoothed overhead below ``recover_fraction × budget``.
  With ``recover_fraction = 0.5`` and 2× period steps this is exactly
  the no-flap condition: undoing a period doubling doubles the
  overhead fraction, so recovery only fires when the restored level
  will still fit under the budget.

The controller draws **no randomness** and reads **no wall clock** —
every decision is a pure function of the observation sequence, which is
what makes adaptive runs bit-identical across runs and worker counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.control.ledger import ControlLedger
from repro.errors import ControlError
from repro.sim.clock import ms, us

#: Ladder rung per degradation kind (see LADDER_LEVELS).
_RUNG = {"period": 1, "batch": 2, "rotate": 3, "skip": 4}


@dataclass(frozen=True)
class ControlConfig:
    """Tunables of the closed loop (pure configuration, no state)."""

    #: Hard overhead budget: monitoring cycles as a percentage of
    #: elapsed victim cycles.  The ladder engages when the smoothed
    #: fraction exceeds this.
    overhead_budget_percent: float = 2.0
    #: Period bounds.  The boost fast path may shorten the period down
    #: to ``min_period_ns``; the ladder may lengthen it up to
    #: ``max_period_ns``.
    min_period_ns: int = us(100)
    max_period_ns: int = ms(10)
    #: EWMA smoothing factor for the overhead fraction.
    overhead_alpha: float = 0.3
    #: EWMA smoothing factor for the signal mean/variance tracker.
    signal_alpha: float = 0.2
    #: Phase-change trigger: |signal - mean| > phase_z * sd.
    phase_z: float = 3.0
    #: Observations before the variance tracker may trigger.
    warmup_observations: int = 4
    #: Hysteresis window: observations that must pass before a step in
    #: the opposite direction of the previous one.
    settle_observations: int = 4
    #: Consecutive unhealthy observations before a degradation step.
    escalate_observations: int = 2
    #: Recovery threshold as a fraction of the budget (see module doc
    #: for why 0.5 is the no-flap value under 2x period steps).
    recover_fraction: float = 0.5
    #: Boost jump: period -> max(min_period, period // boost_factor).
    boost_factor: int = 8
    #: Capped ladder step for the period (and boost release).
    step_factor: int = 2
    #: Drain-read cap while on the batch-shrunk rung.
    drain_batch_shrunk: int = 256
    #: Multiplex rotation slowdown multiplier on the rotation-slowed rung.
    rotate_slowdown_factor: int = 2
    #: Ceiling for the sample-dropping rung's skip factor.
    skip_factor_max: int = 8

    def validate(self) -> None:
        if not 0.0 < self.overhead_budget_percent <= 100.0:
            raise ControlError(
                f"overhead budget must be in (0, 100] percent, "
                f"got {self.overhead_budget_percent}"
            )
        if self.min_period_ns <= 0 or self.max_period_ns < self.min_period_ns:
            raise ControlError(
                f"period bounds must satisfy 0 < min <= max, got "
                f"[{self.min_period_ns}, {self.max_period_ns}]"
            )
        for name in ("overhead_alpha", "signal_alpha"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ControlError(f"{name} must be in (0, 1], got {value}")
        if self.phase_z <= 0:
            raise ControlError(f"phase_z must be positive, got {self.phase_z}")
        if not 0.0 < self.recover_fraction < 1.0:
            raise ControlError(
                f"recover_fraction must be in (0, 1), "
                f"got {self.recover_fraction}"
            )
        for name in ("warmup_observations", "settle_observations",
                     "escalate_observations"):
            if getattr(self, name) < 1:
                raise ControlError(f"{name} must be >= 1")
        for name in ("boost_factor", "step_factor",
                     "rotate_slowdown_factor", "skip_factor_max"):
            if getattr(self, name) < 2:
                raise ControlError(f"{name} must be >= 2")
        if self.drain_batch_shrunk < 1:
            raise ControlError(
                f"drain_batch_shrunk must be >= 1, "
                f"got {self.drain_batch_shrunk}"
            )


@dataclass(frozen=True)
class SensorReading:
    """What one drain cycle observed (all values already computed —
    the controller steers, the sensor never does)."""

    now_ns: int            # simulated time of the read syscall
    monitor_ns: int        # cumulative monitoring cost (handler+drain+rotate)
    signal: Optional[float]  # primary-event rate over the batch (None: no data)
    pressure: float        # buffer high-watermark fraction since last read
    dropped: int           # cumulative buffer drops
    paused: bool           # safety stop observed before the drain


@dataclass(frozen=True)
class ControlDecision:
    """The controller's answer to one observation."""

    action: Optional[str]      # ledger action taken, or None
    changed: bool              # module actuation (period/skip/rotate) needed
    period_ns: int
    skip_factor: int
    rotate_slowdown: int
    drain_max_items: Optional[int]
    level: int
    overhead_percent: Optional[float]
    phase_shift: bool


class AdaptiveController:
    """Deterministic decision engine for one adaptive session."""

    def __init__(self, config: ControlConfig, nominal_period_ns: int,
                 multiplexed: bool = False,
                 min_period_floor_ns: int = 0) -> None:
        config.validate()
        self.config = config
        self.min_period_ns = max(config.min_period_ns, min_period_floor_ns)
        self.max_period_ns = max(config.max_period_ns, self.min_period_ns)
        self.nominal_period_ns = min(
            max(int(nominal_period_ns), self.min_period_ns),
            self.max_period_ns,
        )
        self.multiplexed = multiplexed
        self.ledger = ControlLedger()

        # Actuation state (what the module should be running with).
        self.period_ns = self.nominal_period_ns
        self.skip_factor = 1
        self.rotate_slowdown = 1
        self.drain_max_items: Optional[int] = None
        self.boosted = False

        # LIFO degradation stack: (kind, value to restore on recovery).
        self._ladder: List[Tuple[str, int]] = []

        # Sensor state.
        self._last: Optional[SensorReading] = None
        self._overhead_ewma: Optional[float] = None
        self._signal_mean: Optional[float] = None
        self._signal_var = 0.0
        self._signal_seen = 0
        self._last_dropped = 0

        # Hysteresis state.  Direction: +1 = more aggressive monitoring
        # (recover, boost), -1 = cheaper monitoring (degrade, release).
        self._last_dir = 0
        self._since_step = 10 ** 9
        self._unhealthy_streak = 0
        self._healthy_streak = 0
        self._quiet_streak = 0

        # Accounting for the session report.
        self.observations = 0
        self.min_period_seen = self.period_ns
        self.max_period_seen = self.period_ns
        self.overhead_percent_last: Optional[float] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        """Current ladder level (0 = nominal; the deepest open rung)."""
        if not self._ladder:
            return 0
        return _RUNG[self._ladder[-1][0]]

    @property
    def depth(self) -> int:
        """Open degradations (ladder stack size)."""
        return len(self._ladder)

    @property
    def at_nominal(self) -> bool:
        return (not self._ladder and not self.boosted
                and self.period_ns == self.nominal_period_ns)

    # ------------------------------------------------------------------
    # The control law
    # ------------------------------------------------------------------
    def observe(self, reading: SensorReading) -> ControlDecision:
        """Fold one drain-cycle observation into the loop and decide."""
        self.observations += 1
        self._since_step += 1
        previous = self._last
        self._last = reading

        # Overhead sensor: windowed fraction, EWMA-smoothed.
        if previous is not None:
            elapsed = reading.now_ns - previous.now_ns
            monitor = reading.monitor_ns - previous.monitor_ns
            if elapsed > 0 and monitor >= 0:
                fraction = 100.0 * monitor / elapsed
                if self._overhead_ewma is None:
                    self._overhead_ewma = fraction
                else:
                    alpha = self.config.overhead_alpha
                    self._overhead_ewma = (alpha * fraction
                                           + (1.0 - alpha)
                                           * self._overhead_ewma)
        self.overhead_percent_last = self._overhead_ewma

        # Phase-change trigger: z-score of the signal against its
        # EWMA mean/variance (warmed up first so startup transients
        # do not fire it).
        phase_shift = self._update_signal(reading.signal)

        # Buffer-pressure sensor: the safety stop engaging, or fresh
        # drops since the last look, is monitoring-health degradation
        # regardless of the overhead fraction.
        fresh_drops = reading.dropped > self._last_dropped
        self._last_dropped = reading.dropped
        pressured = reading.paused or fresh_drops

        action: Optional[str] = None
        changed = False
        budget = self.config.overhead_budget_percent
        over_budget = (self._overhead_ewma is not None
                       and self._overhead_ewma > budget)
        healthy = (not pressured
                   and (self._overhead_ewma is None
                        or self._overhead_ewma
                        < budget * self.config.recover_fraction))

        if over_budget or pressured:
            self._unhealthy_streak += 1
            self._healthy_streak = 0
            if (self._unhealthy_streak >= self.config.escalate_observations
                    and self._can_step(-1)):
                action, changed = self._step_down(reading)
                if action is not None:
                    self._unhealthy_streak = 0
        else:
            self._unhealthy_streak = 0
            if healthy:
                self._healthy_streak += 1
            else:
                self._healthy_streak = 0
            if (self._ladder
                    and self._healthy_streak >= self.config.settle_observations
                    and self._can_step(+1)):
                action, changed = self._recover(reading)
                if action is not None:
                    self._healthy_streak = 0
            elif (not self._ladder and phase_shift and not self.boosted
                    and self.period_ns > self.min_period_ns
                    and healthy and self._can_step(+1)):
                action, changed = self._boost(reading)

        # Boost release: once the signal goes quiet for a settle
        # window, relax back toward nominal one capped step at a time.
        if self.boosted and action is None:
            if phase_shift:
                self._quiet_streak = 0
            else:
                self._quiet_streak += 1
                if (self._quiet_streak >= self.config.settle_observations
                        and self._can_step(-1)):
                    action, changed = self._boost_release(reading)
                    if action is not None:
                        self._quiet_streak = 0

        return ControlDecision(
            action=action,
            changed=changed,
            period_ns=self.period_ns,
            skip_factor=self.skip_factor,
            rotate_slowdown=self.rotate_slowdown,
            drain_max_items=self.drain_max_items,
            level=self.level,
            overhead_percent=self._overhead_ewma,
            phase_shift=phase_shift,
        )

    # ------------------------------------------------------------------
    # Signal tracker
    # ------------------------------------------------------------------
    def _update_signal(self, signal: Optional[float]) -> bool:
        if signal is None:
            return False
        triggered = False
        if self._signal_mean is None:
            self._signal_mean = signal
            self._signal_var = 0.0
        else:
            deviation = signal - self._signal_mean
            if self._signal_seen >= self.config.warmup_observations:
                sd = math.sqrt(self._signal_var)
                if sd > 0 and abs(deviation) > self.config.phase_z * sd:
                    triggered = True
            alpha = self.config.signal_alpha
            self._signal_mean += alpha * deviation
            self._signal_var = ((1.0 - alpha)
                                * (self._signal_var
                                   + alpha * deviation * deviation))
        self._signal_seen += 1
        return triggered

    # ------------------------------------------------------------------
    # Hysteresis
    # ------------------------------------------------------------------
    def _can_step(self, direction: int) -> bool:
        """Monotone hysteresis: no opposing steps within one settle
        window.  Same-direction steps only wait for their own streak
        conditions."""
        if self._last_dir == 0 or direction == self._last_dir:
            return True
        return self._since_step >= self.config.settle_observations

    def _stepped(self, direction: int) -> None:
        self._last_dir = direction
        self._since_step = 0

    def _note_period(self) -> None:
        self.min_period_seen = min(self.min_period_seen, self.period_ns)
        self.max_period_seen = max(self.max_period_seen, self.period_ns)

    # ------------------------------------------------------------------
    # Ladder steps
    # ------------------------------------------------------------------
    def _step_down(self, reading: SensorReading
                   ) -> Tuple[Optional[str], bool]:
        """One capped step toward cheaper monitoring."""
        if self.boosted:
            return self._boost_release(reading)
        level_from = self.level
        config = self.config
        if self.level <= 1 and self.period_ns < self.max_period_ns:
            self._ladder.append(("period", self.period_ns))
            self.period_ns = min(self.max_period_ns,
                                 self.period_ns * config.step_factor)
            self._note_period()
            detail = f"period -> {self.period_ns / 1e3:g}us"
            changed = True
        elif self.level <= 2 and self.drain_max_items is None:
            self._ladder.append(("batch", 0))
            self.drain_max_items = config.drain_batch_shrunk
            detail = f"drain batches capped at {self.drain_max_items}"
            changed = False  # applied controller-side, no ioctl needed
        elif (self.level <= 3 and self.multiplexed
                and self.rotate_slowdown == 1):
            self._ladder.append(("rotate", 1))
            self.rotate_slowdown = config.rotate_slowdown_factor
            detail = f"rotation slowed x{self.rotate_slowdown}"
            changed = True
        elif self.skip_factor < config.skip_factor_max:
            self._ladder.append(("skip", self.skip_factor))
            self.skip_factor = min(config.skip_factor_max,
                                   self.skip_factor * config.step_factor)
            detail = f"recording every {self.skip_factor}th fire"
            changed = True
        else:
            # Fully degraded: nothing left to trade away.
            return None, False
        self._stepped(-1)
        self.ledger.record(reading.now_ns, "degrade", level_from,
                           self.level, self.period_ns, detail)
        return "degrade", changed

    def _recover(self, reading: SensorReading) -> Tuple[Optional[str], bool]:
        """Pop the most recent degradation (LIFO recovery)."""
        if not self._ladder:
            return None, False
        level_from = self.level
        kind, restore = self._ladder.pop()
        changed = True
        if kind == "period":
            self.period_ns = restore
            self._note_period()
            detail = f"period -> {self.period_ns / 1e3:g}us"
        elif kind == "batch":
            self.drain_max_items = None
            detail = "drain batches uncapped"
            changed = False
        elif kind == "rotate":
            self.rotate_slowdown = restore
            detail = "rotation restored"
        else:  # skip
            self.skip_factor = restore
            detail = (f"recording every {self.skip_factor}th fire"
                      if self.skip_factor > 1 else "recording every fire")
        self._stepped(+1)
        self.ledger.record(reading.now_ns, "recover", level_from,
                           self.level, self.period_ns, detail)
        return "recover", changed

    # ------------------------------------------------------------------
    # Boost fast path (below nominal)
    # ------------------------------------------------------------------
    def _boost(self, reading: SensorReading) -> Tuple[Optional[str], bool]:
        new_period = max(self.min_period_ns,
                         self.period_ns // self.config.boost_factor)
        if new_period >= self.period_ns:
            return None, False
        self.period_ns = new_period
        self._note_period()
        self.boosted = True
        self._quiet_streak = 0
        self._stepped(+1)
        self.ledger.record(reading.now_ns, "boost", 0, 0, self.period_ns,
                           f"phase shift: period -> "
                           f"{self.period_ns / 1e3:g}us")
        return "boost", True

    def _boost_release(self, reading: SensorReading
                       ) -> Tuple[Optional[str], bool]:
        if not self.boosted:
            return None, False
        self.period_ns = min(self.nominal_period_ns,
                             self.period_ns * self.config.step_factor)
        self._note_period()
        if self.period_ns >= self.nominal_period_ns:
            self.boosted = False
        self._stepped(-1)
        self.ledger.record(reading.now_ns, "boost-release", 0, 0,
                           self.period_ns,
                           f"period -> {self.period_ns / 1e3:g}us")
        return "boost-release", True
