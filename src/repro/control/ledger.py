"""The control ledger: every ladder transition, recorded.

Mirrors :class:`repro.faults.ledger.FaultLedger`: plain-data records of
ints and strings that pickle across worker-pool boundaries and compare
bit-for-bit between serial and parallel runs.  Where the fault ledger
answers "what was injected", the control ledger answers "what did the
closed loop *do* about it" — each degradation step, each recovery, each
phase-triggered boost, in order, with the simulated time and the period
in force afterwards.

The conservation contract (gated in CI): recoveries undo degradations
one-for-one, in LIFO order, and the running depth (degradations minus
recoveries) never goes negative — every degradation has a matching
recovery or is still open at exit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: Ladder rungs, in degradation order (paper Tables II/III machinery:
#: every rung trades sampling fidelity for monitoring cost).
LADDER_LEVELS = (
    "nominal",             # L0: configured period, full drains
    "period-lengthened",   # L1: HRTimer period doubled (up to max)
    "batch-shrunk",        # L2: drain reads capped to small batches
    "rotation-slowed",     # L3: multiplex group rotation slowed
    "sample-dropping",     # L4: every Nth fire recorded, gaps accounted
)

#: Actions a record may carry.  ``degrade``/``recover`` move on the
#: ladder and are conservation-checked; ``boost``/``boost-release``
#: track the phase-change fast path below the nominal period.
ACTIONS = ("degrade", "recover", "boost", "boost-release")


@dataclass(frozen=True)
class ControlRecord:
    """One closed-loop transition."""

    time_ns: int
    action: str        # one of ACTIONS
    level_from: int    # ladder level before the step
    level_to: int      # ladder level after the step
    period_ns: int     # sampling period in force after the step
    detail: str = ""


class ControlLedger:
    """Append-only transition history for one adaptive session."""

    def __init__(self) -> None:
        self.records: List[ControlRecord] = []

    def record(self, time_ns: int, action: str, level_from: int,
               level_to: int, period_ns: int, detail: str = "") -> None:
        if action not in ACTIONS:
            raise ValueError(f"unknown control action {action!r}")
        self.records.append(ControlRecord(
            time_ns=int(time_ns), action=action,
            level_from=int(level_from), level_to=int(level_to),
            period_ns=int(period_ns), detail=detail,
        ))

    def count(self, action: Optional[str] = None) -> int:
        if action is None:
            return len(self.records)
        return sum(1 for record in self.records if record.action == action)

    @property
    def open_depth(self) -> int:
        """Degradations still outstanding (not yet recovered)."""
        return self.count("degrade") - self.count("recover")

    def conservation_ok(self, final_depth: Optional[int] = None) -> bool:
        """True when the transition history balances.

        The running degrade/recover depth must never go negative (a
        recovery cannot undo a degradation that never happened), and —
        when ``final_depth`` is given — must end exactly at the
        controller's open depth at exit.
        """
        depth = 0
        for record in self.records:
            if record.action == "degrade":
                depth += 1
            elif record.action == "recover":
                depth -= 1
                if depth < 0:
                    return False
        if final_depth is not None and depth != final_depth:
            return False
        return True

    @classmethod
    def from_rows(cls, rows: List[Dict[str, object]]) -> "ControlLedger":
        """Rebuild a ledger from :meth:`to_rows` output (report I/O)."""
        ledger = cls()
        for row in rows:
            ledger.record(
                int(row["time_ns"]), str(row["action"]),
                int(row["level_from"]), int(row["level_to"]),
                int(row["period_ns"]), str(row.get("detail", "")),
            )
        return ledger

    def to_rows(self) -> List[Dict[str, object]]:
        """Plain-data rows for :class:`~repro.tools.base.ToolReport`."""
        return [
            {
                "time_ns": record.time_ns,
                "action": record.action,
                "level_from": record.level_from,
                "level_to": record.level_to,
                "period_ns": record.period_ns,
                "detail": record.detail,
            }
            for record in self.records
        ]

    def render(self, limit: int = 20) -> str:
        """Human-readable summary for the CLI."""
        lines = ["Control ledger"]
        lines.append(
            f"  transitions: {len(self.records)}  "
            f"degrade: {self.count('degrade')}  "
            f"recover: {self.count('recover')}  "
            f"boost: {self.count('boost')}  "
            f"open at exit: {self.open_depth}"
        )
        for record in self.records[:limit]:
            lines.append(
                f"  {record.time_ns:>14,d} ns  {record.action:13s} "
                f"{LADDER_LEVELS[record.level_from]} -> "
                f"{LADDER_LEVELS[record.level_to]}  "
                f"period {record.period_ns / 1e3:g} us"
                + (f"  ({record.detail})" if record.detail else "")
            )
        if len(self.records) > limit:
            lines.append(f"  ... and {len(self.records) - limit} more")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.records)
