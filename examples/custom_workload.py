#!/usr/bin/env python
"""Build a custom workload and analyse its phase behaviour.

Shows the workload IR end-to-end: define a program from rate blocks
(compute phases) and trace blocks (real memory accesses through the
simulated cache hierarchy), monitor it with K-LEB, and recover the
phase structure from the samples — the paper's Fig. 4 methodology
applied to your own program.
"""

from typing import Iterator

import numpy as np

from repro.analysis.phases import detect_phases, merge_short_segments
from repro.analysis.timeseries import deltas, samples_to_series
from repro.experiments.report import sparkline, text_table
from repro.experiments.runner import run_monitored
from repro.sim.clock import ms
from repro.tools.registry import create_tool
from repro.workloads.base import Block, MemOp, OpKind, Program, RateBlock, TraceBlock

EVENTS = ("LOADS", "STORES", "ARITH_MUL", "LLC_MISSES")


class ImageFilterPipeline(Program):
    """A made-up three-stage image pipeline: decode -> convolve -> encode.

    * decode: branchy parsing, light memory traffic;
    * convolve: multiply-heavy compute over a resident tile;
    * encode: streaming writes through a large output buffer, replayed
      through the cache model so LLC misses are real.
    """

    name = "image-filter-pipeline"

    def __init__(self, frames: int = 6) -> None:
        self.frames = frames

    def blocks(self) -> Iterator[Block]:
        output_base = 0x5000_0000
        line = 64
        cursor = 0
        for frame in range(self.frames):
            yield RateBlock(
                instructions=1.0e7,
                rates={"LOADS": 0.35, "STORES": 0.10, "BRANCHES": 0.25,
                       "BRANCH_MISSES": 0.01},
                label=f"decode-{frame}",
            )
            yield RateBlock(
                instructions=2.5e7,
                rates={"LOADS": 0.40, "STORES": 0.15, "ARITH_MUL": 0.50,
                       "FP_OPS": 1.0, "BRANCHES": 0.05},
                label=f"convolve-{frame}",
            )
            # Encode: stream the frame out — fresh lines, genuine misses.
            ops = [MemOp(output_base + (cursor + index) * line, OpKind.STORE)
                   for index in range(40_000)]
            cursor += 40_000
            yield TraceBlock(ops=ops, instructions_per_op=6,
                             event_scale=4, label=f"encode-{frame}")


def main() -> None:
    program = ImageFilterPipeline()
    result = run_monitored(program, create_tool("k-leb"), events=EVENTS,
                           period_ns=ms(1), seed=5)
    report = result.report
    print(f"{program.name}: {result.wall_ns / 1e6:.1f} ms, "
          f"{report.sample_count} samples @ 1 ms\n")

    series = deltas(samples_to_series(report.samples))
    for name in EVENTS:
        print(f"  {name:10s} {sparkline(series.event(name))}")

    segments = merge_short_segments(
        detect_phases(series, ("LOADS", "STORES", "ARITH_MUL"),
                      smooth_window=3),
        min_length=2,
    )
    rows = [
        [segment.label,
         f"{(segment.end_ns - segment.start_ns) / 1e6:.1f} ms"]
        for segment in segments
    ]
    print("\n" + text_table(["detected phase", "duration"], rows))

    misses = report.totals["LLC_MISSES"]
    instructions = report.totals["INST_RETIRED"]
    print(f"\nLLC MPKI: {misses / (instructions / 1000):.2f} "
          "(virtually all misses come from the streaming encode phases)")


if __name__ == "__main__":
    main()
