#!/usr/bin/env python
"""Program identity verification from counter signatures.

The Bruska et al. use case the paper cites (§I): a program's hardware
event mix is a fingerprint.  Enroll the eight SPEC-like corpus programs
in a signature database from monitored runs, then:

1. verify a fresh (different-seed) run of one of them — accepted;
2. present a swapped binary (one program claiming to be another) —
   rejected, with the true identity named;
3. present a "patched" variant with an altered inner loop — rejected as
   tampered (no enrolled program matches).
"""

from repro.apps.verification import SignatureDatabase
from repro.experiments.report import text_table
from repro.experiments.runner import run_monitored
from repro.sim.clock import ms
from repro.tools.registry import create_tool
from repro.workloads.base import ListProgram, RateBlock
from repro.workloads.corpus import CorpusWorkload, corpus_programs

EVENTS = ("LOADS", "STORES", "BRANCHES", "ARITH_MUL")


def monitor(program, seed=0):
    return run_monitored(program, create_tool("k-leb"), events=EVENTS,
                         period_ns=ms(10), seed=seed).report


def main() -> None:
    print("Enrolling the corpus (K-LEB @ 10 ms)...\n")
    database = SignatureDatabase(tolerance=0.05)
    for program in corpus_programs(instructions=2e7):
        database.enroll_report(monitor(program), program.name)
    rows = [[name] for name in database.names()]
    print(text_table(["enrolled programs"], rows))

    print("\nCase 1 — genuine re-run of namd-like (new seed):")
    verdict = database.verify(
        monitor(CorpusWorkload("namd-like", instructions=2e7), seed=99),
        claimed="namd-like",
    )
    print(f"  accepted={verdict.accepted} "
          f"(distance {verdict.distance_to_claimed:.4f}, "
          f"tolerance {verdict.tolerance})")

    print("\nCase 2 — binary swap: mcf-like shipped as gcc-like:")
    verdict = database.verify(
        monitor(CorpusWorkload("mcf-like", instructions=2e7), seed=7),
        claimed="gcc-like",
    )
    print(f"  accepted={verdict.accepted}, impostor={verdict.impostor}, "
          f"actual identity: {verdict.best_match}")

    print("\nCase 3 — tampered bzip-like (inner loop altered):")
    tampered = ListProgram("bzip-patched", [
        RateBlock(instructions=2e7,
                  rates={"LOADS": 0.42, "STORES": 0.30,   # store-heavy patch
                         "BRANCHES": 0.10, "ARITH_MUL": 0.01},
                  cpi=1.15),
    ])
    verdict = database.verify(monitor(tampered, seed=3), claimed="bzip-like")
    print(f"  accepted={verdict.accepted}, impostor={verdict.impostor} "
          f"(distance to claimed {verdict.distance_to_claimed:.3f})")
    print("\nSignature verification catches both substitutions and "
          "modifications — without reading a byte of the binary.")


if __name__ == "__main__":
    main()
