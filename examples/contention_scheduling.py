#!/usr/bin/env python
"""Counter-guided co-location on a shared-LLC multi-core cluster.

The full loop the paper motivates (§I, §II-C, §IV-B, citing Torres et
al.): *measure* each workload's memory intensity with K-LEB, *plan*
complementary pairings, then *validate* the plan by actually co-running
workloads on cores that share a last-level cache — showing that a
memory+memory pairing hurts while the planned memory+compute pairing is
nearly free.
"""

from repro.apps.colocation import plan_colocation, validate_plan
from repro.apps.smp import corun_parallel
from repro.experiments.report import text_table
from repro.experiments.runner import run_monitored
from repro.sim.clock import ms
from repro.tools.registry import create_tool
from repro.workloads.synthetic import (
    PointerChaseWorkload,
    StridedMemoryWorkload,
    UniformComputeWorkload,
)

EVENTS = ("LLC_REFERENCES", "LLC_MISSES", "LOADS", "STORES")


def make_workloads():
    """Four tenants with distinct address spaces (distinct processes)."""
    return {
        "web-cache": PointerChaseWorkload(
            6 * 1024 * 1024, 600_000, seed=3,
            name="web-cache", address_base=0x1000_0000),
        "log-shipper": StridedMemoryWorkload(
            64 * 1024 * 1024, 300_000,
            name="log-shipper", address_base=0x8000_0000),
        "api-server": UniformComputeWorkload(4e7, name="api-server"),
        "batch-math": UniformComputeWorkload(
            5e7, rates={"LOADS": 0.2, "STORES": 0.08, "ARITH_MUL": 0.4,
                        "FP_OPS": 0.8, "BRANCHES": 0.05},
            name="batch-math"),
    }


def measure_mpki(name, program):
    result = run_monitored(program, create_tool("k-leb"), events=EVENTS,
                           period_ns=ms(1), seed=0)
    totals = result.report.totals
    return totals["LLC_MISSES"] / (totals["INST_RETIRED"] / 1000.0)


def main() -> None:
    workloads = make_workloads()

    print("Step 1 — measure memory intensity with K-LEB (1 ms rate)\n")
    mpki = {name: measure_mpki(name, program)
            for name, program in make_workloads().items()}
    rows = [[name, f"{value:8.2f}"] for name, value in
            sorted(mpki.items(), key=lambda kv: kv[1])]
    print(text_table(["workload", "LLC MPKI"], rows))

    print("\nStep 2 — plan complementary pairings (high MPKI with low)\n")
    plan = plan_colocation(mpki)
    print(plan.describe())
    assert validate_plan(plan) == []

    print("\nStep 3 — validate on a shared-LLC two-core cluster\n")
    fresh = make_workloads()
    planned = corun_parallel([fresh["web-cache"], fresh["api-server"]],
                             seed=1)
    fresh = make_workloads()
    naive = corun_parallel([fresh["web-cache"], fresh["log-shipper"]],
                           seed=1)
    rows = [
        ["web-cache + api-server (planned)",
         f"{planned[0].slowdown:.3f}x"],
        ["web-cache + log-shipper (naive)",
         f"{naive[0].slowdown:.3f}x"],
    ]
    print(text_table(["pairing", "web-cache slowdown"], rows))
    print("\nThe cache-resident service pays for a memory-intensive "
          "neighbour; the counter-guided pairing avoids that — the "
          "scheduling win the paper's online monitoring enables.")


if __name__ == "__main__":
    main()
