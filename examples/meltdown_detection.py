#!/usr/bin/env python
"""Online side-channel detection from 100 µs counter samples.

The paper's §IV-C capability demo, taken one step further into the
anomaly detector the authors sketch as future work: run the benign
secret-printer and the same program with a Meltdown Flush+Reload
attack attached, sample both with K-LEB at 100 µs, and flag the attack
from the LLC miss/reference signature — *localized in time*, something
perf's single 10 ms sample cannot do.
"""

from repro.analysis.detection import detect_cache_anomaly
from repro.analysis.metrics import report_mpki
from repro.analysis.timeseries import deltas, samples_to_series
from repro.experiments.report import sparkline
from repro.experiments.runner import run_monitored
from repro.sim.clock import us
from repro.tools.registry import create_tool
from repro.workloads.meltdown import MeltdownAttack, SecretPrinter

EVENTS = ("LLC_REFERENCES", "LLC_MISSES", "LOADS", "STORES")


def profile(program, label: str):
    result = run_monitored(program, create_tool("k-leb"), events=EVENTS,
                           period_ns=us(100), seed=3)
    series = deltas(samples_to_series(result.report.samples))
    verdict = detect_cache_anomaly(series)
    mpki = report_mpki(result.report.totals)
    print(f"--- {label}")
    print(f"  runtime : {result.wall_ns / 1e6:7.2f} ms "
          f"({result.report.sample_count} samples at 100 us)")
    print(f"  MPKI    : {mpki:7.2f}")
    print(f"  misses  : {sparkline(series.event('LLC_MISSES'))}")
    if verdict.anomalous:
        print(f"  VERDICT : ATTACK — first flagged at "
              f"{verdict.first_flag_ns / 1e6:.2f} ms "
              f"({verdict.flagged_intervals}/{verdict.total_intervals} "
              "intervals suspicious)")
    else:
        print(f"  VERDICT : clean "
              f"({verdict.flagged_intervals}/{verdict.total_intervals} "
              "intervals suspicious)")
    return verdict


def main() -> None:
    print("Meltdown detection via high-frequency LLC monitoring\n")
    clean = profile(SecretPrinter(), "secret-printer (benign)")
    print()
    attack_program = MeltdownAttack()
    attacked = profile(attack_program, "secret-printer + Meltdown")
    print()
    print(f"side channel recovered the secret: "
          f"{attack_program.recovered_secret()!r}")
    assert attacked.anomalous and not clean.anomalous
    print("detector separated the runs correctly.")

    # Contrast: what perf sees for the same benign program.
    perf = run_monitored(SecretPrinter(), create_tool("perf-stat"),
                         events=EVENTS, period_ns=us(100), seed=3)
    print(f"\nperf at the same requested rate: "
          f"{perf.report.sample_count} sample(s) "
          f"(period clamped to {perf.report.period_ns / 1e6:g} ms) — "
          "no time series, no point of attack.")


if __name__ == "__main__":
    main()
