#!/usr/bin/env python
"""Dynamic power estimation from K-LEB samples.

One of the online applications the paper motivates (§I, citing Liu et
al.): turn periodic counter samples into a power trace.  Runs LINPACK
under K-LEB, maps each 10 ms interval's event counts through a
per-event energy model, and shows how the power trace follows the
program's phases — quiet init, memory-bound setup, hot compute.
Finishes with a one-point calibration against a hypothetical wall-power
measurement.
"""

import numpy as np

from repro.analysis.timeseries import deltas, samples_to_series
from repro.apps.power import PowerModel, estimate_power_series, summarize
from repro.experiments.report import sparkline, text_table
from repro.experiments.runner import run_monitored
from repro.sim.clock import ms
from repro.tools.registry import create_tool
from repro.workloads.linpack import LinpackWorkload

EVENTS = ("LOADS", "STORES", "ARITH_MUL", "LLC_MISSES")


def main() -> None:
    print("Estimating dynamic power from K-LEB samples (LINPACK)\n")
    result = run_monitored(
        LinpackWorkload(5000), create_tool("k-leb"), events=EVENTS,
        period_ns=ms(10), seed=0,
    )
    series = deltas(samples_to_series(result.report.samples))
    model = PowerModel()
    watts = model.power_series(series)

    print(f"samples: {len(series)} @ 10 ms")
    print(f"power   {sparkline(watts)}")
    print(f"loads   {sparkline(series.event('LOADS'))}")
    print(f"muls    {sparkline(series.event('ARITH_MUL'))}\n")

    estimate = summarize(watts, series)
    third = len(watts) // 3
    rows = [
        ["whole run", f"{estimate.mean_watts:.1f}",
         f"{estimate.peak_watts:.1f}"],
        ["init+setup (first third)", f"{watts[:third].mean():.1f}",
         f"{watts[:third].max():.1f}"],
        ["solve (last third)", f"{watts[-third:].mean():.1f}",
         f"{watts[-third:].max():.1f}"],
    ]
    print(text_table(["window", "mean W", "peak W"], rows,
                     title="Estimated power"))
    print(f"\nestimated energy: {estimate.energy_joules:.1f} J over "
          f"{estimate.duration_s:.2f} s")

    # One-point calibration: suppose the wall meter read 95 W on this run.
    calibrated = model.calibrated(series, measured_mean_watts=95.0)
    recalibrated = estimate_power_series(series, calibrated)
    print(f"\nafter calibrating to a 95.0 W wall measurement: "
          f"mean {recalibrated.mean_watts:.1f} W, "
          f"peak {recalibrated.peak_watts:.1f} W")
    solve_mean = calibrated.power_series(series)[-third:].mean()
    print(f"calibrated solve-phase draw: {solve_mean:.1f} W")


if __name__ == "__main__":
    main()
