#!/usr/bin/env python
"""Quickstart: monitor a program with K-LEB and read the results.

Runs the triple-loop matrix multiply under K-LEB at a 10 ms sample
rate, prints the final hardware event counts, the sampling time series,
and the monitoring overhead against an unmonitored baseline run.
"""

from repro.analysis.timeseries import deltas, samples_to_series
from repro.experiments.report import sparkline, text_table
from repro.experiments.runner import run_monitored
from repro.sim.clock import ms
from repro.tools.registry import create_tool
from repro.workloads.matmul import TripleLoopMatmul


def main() -> None:
    program = TripleLoopMatmul(n=1024)
    events = ("LOADS", "STORES", "BRANCHES", "ARITH_MUL")

    print(f"workload: {program.name} "
          f"({program.instructions:,.0f} instructions)")

    # Baseline: the program with no monitoring at all.
    baseline = run_monitored(program, create_tool("none"), seed=1)
    print(f"baseline runtime: {baseline.wall_ns / 1e9:.4f} s")

    # Monitored: K-LEB sampling every 10 ms.
    monitored = run_monitored(program, create_tool("k-leb"),
                              events=events, period_ns=ms(10), seed=1)
    report = monitored.report
    overhead = 100.0 * (monitored.wall_ns - baseline.wall_ns) / baseline.wall_ns
    print(f"monitored runtime: {monitored.wall_ns / 1e9:.4f} s "
          f"(overhead {overhead:.2f}%)")
    print(f"samples collected: {report.sample_count} "
          f"@ {report.period_ns / 1e6:g} ms\n")

    rows = [[name, f"{value:,.0f}"]
            for name, value in sorted(report.totals.items())]
    print(text_table(["event", "total count"], rows,
                     title="Final counter values"))

    print("\nPer-interval activity (sparklines):")
    series = deltas(samples_to_series(report.samples))
    for name in events:
        print(f"  {name:10s} {sparkline(series.event(name))}")


if __name__ == "__main__":
    main()
