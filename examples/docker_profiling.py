#!/usr/bin/env python
"""Classify Docker containers by memory intensity — without touching
their binaries.

Reproduces the paper's §IV-B workflow: launch each container (a real
process tree: shim forks workload), attach K-LEB to the *shim* PID, let
fork-following capture the actual workload, compute LLC MPKI, and apply
the Muralidhara MPKI>10 rule.  Ends with the scheduling suggestion the
paper motivates: co-locate computation-intensive containers with
memory-intensive ones.
"""

from repro.analysis.classify import WorkloadClass, classify_mpki
from repro.analysis.metrics import report_mpki
from repro.experiments.report import text_table
from repro.hw.machine import Machine
from repro.hw.presets import i7_920
from repro.kernel.kernel import Kernel
from repro.sim.clock import ms, seconds
from repro.sim.rng import RngStreams
from repro.tools.kleb import KLebTool
from repro.workloads.docker import DockerEngine

IMAGES = ("python", "golang", "mysql", "redis", "apache", "nginx", "tomcat")
EVENTS = ("LLC_REFERENCES", "LLC_MISSES", "LOADS", "STORES")


def profile_container(image: str) -> float:
    """Run one container under K-LEB; return its LLC MPKI."""
    kernel = Kernel(Machine(i7_920()), rng=RngStreams(7))
    engine = DockerEngine(kernel)
    container = engine.run_container(image, iterations=12)
    session = KLebTool().attach(kernel, container.shim_task, EVENTS, ms(1))
    kernel.run_until_exit(container.shim_task, deadline=seconds(60))
    report = session.finalize()
    assert container.workload_task is not None  # fork was traced
    return report_mpki(report.totals)


def main() -> None:
    print("Profiling Docker images with K-LEB (binary-only, 1 ms rate)\n")
    measurements = {image: profile_container(image) for image in IMAGES}

    rows = []
    for image, mpki in sorted(measurements.items(), key=lambda kv: kv[1]):
        workload_class = classify_mpki(mpki)
        rows.append([image, f"{mpki:6.2f}", workload_class.value])
    print(text_table(["image", "LLC MPKI", "class (MPKI>10 rule)"], rows))

    compute = [image for image, mpki in measurements.items()
               if classify_mpki(mpki) is WorkloadClass.COMPUTATION_INTENSIVE]
    memory = [image for image, mpki in measurements.items()
              if classify_mpki(mpki) is WorkloadClass.MEMORY_INTENSIVE]
    print("\nScheduler suggestion (paper §IV-B): pair complementary "
          "containers per core:")
    for core, (mem, cpu) in enumerate(zip(memory, compute)):
        print(f"  core {core}: {mem} (memory) + {cpu} (compute)")
    leftovers = memory[len(compute):] + compute[len(memory):]
    if leftovers:
        print(f"  spread across remaining cores: {', '.join(leftovers)}")


if __name__ == "__main__":
    main()
