#!/usr/bin/env python
"""Compare all five monitoring tools on the same workload.

A miniature of the paper's §V overhead study: run the triple-loop
matmul under no tool, K-LEB, perf stat, perf record, PAPI, and LiMiT
(each on the environment it needs — LiMiT gets its patched 2.6.32
kernel), and report overhead, sample counts, and count accuracy
against K-LEB.
"""

import numpy as np

from repro.errors import ToolUnsupportedError
from repro.experiments.report import text_table
from repro.experiments.runner import run_monitored
from repro.sim.clock import ms
from repro.tools.registry import available_tools, create_tool
from repro.workloads.matmul import TripleLoopMatmul

EVENTS = ("LOADS", "STORES", "BRANCHES", "ARITH_MUL")
RUNS = 5


def main() -> None:
    program = TripleLoopMatmul(n=1024)
    print(f"workload: {program.name}; {RUNS} runs per tool @ 10 ms\n")

    baseline = np.mean([
        run_monitored(program, create_tool("none"), seed=seed).wall_ns
        for seed in range(RUNS)
    ])

    rows = []
    reference_totals = None
    for name in available_tools():
        if name == "none":
            rows.append(["none", f"{baseline / 1e9:.4f}", "-", "-", "-"])
            continue
        try:
            results = [
                run_monitored(program, create_tool(name), events=EVENTS,
                              period_ns=ms(10), seed=seed)
                for seed in range(RUNS)
            ]
        except ToolUnsupportedError as error:
            rows.append([name, "n/a", "n/a", "n/a", str(error)])
            continue
        wall = np.mean([result.wall_ns for result in results])
        overhead = 100.0 * (wall - baseline) / baseline
        samples = np.mean([result.report.sample_count
                           for result in results])
        totals = results[0].report.totals
        if name == "k-leb":
            reference_totals = totals
            deviation = "reference"
        else:
            worst = max(
                abs(totals[event] - reference_totals[event])
                / reference_totals[event] * 100.0
                for event in EVENTS
                if reference_totals.get(event)
            )
            deviation = f"{worst:.4f}%"
        rows.append([name, f"{wall / 1e9:.4f}", f"{overhead:.2f}%",
                     f"{samples:.0f}", deviation])

    print(text_table(
        ["tool", "mean runtime (s)", "overhead", "samples",
         "count deviation vs K-LEB"],
        rows, title="Monitoring tool comparison (matmul n=1024)",
    ))
    print("\npaper (Table II): K-LEB 0.68%, perf stat 6.01%, "
          "perf record ~1.65%, PAPI 6.43%, LiMiT 4.08%; "
          "count differences < 0.3% (Fig. 9)")


if __name__ == "__main__":
    main()
