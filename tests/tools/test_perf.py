"""perf stat and perf record behaviour."""

import pytest

from repro.errors import ToolError
from repro.experiments.runner import run_monitored
from repro.sim.clock import ms, us
from repro.tools.perf import PerfRecordTool, PerfStatTool
from repro.workloads.synthetic import UniformComputeWorkload

EVENTS = ("LOADS", "STORES", "BRANCHES")


@pytest.fixture(scope="module")
def stat_run():
    return run_monitored(
        UniformComputeWorkload(2e8), PerfStatTool(), events=EVENTS,
        period_ns=ms(10), seed=4,
    )


@pytest.fixture(scope="module")
def record_run():
    return run_monitored(
        UniformComputeWorkload(2e8), PerfRecordTool(), events=EVENTS,
        period_ns=ms(10), seed=4,
    )


class TestPerfStat:
    def test_ten_ms_floor(self):
        tool = PerfStatTool()
        assert tool.effective_period(us(100)) == ms(10)
        assert tool.effective_period(ms(20)) == ms(20)

    def test_interval_samples_collected(self, stat_run):
        # ~75 ms victim at ~10 ms intervals.
        assert 4 <= stat_run.report.sample_count <= 9

    def test_totals_exact_counting_mode(self, stat_run):
        totals = stat_run.report.totals
        assert totals["INST_RETIRED"] == pytest.approx(2e8, rel=1e-6)
        assert totals["LOADS"] == pytest.approx(0.30 * 2e8, rel=1e-6)

    def test_metadata_reports_intervals(self, stat_run):
        assert stat_run.report.metadata["intervals"] == \
            stat_run.report.sample_count
        assert stat_run.report.metadata["multiplexed"] == 0.0

    def test_interval_spacing_at_least_jiffy(self, stat_run):
        samples = stat_run.report.samples
        gaps = [b.timestamp - a.timestamp
                for a, b in zip(samples, samples[1:])]
        assert all(gap >= ms(10) for gap in gaps)


class TestPerfStatMultiplexing:
    def test_multiplexed_run_estimates_all_events(self):
        events = ("LOADS", "STORES", "BRANCHES", "ARITH_MUL",
                  "LLC_MISSES", "BRANCH_MISSES")
        result = run_monitored(
            UniformComputeWorkload(5e8), PerfStatTool(), events=events,
            period_ns=ms(10), seed=4,
        )
        report = result.report
        assert report.metadata["multiplexed"] == 1.0
        for event in events:
            assert event in report.totals
        # Scaled estimates land near the truth but are not exact.
        true_loads = 0.30 * 5e8
        estimate = report.totals["LOADS"]
        assert estimate == pytest.approx(true_loads, rel=0.25)
        assert estimate != pytest.approx(true_loads, rel=1e-9)

    def test_multiplexing_error_exceeds_counting_error(self):
        events = ("LOADS", "STORES", "BRANCHES", "ARITH_MUL",
                  "LLC_MISSES", "BRANCH_MISSES")
        multiplexed = run_monitored(
            UniformComputeWorkload(5e8), PerfStatTool(), events=events,
            period_ns=ms(10), seed=4,
        )
        counted = run_monitored(
            UniformComputeWorkload(5e8), PerfStatTool(), events=EVENTS,
            period_ns=ms(10), seed=4,
        )
        true_loads = 0.30 * 5e8

        def error(report):
            return abs(report.totals["LOADS"] - true_loads) / true_loads

        assert error(multiplexed.report) > error(counted.report)


class TestPerfRecord:
    def test_ten_ms_floor(self):
        assert PerfRecordTool().effective_period(us(100)) == ms(10)

    def test_sampling_mode_estimates_totals(self, record_run):
        """Record reconstructs counts from samples: slight deficit."""
        totals = record_run.report.totals
        truth = 2e8
        assert totals["INST_RETIRED"] < truth
        assert totals["INST_RETIRED"] > truth * 0.80

    def test_samples_collected(self, record_run):
        assert record_run.report.sample_count >= 5

    def test_record_cheaper_than_stat(self):
        base = run_monitored(UniformComputeWorkload(2e8),
                             _null(), events=EVENTS, seed=6)
        stat = run_monitored(UniformComputeWorkload(2e8), PerfStatTool(),
                             events=EVENTS, period_ns=ms(10), seed=6)
        record = run_monitored(UniformComputeWorkload(2e8), PerfRecordTool(),
                               events=EVENTS, period_ns=ms(10), seed=6)
        stat_overhead = stat.wall_ns - base.wall_ns
        record_overhead = record.wall_ns - base.wall_ns
        assert record_overhead < stat_overhead

    def test_no_multiplexing_support(self):
        events = ("LOADS", "STORES", "BRANCHES", "ARITH_MUL", "LLC_MISSES")
        from repro.hw.machine import Machine
        from repro.hw.presets import i7_920
        from repro.kernel.kernel import Kernel
        from repro.sim.rng import RngStreams

        kernel = Kernel(Machine(i7_920()), rng=RngStreams(0))
        task = kernel.spawn(UniformComputeWorkload(1e6), start=False)
        with pytest.raises(ToolError):
            PerfRecordTool().attach(kernel, task, events, ms(10))


def _null():
    from repro.tools.null import NullTool

    return NullTool()
