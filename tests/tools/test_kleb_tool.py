"""K-LEB tool + controller end-to-end behaviour."""

import pytest

from repro.experiments.runner import run_monitored
from repro.sim.clock import ms, us
from repro.tools.kleb import KLebTool
from repro.tools.registry import create_tool
from repro.workloads.synthetic import UniformComputeWorkload

EVENTS = ("LOADS", "STORES", "BRANCHES")


@pytest.fixture(scope="module")
def kleb_run():
    """One monitored run: ~7.5 ms victim at a 100 us rate."""
    return run_monitored(
        UniformComputeWorkload(2e7), KLebTool(), events=EVENTS,
        period_ns=us(100), seed=2,
    )


class TestEndToEnd:
    def test_report_identity(self, kleb_run):
        report = kleb_run.report
        assert report.tool == "k-leb"
        assert report.events == list(EVENTS)
        assert report.period_ns == us(100)

    def test_samples_cover_the_run(self, kleb_run):
        report = kleb_run.report
        # ~7.5 ms at 100 us -> ~75 fire slots; controller preemptions
        # cost a few.
        assert 40 <= report.sample_count <= 80

    def test_totals_are_exact(self, kleb_run):
        totals = kleb_run.report.totals
        assert totals["INST_RETIRED"] == pytest.approx(2e7, rel=1e-6)
        assert totals["LOADS"] == pytest.approx(2e7 * 0.30, rel=1e-6)

    def test_no_samples_dropped_with_default_buffer(self, kleb_run):
        assert kleb_run.report.metadata["samples_dropped"] == 0

    def test_controller_logged_all_samples(self, kleb_run):
        report = kleb_run.report
        assert report.metadata["log_bytes"] == report.sample_count * 64

    def test_samples_timestamps_within_run(self, kleb_run):
        report = kleb_run.report
        victim = kleb_run.victim
        for sample in report.samples:
            assert victim.start_time < sample.timestamp <= victim.exit_time


class TestRates:
    def test_100us_rate_accepted(self):
        assert KLebTool().effective_period(us(100)) == us(100)

    def test_floor_is_100us(self):
        """The paper's recommendation: no faster than 100 us."""
        assert KLebTool().effective_period(us(10)) == us(100)

    def test_10ms_rate_gives_fewer_samples(self):
        fast = run_monitored(UniformComputeWorkload(3e7), KLebTool(),
                             events=EVENTS, period_ns=us(100), seed=3)
        slow = run_monitored(UniformComputeWorkload(3e7), KLebTool(),
                             events=EVENTS, period_ns=ms(10), seed=3)
        assert fast.report.sample_count > 20 * max(slow.report.sample_count, 1)


class TestModuleReuse:
    def test_module_loaded_once_per_kernel(self):
        """attach() on a kernel that already has the module reuses it."""
        from repro.hw.machine import Machine
        from repro.hw.presets import i7_920
        from repro.kernel.kernel import Kernel
        from repro.sim.clock import seconds
        from repro.sim.rng import RngStreams

        kernel = Kernel(Machine(i7_920()), rng=RngStreams(0))
        tool = KLebTool()
        first = kernel.spawn(UniformComputeWorkload(1e6), start=False)
        session1 = tool.attach(kernel, first, EVENTS, ms(10))
        kernel.run_until_exit(first, deadline=seconds(5))
        session1.finalize()

        second = kernel.spawn(UniformComputeWorkload(1e6), start=False)
        session2 = tool.attach(kernel, second, EVENTS, ms(10))
        kernel.run_until_exit(second, deadline=kernel.now + seconds(5))
        report = session2.finalize()
        assert report.totals["INST_RETIRED"] == pytest.approx(1e6, rel=0.01)
        assert len(kernel.modules) == 1


class TestRegistryIntegration:
    def test_create_tool_returns_kleb(self):
        tool = create_tool("k-leb")
        assert isinstance(tool, KLebTool)
        assert not tool.requires_source
        assert tool.required_patches == ()
