"""K-LEB time-multiplexing: rotation, scaled estimates, determinism."""

import pytest

from repro.errors import ToolError
from repro.experiments.runner import run_monitored, run_trials
from repro.faults import FaultInjector, FaultPlan
from repro.sim.clock import ms, us
from repro.tools.kleb import KLebTool
from repro.tools.kleb.module import KLebModuleConfig
from repro.workloads.synthetic import UniformComputeWorkload


def report_document(report):
    """Lossless JSON document for bit-identity comparisons."""
    return {
        "tool": report.tool,
        "events": list(report.events),
        "period_ns": report.period_ns,
        "victim_wall_ns": report.victim_wall_ns,
        "victim_pid": report.victim_pid,
        "totals": dict(report.totals),
        "metadata": dict(report.metadata),
        "samples": [
            {"timestamp": sample.timestamp, "values": dict(sample.values)}
            for sample in report.samples
        ],
    }

FOUR_EVENTS = ("LOADS", "STORES", "BRANCHES", "BRANCH_MISSES")
EIGHT_EVENTS = FOUR_EVENTS + ("LLC_REFERENCES", "LLC_MISSES",
                              "ARITH_MUL", "FP_OPS")


def mux_run(events=EIGHT_EVENTS, mux_ns=ms(1), instructions=2e7, seed=2,
            **kwargs):
    return run_monitored(
        UniformComputeWorkload(instructions),
        KLebTool(multiplex_period_ns=mux_ns),
        events=events, period_ns=us(100), seed=seed, **kwargs,
    )


class TestValidation:
    def test_mux_period_below_timer_period_rejected(self):
        config = KLebModuleConfig(events=list(FOUR_EVENTS),
                                  period_ns=us(100),
                                  multiplex_period_ns=us(50))
        with pytest.raises(ToolError, match="at least one timer period"):
            config.validate()

    def test_oversubscription_without_mux_still_rejected(self):
        config = KLebModuleConfig(events=list(EIGHT_EVENTS),
                                  period_ns=us(100))
        with pytest.raises(ToolError, match="multiplex"):
            config.validate()

    def test_oversubscription_with_mux_accepted(self):
        config = KLebModuleConfig(events=list(EIGHT_EVENTS),
                                  period_ns=us(100),
                                  multiplex_period_ns=ms(1))
        config.validate()


class TestSingleGroup:
    def test_single_group_mux_totals_equal_non_mux_exactly(self):
        """When the events fit one group there is nothing to rotate:
        the mux accounting must reduce to plain counting, bit for bit."""
        plain = run_monitored(
            UniformComputeWorkload(2e7), KLebTool(),
            events=FOUR_EVENTS, period_ns=us(100), seed=2,
        )
        muxed = mux_run(events=FOUR_EVENTS)
        assert muxed.report.totals == plain.report.totals

    def test_single_group_reports_no_rotations(self):
        muxed = mux_run(events=FOUR_EVENTS)
        assert muxed.report.metadata["multiplex_groups"] == 1.0
        assert muxed.report.metadata["multiplex_rotations"] == 0.0


class TestRotation:
    @pytest.fixture(scope="class")
    def eight(self):
        return mux_run()

    def test_more_events_than_counters_succeeds(self, eight):
        assert set(eight.report.totals) >= set(EIGHT_EVENTS)

    def test_rotations_happen_and_are_reported(self, eight):
        metadata = eight.report.metadata
        assert metadata["multiplex_groups"] == 2.0
        assert metadata["multiplex_rotations"] >= 2
        assert metadata["multiplex_enabled_cycles"] > 0
        assert 0 < metadata["multiplex_min_running_cycles"] < \
            metadata["multiplex_enabled_cycles"]

    def test_samples_carry_every_event(self, eight):
        last = eight.report.samples[-1]
        for name in EIGHT_EVENTS:
            assert name in last.values

    def test_scaled_estimates_near_ground_truth(self, eight):
        """A uniform-rate workload: the estimate raw*(enabled/running)
        must land within a fraction of a percent of the full count."""
        truth = run_monitored(
            UniformComputeWorkload(2e7), KLebTool(),
            events=FOUR_EVENTS, period_ns=us(100), seed=2,
        ).report.totals
        for name in FOUR_EVENTS:
            if truth[name] == 0:
                continue
            estimate = eight.report.totals[name]
            assert estimate == pytest.approx(truth[name], rel=0.02), name

    def test_fixed_counters_exact_under_mux(self, eight):
        assert eight.report.totals["INST_RETIRED"] == \
            pytest.approx(2e7, rel=1e-6)


class TestFaultInteraction:
    def test_wrap_preload_does_not_double_count(self):
        """A pmu_wrap preload seeds group-0 counters just below 2^48;
        rotation then deschedules and re-arms them.  The overflow must
        be accounted exactly once, so scaled totals stay within the
        ordinary estimation error of an unfaulted run."""
        clean = mux_run()
        injector = FaultInjector(FaultPlan(seed=3, pmu_wrap_margin=100_000))
        faulted = mux_run(faults=injector)
        wraps = [record for record in injector.ledger.records
                 if record.kind == "wrap-preload"]
        assert wraps  # the fault actually fired
        for name in EIGHT_EVENTS:
            if clean.report.totals[name] == 0:
                continue
            assert faulted.report.totals[name] == pytest.approx(
                clean.report.totals[name], rel=0.02), name


class TestDeterminism:
    def test_jobs_do_not_change_multiplexed_results(self):
        tool = KLebTool(multiplex_period_ns=ms(1))
        serial = run_trials(
            UniformComputeWorkload(5e6), tool, runs=4,
            events=EIGHT_EVENTS, period_ns=us(100), base_seed=5, jobs=1,
        )
        parallel = run_trials(
            UniformComputeWorkload(5e6), tool, runs=4,
            events=EIGHT_EVENTS, period_ns=us(100), base_seed=5, jobs=4,
        )
        docs_serial = [report_document(summary.report) for summary in serial]
        docs_parallel = [report_document(summary.report)
                         for summary in parallel]
        assert docs_serial == docs_parallel

    def test_same_seed_same_fault_plan_bit_identical(self):
        plan = FaultPlan(seed=7, pmu_wrap_margin=100_000)
        first = mux_run(faults=FaultInjector(plan))
        second = mux_run(faults=FaultInjector(plan))
        assert report_document(first.report) == \
            report_document(second.report)
