"""perf stat multiplexer internals."""

import pytest

from repro.hw.machine import Machine
from repro.hw.presets import i7_920
from repro.kernel.kernel import Kernel
from repro.sim.clock import seconds
from repro.sim.rng import RngStreams
from repro.tools.base import CounterGate
from repro.tools.perf import _Multiplexer
from repro.workloads.synthetic import UniformComputeWorkload

SIX_EVENTS = ("LOADS", "STORES", "BRANCHES", "ARITH_MUL",
              "LLC_MISSES", "BRANCH_MISSES")


def build(events=SIX_EVENTS):
    kernel = Kernel(Machine(i7_920()), rng=RngStreams(0))
    victim = kernel.spawn(UniformComputeWorkload(1e8))
    gate = CounterGate(kernel, victim, list(events)[:4])
    multiplexer = _Multiplexer(kernel, gate, victim, events)
    return kernel, victim, gate, multiplexer


class TestGrouping:
    def test_six_events_make_two_groups(self):
        _, _, _, multiplexer = build()
        assert len(multiplexer.groups) == 2
        assert multiplexer.groups[0] == list(SIX_EVENTS[:4])
        assert multiplexer.groups[1] == list(SIX_EVENTS[4:])

    def test_first_group_programmed_initially(self):
        kernel, _, _, _ = build()
        assert kernel.pmu.counter_event(0) == "LOADS"
        assert kernel.pmu.counter_event(3) == "ARITH_MUL"


class TestRotation:
    def test_tick_rotates_groups(self):
        kernel, victim, gate, multiplexer = build()
        kernel.run(deadline=seconds(0.01))
        multiplexer.tick()
        assert multiplexer.active == 1
        assert kernel.pmu.counter_event(0) == "LLC_MISSES"
        # Unused slots of the smaller group are disabled.
        assert kernel.pmu.counter_event(2) is None

    def test_tick_zeroes_counters_for_next_window(self):
        kernel, victim, gate, multiplexer = build()
        kernel.run(deadline=seconds(0.01))
        multiplexer.tick()
        assert kernel.pmu.rdpmc(0) == 0

    def test_enabled_time_attributed_to_active_group(self):
        kernel, victim, gate, multiplexer = build()
        kernel.run(deadline=seconds(0.01))
        multiplexer.tick()
        assert multiplexer.enabled_cpu[0] > 0
        assert multiplexer.enabled_cpu[1] == 0


class TestFinalize:
    def test_scaled_estimates_near_truth_for_uniform_load(self):
        kernel, victim, gate, multiplexer = build()
        # Alternate groups over the whole run, like perf's tick does.
        while victim.alive:
            kernel.run(deadline=kernel.now + seconds(0.005))
            if victim.alive:
                multiplexer.tick()
        totals = multiplexer.finalize()
        # Uniform rates: time-scaled estimates are nearly exact.
        assert totals["LOADS"] == pytest.approx(0.30 * 1e8, rel=0.01)
        assert totals["LLC_MISSES"] == pytest.approx(0.0002 * 1e8, rel=0.05)

    def test_fixed_events_never_scaled(self):
        kernel, victim, gate, multiplexer = build()
        kernel.run(deadline=seconds(1))
        totals = multiplexer.finalize()
        assert totals["INST_RETIRED"] == pytest.approx(1e8, rel=0.01)
