"""Tool registry and NullTool."""

import pytest

from repro.experiments.runner import run_monitored
from repro.tools.base import MonitoringTool
from repro.tools.null import NullTool
from repro.tools.registry import available_tools, create_tool
from repro.workloads.synthetic import UniformComputeWorkload


class TestRegistry:
    def test_all_paper_tools_available(self):
        names = available_tools()
        for expected in ("none", "k-leb", "perf-stat", "perf-record",
                         "papi", "limit"):
            assert expected in names

    def test_create_returns_fresh_instances(self):
        assert create_tool("k-leb") is not create_tool("k-leb")

    def test_created_tool_name_matches_registry_key(self):
        for name in available_tools():
            assert create_tool(name).name == name

    def test_unknown_tool(self):
        with pytest.raises(KeyError):
            create_tool("vtune")

    def test_all_are_monitoring_tools(self):
        for name in available_tools():
            assert isinstance(create_tool(name), MonitoringTool)


class TestNullTool:
    def test_null_run_produces_empty_report(self):
        result = run_monitored(UniformComputeWorkload(1e6), NullTool(),
                               seed=0)
        assert result.report.tool == "none"
        assert result.report.samples == []
        assert result.report.totals == {}
        assert result.wall_ns > 0

    def test_null_tool_leaves_pmu_disabled(self):
        result = run_monitored(UniformComputeWorkload(1e6), NullTool(),
                               seed=0)
        pmu = result.kernel.pmu
        from repro.hw.msr import MSR

        assert pmu.rdmsr(MSR.IA32_PERF_GLOBAL_CTRL) == 0
