"""CounterGate: per-task isolation via context-switch hooks."""

import pytest

from repro.errors import ToolError
from repro.sim.clock import seconds
from repro.tools.base import CounterGate
from repro.workloads.base import ListProgram, RateBlock, user_probe
from repro.workloads.synthetic import UniformComputeWorkload


def compute(instructions=1e6, loads=0.5):
    return ListProgram("w", [
        RateBlock(instructions=instructions, rates={"LOADS": loads})
    ])


class TestIsolation:
    def test_counts_only_the_traced_task(self, kernel):
        victim = kernel.spawn(compute(1e6, loads=0.5))
        other = kernel.spawn(compute(2e6, loads=1.0))
        gate = CounterGate(kernel, victim, ["LOADS"])
        kernel.run(deadline=seconds(1))
        totals = gate.totals()
        assert totals["LOADS"] == pytest.approx(5e5, rel=0.01)
        assert totals["INST_RETIRED"] == pytest.approx(1e6, rel=0.01)

    def test_final_snapshot_taken_at_root_exit(self, kernel):
        victim = kernel.spawn(compute(1e5))
        gate = CounterGate(kernel, victim, ["LOADS"])
        kernel.run(deadline=seconds(1))
        assert gate.final_snapshot is not None
        # Totals stay frozen even if asked later.
        assert gate.totals() == gate.final_snapshot

    def test_forked_children_are_traced(self, kernel):
        from repro.workloads.base import SyscallBlock

        def do_fork(k, task):
            k.spawn(compute(2e6), ppid=task.pid)

        # The parent spins past a quantum after forking, so the child
        # gets CPU time before the parent (the gate root) exits.
        parent_program = ListProgram("parent", [
            RateBlock(instructions=1e5),
            SyscallBlock("fork", handler=do_fork),
            RateBlock(instructions=2e7),
        ])
        parent = kernel.spawn(parent_program)
        gate = CounterGate(kernel, parent, ["LOADS"])
        kernel.run(deadline=seconds(1))
        # INST_RETIRED covers the parent (~2.01e7) plus the forked
        # child's 2e6 — proof the fork was traced.
        assert gate.final_snapshot["INST_RETIRED"] > 2.05e7

    def test_kernel_work_excluded_for_user_only_gate(self, kernel):
        from repro.workloads.base import SyscallBlock

        program = ListProgram("sys", [
            RateBlock(instructions=1e5, rates={"LOADS": 0.5}),
            SyscallBlock("write"),
            RateBlock(instructions=1e5, rates={"LOADS": 0.5}),
        ])
        victim = kernel.spawn(program)
        gate = CounterGate(kernel, victim, ["LOADS"], count_kernel=False)
        kernel.run(deadline=seconds(1))
        # Exactly the user-mode loads; the write syscall's kernel loads
        # must not leak in.
        assert gate.totals()["LOADS"] == pytest.approx(1e5, rel=1e-6)


class TestArming:
    def test_disarmed_gate_counts_nothing(self, kernel):
        victim = kernel.spawn(compute(1e5))
        gate = CounterGate(kernel, victim, ["LOADS"], armed=False)
        kernel.run(deadline=seconds(1))
        assert gate.totals().get("INST_RETIRED", 0) == 0

    def test_arm_mid_program_counts_the_tail(self, kernel):
        armed_totals = {}

        def arm(k, task):
            gate_holder["gate"].arm()

        def stop(k, task):
            gate = gate_holder["gate"]
            gate.disarm()
            armed_totals.update(gate.final_snapshot)

        program = ListProgram("p", [
            RateBlock(instructions=1e5),     # not counted
            user_probe(arm),
            RateBlock(instructions=5e4),     # counted
            user_probe(stop),
            RateBlock(instructions=1e5),     # not counted
        ])
        victim = kernel.spawn(program)
        gate_holder = {"gate": CounterGate(kernel, victim, ["LOADS"],
                                           armed=False)}
        kernel.run(deadline=seconds(1))
        assert armed_totals["INST_RETIRED"] == pytest.approx(5e4, rel=0.01)

    def test_detach_unregisters_probes(self, kernel):
        victim = kernel.spawn(compute(1e5))
        before = kernel.kprobes.count.__self__  # just exercise the API
        gate = CounterGate(kernel, victim, ["LOADS"])
        gate.detach()
        from repro.kernel.kprobes import ProbePoint
        assert kernel.kprobes.count(ProbePoint.SCHED_SWITCH_IN) == 0


class TestValidation:
    def test_too_many_events_rejected(self, kernel):
        victim = kernel.spawn(compute(1e4))
        with pytest.raises(ToolError):
            CounterGate(kernel, victim,
                        ["LOADS", "STORES", "BRANCHES", "ARITH_MUL",
                         "LLC_MISSES"])
