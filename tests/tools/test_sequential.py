"""Sequential-runs profiling (the §VI workaround for limited counters)."""

import pytest

from repro.errors import ToolError
from repro.tools.kleb import KLebTool
from repro.tools.perf import PerfStatTool
from repro.tools.sequential import merged_report, profile_sequentially
from repro.sim.clock import ms
from repro.workloads.synthetic import UniformComputeWorkload

MANY_EVENTS = ("LOADS", "STORES", "BRANCHES", "ARITH_MUL",
               "LLC_MISSES", "BRANCH_MISSES", "FP_OPS")


@pytest.fixture(scope="module")
def profile():
    return profile_sequentially(
        UniformComputeWorkload(5e7), KLebTool, MANY_EVENTS,
        period_ns=ms(10), seed=0,
    )


class TestGrouping:
    def test_seven_events_need_two_runs(self, profile):
        assert profile.run_count == 2
        assert profile.groups[0] == list(MANY_EVENTS[:4])
        assert profile.groups[1] == list(MANY_EVENTS[4:])

    def test_duplicate_events_deduplicated(self):
        result = profile_sequentially(
            UniformComputeWorkload(1e6), KLebTool,
            ("LOADS", "LOADS", "STORES"), period_ns=ms(10),
        )
        assert result.run_count == 1
        assert result.events == ["LOADS", "STORES"]

    def test_custom_group_size(self):
        result = profile_sequentially(
            UniformComputeWorkload(1e6), KLebTool,
            ("LOADS", "STORES", "BRANCHES"), group_size=2,
            period_ns=ms(10),
        )
        assert result.run_count == 2

    def test_empty_events_rejected(self):
        with pytest.raises(ToolError):
            profile_sequentially(UniformComputeWorkload(1e6), KLebTool, ())

    def test_invalid_group_size_rejected(self):
        with pytest.raises(ToolError):
            profile_sequentially(UniformComputeWorkload(1e6), KLebTool,
                                 ("LOADS",), group_size=9)


class TestPrecision:
    def test_every_event_measured_exactly(self, profile):
        """Unlike multiplexing, every event count is precise — this is
        the point of sequential runs."""
        rates = {"LOADS": 0.30, "STORES": 0.12, "BRANCHES": 0.15,
                 "ARITH_MUL": 0.05, "LLC_MISSES": 0.0002,
                 "BRANCH_MISSES": 0.002, "FP_OPS": 0.10}
        for event, rate in rates.items():
            assert profile.totals[event] == pytest.approx(
                5e7 * rate, rel=1e-6
            ), event

    def test_fixed_counters_present(self, profile):
        assert profile.totals["INST_RETIRED"] == pytest.approx(5e7, rel=1e-6)

    def test_cost_is_n_full_runs(self, profile):
        single = profile.runs[0].wall_ns
        assert profile.total_wall_ns > 1.8 * single

    def test_works_with_perf_stat_too(self):
        result = profile_sequentially(
            UniformComputeWorkload(5e7), PerfStatTool,
            ("LOADS", "STORES", "BRANCHES", "ARITH_MUL", "LLC_MISSES"),
            period_ns=ms(10), seed=3,
        )
        assert result.run_count == 2
        assert result.totals["LLC_MISSES"] == pytest.approx(
            5e7 * 0.0002, rel=1e-6
        )


class TestMergedReport:
    def test_report_packaging(self, profile):
        report = merged_report(profile, period_ns=ms(10))
        assert report.tool == "k-leb+sequential"
        assert report.events == list(MANY_EVENTS)
        assert report.metadata["sequential_runs"] == 2.0
        assert report.totals == profile.totals
